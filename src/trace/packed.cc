#include "trace/packed.hh"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define SWAN_PACKED_HAVE_MMAP 1
#endif

namespace swan::trace
{

namespace
{

// --- varint / zigzag primitives --------------------------------------

inline uint64_t
zigzag(int64_t v)
{
    return (uint64_t(v) << 1) ^ uint64_t(v >> 63);
}

inline int64_t
unzigzag(uint64_t v)
{
    return int64_t(v >> 1) ^ -int64_t(v & 1);
}

inline void
putVarint(std::string &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(char(uint8_t(v) | 0x80));
        v >>= 7;
    }
    out.push_back(char(uint8_t(v)));
}

/** Decode one varint; on truncation stops at @p end and returns 0. */
inline uint64_t
getVarint(const uint8_t *&p, const uint8_t *end)
{
    uint64_t v = 0;
    int shift = 0;
    while (p < end) {
        const uint8_t b = *p++;
        v |= uint64_t(b & 0x7f) << shift;
        if (!(b & 0x80))
            break;
        shift += 7;
        if (shift >= 64)
            break;
    }
    return v;
}

// --- per-record tag layout --------------------------------------------
// tag = descIndex << 6 | presence flags. A field whose flag is clear
// contributes zero stream bytes and zero decode work: the common
// sequential id costs nothing, and each absent dependence costs
// nothing — a typical scalar ALU record is tag + one dep distance,
// two bytes total.
constexpr uint64_t kHasAddr = 1;
constexpr uint64_t kHasMulti = 2;
constexpr uint64_t kHasIdJump = 4;  //!< id != prevId + 1
constexpr uint64_t kHasDep0 = 8;
constexpr uint64_t kHasDep1 = 16;
constexpr uint64_t kHasDep2 = 32;
constexpr int kTagFlagBits = 6;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnv1a(uint64_t h, const void *data, size_t n)
{
    const auto *b = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

// --- Buf ---------------------------------------------------------------

PackedTrace::Buf::Buf(size_t n) : n_(n)
{
    if (n == 0)
        return;
#ifdef SWAN_PACKED_HAVE_MMAP
    void *p = ::mmap(nullptr, n, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
        p_ = static_cast<uint8_t *>(p);
        mapped_ = true;
        return;
    }
#endif
    p_ = new uint8_t[n](); // zero-initialized like the mapping
}

void
PackedTrace::Buf::release()
{
    if (!p_)
        return;
#ifdef SWAN_PACKED_HAVE_MMAP
    if (mapped_) {
        ::munmap(p_, n_);
        p_ = nullptr;
        n_ = 0;
        return;
    }
#endif
    delete[] p_;
    p_ = nullptr;
    n_ = 0;
}

// --- pack --------------------------------------------------------------

void
PackedTrace::assemble(const Desc *descs, uint32_t desc_count,
                      const std::string &main, const std::string &multi,
                      uint64_t count)
{
    const size_t descBytes = size_t(desc_count) * sizeof(Desc);
    buf_ = Buf(descBytes + main.size() + multi.size());
    uint8_t *p = buf_.data();
    if (descBytes)
        std::memcpy(p, descs, descBytes);
    if (!main.empty())
        std::memcpy(p + descBytes, main.data(), main.size());
    if (!multi.empty())
        std::memcpy(p + descBytes + main.size(), multi.data(),
                    multi.size());
    count_ = count;
    mainLen_ = main.size();
    multiLen_ = multi.size();
    descCount_ = desc_count;
}

PackedTrace
PackedTrace::pack(const std::vector<Instr> &instrs)
{
    Scratch scratch;
    return pack(instrs, &scratch);
}

PackedTrace
PackedTrace::pack(const std::vector<Instr> &instrs, Scratch *scratch)
{
    Scratch &s = *scratch;
    s.clear();
    s.main.reserve(instrs.size() * 8);

    uint64_t prevId = 0;
    uint64_t prevAddr = 0;
    for (const Instr &i : instrs) {
        Desc d;
        d.size = i.size;
        d.elemStride = i.elemStride;
        d.cls = uint8_t(i.cls);
        d.fu = uint8_t(i.fu);
        d.latency = i.latency;
        d.vecBytes = i.vecBytes;
        d.lanes = i.lanes;
        d.activeLanes = i.activeLanes;
        d.stride = uint8_t(i.stride);

        // Find-or-insert via hash with an exact-match chain, so a hash
        // collision can never alias two different descriptors.
        const uint64_t h = fnv1a(kFnvOffset, &d, sizeof d);
        auto it = s.index.find(h);
        int32_t idx = it == s.index.end() ? -1 : int32_t(it->second);
        while (idx >= 0 &&
               std::memcmp(&s.descs[size_t(idx)], &d, sizeof d) != 0)
            idx = s.chain[size_t(idx)];
        if (idx < 0) {
            idx = int32_t(s.descs.size());
            s.descs.push_back(d);
            s.chain.push_back(it == s.index.end() ? -1
                                                  : int32_t(it->second));
            s.index[h] = uint32_t(idx);
        }

        uint64_t flags = 0;
        if (i.addr != 0)
            flags |= kHasAddr;
        if (i.addr2 != 0)
            flags |= kHasMulti;
        if (i.id != prevId + 1)
            flags |= kHasIdJump;
        if (i.dep0 != 0)
            flags |= kHasDep0;
        if (i.dep1 != 0)
            flags |= kHasDep1;
        if (i.dep2 != 0)
            flags |= kHasDep2;
        putVarint(s.main,
                  (uint64_t(uint32_t(idx)) << kTagFlagBits) | flags);
        if (flags & kHasIdJump)
            putVarint(s.main,
                      zigzag(int64_t(i.id) - int64_t(prevId + 1)));
        prevId = i.id;
        if (flags & kHasDep0)
            putVarint(s.main, zigzag(int64_t(i.id) - int64_t(i.dep0)));
        if (flags & kHasDep1)
            putVarint(s.main, zigzag(int64_t(i.id) - int64_t(i.dep1)));
        if (flags & kHasDep2)
            putVarint(s.main, zigzag(int64_t(i.id) - int64_t(i.dep2)));
        if (flags & kHasAddr) {
            putVarint(s.main, zigzag(int64_t(i.addr - prevAddr)));
            prevAddr = i.addr;
        }
        if (flags & kHasMulti)
            putVarint(s.multi, zigzag(int64_t(i.addr2 - i.addr)));
    }

    PackedTrace t;
    t.assemble(s.descs.data(), uint32_t(s.descs.size()), s.main, s.multi,
               instrs.size());
    return t;
}

// --- decode ------------------------------------------------------------

PackedTrace::Cursor::Cursor(const PackedTrace &trace) : trace_(&trace)
{
    reset();
}

void
PackedTrace::Cursor::reset()
{
    if (!trace_)
        return;
    p_ = trace_->mainStream();
    end_ = p_ + trace_->mainLen_;
    mp_ = trace_->multiStream();
    mend_ = mp_ + trace_->multiLen_;
    prevId_ = 0;
    prevAddr_ = 0;
}

namespace
{

/** Strip each byte's continuation bit and fold the 7-bit groups of a
 *  masked little-endian word into one integer (up to 56 bits). */
inline uint64_t
fold7(uint64_t w)
{
    uint64_t x = (w & 0x007f007f007f007full) |
                 ((w & 0x7f007f007f007f00ull) >> 1);
    x = (x & 0x00003fff00003fffull) | ((x & 0x3fff00003fff0000ull) >> 2);
    return (x & 0x000000000fffffffull) | ((x & 0x0fffffff00000000ull) >> 4);
}

/**
 * Unchecked word-at-a-time varint read. One 8-byte load covers every
 * varint the encoder emits for the values seen in practice: the length
 * comes from the first clear continuation bit (ctz on the inverted msb
 * mask), and the payload bits fold together without a per-byte loop —
 * no data-dependent branches for anything up to 8 encoded bytes.
 * Only used when the caller has already established that a maximal
 * record cannot run past the end of the stream.
 */
inline uint64_t
rdFast(const uint8_t *&p)
{
    uint64_t w;
    std::memcpy(&w, p, 8);
    if (__builtin_expect(!(w & 0x80), 1)) {
        ++p;
        return w & 0x7f;
    }
    const uint64_t stops = ~w & 0x8080808080808080ull;
    if (__builtin_expect(stops != 0, 1)) {
        // Bytes 0..len-1 belong to this varint (2 <= len <= 8).
        const int len = (__builtin_ctzll(stops) >> 3) + 1;
        p += len;
        return fold7(w & (~0ull >> (64 - 8 * len)));
    }
    // 9- or 10-byte varint: all eight loaded bytes are continuation
    // bytes; fold their 56 payload bits and finish byte-wise.
    p += 8;
    uint64_t v = fold7(w & 0x7f7f7f7f7f7f7f7full);
    int shift = 56;
    while (true) {
        const uint64_t b = *p++;
        v |= (b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift >= 64)
            return v;
    }
}

/** Longest possible main-stream record: 6 varints of up to 10 bytes. */
constexpr ptrdiff_t kMaxRecordBytes = 60;

} // namespace

size_t
PackedTrace::Cursor::next(Instr *out, size_t max)
{
    size_t n = 0;
    const Desc *descs = trace_ ? trace_->descs() : nullptr;
    const uint32_t descCount = trace_ ? trace_->descCount_ : 0;
    // Hot state in locals so the compiler keeps it in registers.
    const uint8_t *p = p_;
    const uint8_t *mp = mp_;
    uint64_t prevId = prevId_;
    uint64_t prevAddr = prevAddr_;
    while (n < max && p < end_) {
        uint64_t tag, id, dep0 = 0, dep1 = 0, dep2 = 0, addr = 0;
        uint64_t multiTok = 0;
        // Branch-free fast path: when the next 8 bytes are all
        // single-byte varints (the overwhelmingly common case — see
        // the tag layout above, a record is typically 2-4 bytes), the
        // whole record is extracted from one 8-byte load with
        // flag-indexed shifts; absent fields cost a mask, not a
        // mispredicted branch.
        uint64_t w;
        if (__builtin_expect(end_ - p >= 8, 1)) {
            std::memcpy(&w, p, 8);
            if (__builtin_expect(!(w & 0x8080808080808080ull), 1)) {
                tag = w & 0xff;
                if (__builtin_expect(!(tag & kHasMulti), 1)) {
                    const uint64_t fIdJ = (tag >> 2) & 1;
                    const uint64_t fD0 = (tag >> 3) & 1;
                    const uint64_t fD1 = (tag >> 4) & 1;
                    const uint64_t fD2 = (tag >> 5) & 1;
                    const uint64_t fA = tag & 1;
                    const uint64_t pIdJ = 1;
                    const uint64_t pD0 = pIdJ + fIdJ;
                    const uint64_t pD1 = pD0 + fD0;
                    const uint64_t pD2 = pD1 + fD1;
                    const uint64_t pA = pD2 + fD2;
                    p += pA + fA;
                    id = uint64_t(
                        int64_t(prevId + 1) +
                        (unzigzag((w >> (8 * pIdJ)) & 0xff) &
                         -int64_t(fIdJ)));
                    dep0 = uint64_t(
                        int64_t(id) -
                        unzigzag((w >> (8 * pD0)) & 0xff)) &
                        -uint64_t(fD0);
                    dep1 = uint64_t(
                        int64_t(id) -
                        unzigzag((w >> (8 * pD1)) & 0xff)) &
                        -uint64_t(fD1);
                    dep2 = uint64_t(
                        int64_t(id) -
                        unzigzag((w >> (8 * pD2)) & 0xff)) &
                        -uint64_t(fD2);
                    prevAddr += uint64_t(
                        unzigzag((w >> (8 * pA)) & 0xff) &
                        -int64_t(fA));
                    addr = prevAddr & -uint64_t(fA);
                    prevId = id;
                    const uint64_t idx = tag >> kTagFlagBits;
                    if (idx >= descCount)
                        break;
                    const Desc &d = descs[idx];
                    Instr &o = out[n++];
                    o.id = id;
                    o.dep0 = dep0;
                    o.dep1 = dep1;
                    o.dep2 = dep2;
                    o.addr = addr;
                    o.addr2 = 0;
                    o.size = d.size;
                    o.elemStride = d.elemStride;
                    o.cls = InstrClass(d.cls);
                    o.fu = Fu(d.fu);
                    o.latency = d.latency;
                    o.vecBytes = d.vecBytes;
                    o.lanes = d.lanes;
                    o.activeLanes = d.activeLanes;
                    o.stride = StrideKind(d.stride);
                    continue;
                }
            }
        }
        if (__builtin_expect(end_ - p >= kMaxRecordBytes, 1)) {
            // Fast path: a maximal record fits, skip per-byte checks.
            // The rare multi-address side read stays checked (the
            // side stream may be empty).
            tag = rdFast(p);
            id = prevId + 1;
            if (tag & kHasIdJump)
                id = uint64_t(int64_t(id) + unzigzag(rdFast(p)));
            if (tag & kHasDep0)
                dep0 = uint64_t(int64_t(id) - unzigzag(rdFast(p)));
            if (tag & kHasDep1)
                dep1 = uint64_t(int64_t(id) - unzigzag(rdFast(p)));
            if (tag & kHasDep2)
                dep2 = uint64_t(int64_t(id) - unzigzag(rdFast(p)));
            if (tag & kHasAddr) {
                prevAddr += uint64_t(unzigzag(rdFast(p)));
                addr = prevAddr;
            }
            if (tag & kHasMulti)
                multiTok = getVarint(mp, mend_);
        } else {
            tag = getVarint(p, end_);
            id = prevId + 1;
            if (tag & kHasIdJump)
                id = uint64_t(int64_t(id) +
                              unzigzag(getVarint(p, end_)));
            if (tag & kHasDep0)
                dep0 = uint64_t(int64_t(id) -
                                unzigzag(getVarint(p, end_)));
            if (tag & kHasDep1)
                dep1 = uint64_t(int64_t(id) -
                                unzigzag(getVarint(p, end_)));
            if (tag & kHasDep2)
                dep2 = uint64_t(int64_t(id) -
                                unzigzag(getVarint(p, end_)));
            if (tag & kHasAddr) {
                prevAddr += uint64_t(unzigzag(getVarint(p, end_)));
                addr = prevAddr;
            }
            if (tag & kHasMulti)
                multiTok = getVarint(mp, mend_);
        }
        prevId = id;
        const uint64_t idx = tag >> kTagFlagBits;
        if (idx >= descCount)
            break; // corrupt stream: stop rather than read out of bounds
        const Desc &d = descs[idx];

        Instr &o = out[n++];
        o.id = id;
        o.dep0 = dep0;
        o.dep1 = dep1;
        o.dep2 = dep2;
        o.addr = addr;
        o.addr2 = tag & kHasMulti
                      ? uint64_t(int64_t(addr) + unzigzag(multiTok))
                      : 0;
        o.size = d.size;
        o.elemStride = d.elemStride;
        o.cls = InstrClass(d.cls);
        o.fu = Fu(d.fu);
        o.latency = d.latency;
        o.vecBytes = d.vecBytes;
        o.lanes = d.lanes;
        o.activeLanes = d.activeLanes;
        o.stride = StrideKind(d.stride);
    }
    p_ = p;
    mp_ = mp;
    prevId_ = prevId;
    prevAddr_ = prevAddr;
    return n;
}

std::vector<Instr>
PackedTrace::unpack() const
{
    std::vector<Instr> out(size());
    Cursor cur(*this);
    const size_t n = cur.next(out.data(), out.size());
    out.resize(n);
    return out;
}

void
PackedTrace::deliver(Sink &sink) const
{
    Instr block[kBlockInstrs];
    Cursor cur(*this);
    size_t n;
    while ((n = cur.next(block, kBlockInstrs)) != 0)
        sink.onBlock(block, n);
}

void
PackedTrace::releaseStorage()
{
    buf_.release();
    count_ = 0;
    mainLen_ = 0;
    multiLen_ = 0;
    descCount_ = 0;
}

// --- payload (the on-disk sweep trace tier) ----------------------------

namespace
{

/** Payload header: everything needed to rebuild the PackedTrace. */
struct PayloadHeader
{
    uint64_t count;
    uint64_t mainLen;
    uint64_t multiLen;
    uint32_t descCount;
    uint32_t descSize; //!< sizeof(Desc) at write time (layout guard)
    uint64_t checksum; //!< FNV-1a over the body bytes
};

} // namespace

namespace
{

/** Checksum covering the header fields (checksum itself excluded)
 *  and the body, so a corrupted `count` is rejected too. */
uint64_t
payloadChecksum(const PayloadHeader &h, const uint8_t *body,
                size_t body_len)
{
    uint64_t c = kFnvOffset;
    c = fnv1a(c, &h.count, sizeof h.count);
    c = fnv1a(c, &h.mainLen, sizeof h.mainLen);
    c = fnv1a(c, &h.multiLen, sizeof h.multiLen);
    c = fnv1a(c, &h.descCount, sizeof h.descCount);
    c = fnv1a(c, &h.descSize, sizeof h.descSize);
    return fnv1a(c, body, body_len);
}

PayloadHeader
headerFor(uint64_t count, uint64_t main_len, uint64_t multi_len,
          uint32_t desc_count, const uint8_t *body, size_t body_len,
          uint32_t desc_size)
{
    PayloadHeader h{};
    h.count = count;
    h.mainLen = main_len;
    h.multiLen = multi_len;
    h.descCount = desc_count;
    h.descSize = desc_size;
    h.checksum = payloadChecksum(h, body, body_len);
    return h;
}

} // namespace

bool
PackedTrace::writePayload(std::FILE *f) const
{
    const PayloadHeader h =
        headerFor(count_, mainLen_, multiLen_, descCount_, buf_.data(),
                  buf_.size(), sizeof(Desc));
    if (std::fwrite(&h, 1, sizeof h, f) != sizeof h)
        return false;
    if (buf_.size() &&
        std::fwrite(buf_.data(), 1, buf_.size(), f) != buf_.size())
        return false;
    return true;
}

#if defined(__unix__) || defined(__APPLE__)
bool
PackedTrace::writePayload(int fd) const
{
    const PayloadHeader h =
        headerFor(count_, mainLen_, multiLen_, descCount_, buf_.data(),
                  buf_.size(), sizeof(Desc));
    const auto writeAll = [fd](const void *data, size_t n) {
        const auto *p = static_cast<const uint8_t *>(data);
        while (n) {
            const ssize_t w = ::write(fd, p, n);
            if (w <= 0)
                return false;
            p += size_t(w);
            n -= size_t(w);
        }
        return true;
    };
    if (!writeAll(&h, sizeof h))
        return false;
    return buf_.size() == 0 || writeAll(buf_.data(), buf_.size());
}
#endif

void
PackedTrace::appendPayload(std::string *out) const
{
    const PayloadHeader h =
        headerFor(count_, mainLen_, multiLen_, descCount_, buf_.data(),
                  buf_.size(), sizeof(Desc));
    out->append(reinterpret_cast<const char *>(&h), sizeof h);
    if (buf_.size())
        out->append(reinterpret_cast<const char *>(buf_.data()),
                    buf_.size());
}

bool
PackedTrace::parsePayload(const uint8_t *data, size_t len,
                          PackedTrace *out)
{
    PayloadHeader h;
    if (len < sizeof h)
        return false;
    std::memcpy(&h, data, sizeof h);
    if (h.descSize != sizeof(Desc))
        return false;
    const size_t descBytes = size_t(h.descCount) * sizeof(Desc);
    const size_t bodyLen = descBytes + h.mainLen + h.multiLen;
    if (h.mainLen > len || h.multiLen > len || descBytes > len ||
        len != sizeof h + bodyLen)
        return false;
    const uint8_t *body = data + sizeof h;
    if (payloadChecksum(h, body, bodyLen) != h.checksum)
        return false;
    // Validate every descriptor's enums once, so decoding never has to.
    for (uint32_t i = 0; i < h.descCount; ++i) {
        Desc d;
        std::memcpy(&d, body + size_t(i) * sizeof(Desc), sizeof(Desc));
        if (d.cls >= uint8_t(InstrClass::NumClasses) ||
            d.fu >= uint8_t(Fu::NumFus) ||
            d.stride >= uint8_t(StrideKind::NumKinds))
            return false;
    }
    PackedTrace t;
    t.buf_ = Buf(bodyLen);
    if (bodyLen)
        std::memcpy(t.buf_.data(), body, bodyLen);
    t.count_ = h.count;
    t.mainLen_ = h.mainLen;
    t.multiLen_ = h.multiLen;
    t.descCount_ = h.descCount;
    *out = std::move(t);
    return true;
}

} // namespace swan::trace
