#include "trace/packed.hh"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define SWAN_PACKED_HAVE_MMAP 1
#endif

namespace swan::trace
{

using packed_detail::kHasAddr;
using packed_detail::kHasDep0;
using packed_detail::kHasDep1;
using packed_detail::kHasDep2;
using packed_detail::kHasIdJump;
using packed_detail::kHasMulti;
using packed_detail::kTagFlagBits;

namespace
{

// --- varint / zigzag encode primitives --------------------------------
// (The decode side lives in packed_detail in the header, shared with
// the fused replay engine's inline cursor.)

inline uint64_t
zigzag(int64_t v)
{
    return (uint64_t(v) << 1) ^ uint64_t(v >> 63);
}

inline void
putVarint(std::string &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(char(uint8_t(v) | 0x80));
        v >>= 7;
    }
    out.push_back(char(uint8_t(v)));
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t
fnv1a(uint64_t h, const void *data, size_t n)
{
    const auto *b = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

// --- Buf ---------------------------------------------------------------

PackedTrace::Buf::Buf(size_t n) : n_(n)
{
    if (n == 0)
        return;
#ifdef SWAN_PACKED_HAVE_MMAP
    void *p = ::mmap(nullptr, n, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
        p_ = static_cast<uint8_t *>(p);
        mapped_ = true;
        return;
    }
#endif
    p_ = new uint8_t[n](); // zero-initialized like the mapping
}

void
PackedTrace::Buf::release()
{
    if (!p_)
        return;
#ifdef SWAN_PACKED_HAVE_MMAP
    if (mapped_) {
        ::munmap(p_, n_);
        p_ = nullptr;
        n_ = 0;
        return;
    }
#endif
    delete[] p_;
    p_ = nullptr;
    n_ = 0;
}

PackedTrace
PackedTrace::clone() const
{
    PackedTrace c;
    c.buf_ = Buf(buf_.size());
    if (buf_.size())
        std::memcpy(c.buf_.data(), buf_.data(), buf_.size());
    c.count_ = count_;
    c.mainLen_ = mainLen_;
    c.multiLen_ = multiLen_;
    c.descCount_ = descCount_;
    return c;
}

// --- pack --------------------------------------------------------------

void
PackedTrace::assemble(const Desc *descs, uint32_t desc_count,
                      const std::string &main, const std::string &multi,
                      uint64_t count)
{
    const size_t descBytes = size_t(desc_count) * sizeof(Desc);
    buf_ = Buf(descBytes + main.size() + multi.size());
    uint8_t *p = buf_.data();
    if (descBytes)
        std::memcpy(p, descs, descBytes);
    if (!main.empty())
        std::memcpy(p + descBytes, main.data(), main.size());
    if (!multi.empty())
        std::memcpy(p + descBytes + main.size(), multi.data(),
                    multi.size());
    count_ = count;
    mainLen_ = main.size();
    multiLen_ = multi.size();
    descCount_ = desc_count;
}

PackedTrace
PackedTrace::pack(const std::vector<Instr> &instrs)
{
    Scratch scratch;
    return pack(instrs, &scratch);
}

PackedTrace
PackedTrace::pack(const std::vector<Instr> &instrs, Scratch *scratch)
{
    Scratch &s = *scratch;
    s.clear();
    s.main.reserve(instrs.size() * 8);

    uint64_t prevId = 0;
    uint64_t prevAddr = 0;
    for (const Instr &i : instrs) {
        Desc d;
        d.size = i.size;
        d.elemStride = i.elemStride;
        d.cls = uint8_t(i.cls);
        d.fu = uint8_t(i.fu);
        d.latency = i.latency;
        d.vecBytes = i.vecBytes;
        d.lanes = i.lanes;
        d.activeLanes = i.activeLanes;
        d.stride = uint8_t(i.stride);

        // Find-or-insert via hash with an exact-match chain, so a hash
        // collision can never alias two different descriptors.
        const uint64_t h = fnv1a(kFnvOffset, &d, sizeof d);
        auto it = s.index.find(h);
        int32_t idx = it == s.index.end() ? -1 : int32_t(it->second);
        while (idx >= 0 &&
               std::memcmp(&s.descs[size_t(idx)], &d, sizeof d) != 0)
            idx = s.chain[size_t(idx)];
        if (idx < 0) {
            idx = int32_t(s.descs.size());
            s.descs.push_back(d);
            s.chain.push_back(it == s.index.end() ? -1
                                                  : int32_t(it->second));
            s.index[h] = uint32_t(idx);
        }

        uint64_t flags = 0;
        if (i.addr != 0)
            flags |= kHasAddr;
        if (i.addr2 != 0)
            flags |= kHasMulti;
        if (i.id != prevId + 1)
            flags |= kHasIdJump;
        if (i.dep0 != 0)
            flags |= kHasDep0;
        if (i.dep1 != 0)
            flags |= kHasDep1;
        if (i.dep2 != 0)
            flags |= kHasDep2;
        putVarint(s.main,
                  (uint64_t(uint32_t(idx)) << kTagFlagBits) | flags);
        if (flags & kHasIdJump)
            putVarint(s.main,
                      zigzag(int64_t(i.id) - int64_t(prevId + 1)));
        prevId = i.id;
        if (flags & kHasDep0)
            putVarint(s.main, zigzag(int64_t(i.id) - int64_t(i.dep0)));
        if (flags & kHasDep1)
            putVarint(s.main, zigzag(int64_t(i.id) - int64_t(i.dep1)));
        if (flags & kHasDep2)
            putVarint(s.main, zigzag(int64_t(i.id) - int64_t(i.dep2)));
        if (flags & kHasAddr) {
            putVarint(s.main, zigzag(int64_t(i.addr - prevAddr)));
            prevAddr = i.addr;
        }
        if (flags & kHasMulti)
            putVarint(s.multi, zigzag(int64_t(i.addr2 - i.addr)));
    }

    PackedTrace t;
    t.assemble(s.descs.data(), uint32_t(s.descs.size()), s.main, s.multi,
               instrs.size());
    return t;
}

// --- decode ------------------------------------------------------------

PackedTrace::Cursor::Cursor(const PackedTrace &trace) : trace_(&trace)
{
    reset();
}

void
PackedTrace::Cursor::reset()
{
    if (!trace_)
        return;
    p_ = trace_->mainStream();
    end_ = p_ + trace_->mainLen_;
    mp_ = trace_->multiStream();
    mend_ = mp_ + trace_->multiLen_;
    prevId_ = 0;
    prevAddr_ = 0;
    left_ = trace_->count_;
    bad_ = false;
}

void
PackedTrace::expandDesc(uint32_t idx, Instr *out) const
{
    const Desc &d = descs()[idx];
    *out = Instr{};
    out->size = d.size;
    out->elemStride = d.elemStride;
    out->cls = InstrClass(d.cls);
    out->fu = Fu(d.fu);
    out->latency = d.latency;
    out->vecBytes = d.vecBytes;
    out->lanes = d.lanes;
    out->activeLanes = d.activeLanes;
    out->stride = StrideKind(d.stride);
}

size_t
PackedTrace::Cursor::next(Instr *out, size_t max)
{
    size_t n = 0;
    const Desc *descs = trace_ ? trace_->descs() : nullptr;
    Decoded d;
    while (n < max && next(d)) {
        const Desc &dd = descs[d.desc];
        Instr &o = out[n++];
        o.id = d.id;
        o.dep0 = d.dep0;
        o.dep1 = d.dep1;
        o.dep2 = d.dep2;
        o.addr = d.addr;
        o.addr2 = d.addr2;
        o.size = dd.size;
        o.elemStride = dd.elemStride;
        o.cls = InstrClass(dd.cls);
        o.fu = Fu(dd.fu);
        o.latency = dd.latency;
        o.vecBytes = dd.vecBytes;
        o.lanes = dd.lanes;
        o.activeLanes = dd.activeLanes;
        o.stride = StrideKind(dd.stride);
    }
    return n;
}

std::vector<Instr>
PackedTrace::unpack() const
{
    std::vector<Instr> out(size());
    Cursor cur(*this);
    const size_t n = cur.next(out.data(), out.size());
    out.resize(n);
    return out;
}

void
PackedTrace::deliver(Sink &sink) const
{
    Instr block[kBlockInstrs];
    Cursor cur(*this);
    size_t n;
    while ((n = cur.next(block, kBlockInstrs)) != 0)
        sink.onBlock(block, n);
}

void
PackedTrace::releaseStorage()
{
    buf_.release();
    count_ = 0;
    mainLen_ = 0;
    multiLen_ = 0;
    descCount_ = 0;
}

// --- payload (the on-disk sweep trace tier) ----------------------------

namespace
{

/** Payload header: everything needed to rebuild the PackedTrace. */
struct PayloadHeader
{
    uint64_t count;
    uint64_t mainLen;
    uint64_t multiLen;
    uint32_t descCount;
    uint32_t descSize; //!< sizeof(Desc) at write time (layout guard)
    uint64_t checksum; //!< FNV-1a over the body bytes
};

} // namespace

namespace
{

/** Checksum covering the header fields (checksum itself excluded)
 *  and the body, so a corrupted `count` is rejected too. */
uint64_t
payloadChecksum(const PayloadHeader &h, const uint8_t *body,
                size_t body_len)
{
    uint64_t c = kFnvOffset;
    c = fnv1a(c, &h.count, sizeof h.count);
    c = fnv1a(c, &h.mainLen, sizeof h.mainLen);
    c = fnv1a(c, &h.multiLen, sizeof h.multiLen);
    c = fnv1a(c, &h.descCount, sizeof h.descCount);
    c = fnv1a(c, &h.descSize, sizeof h.descSize);
    return fnv1a(c, body, body_len);
}

PayloadHeader
headerFor(uint64_t count, uint64_t main_len, uint64_t multi_len,
          uint32_t desc_count, const uint8_t *body, size_t body_len,
          uint32_t desc_size)
{
    PayloadHeader h{};
    h.count = count;
    h.mainLen = main_len;
    h.multiLen = multi_len;
    h.descCount = desc_count;
    h.descSize = desc_size;
    h.checksum = payloadChecksum(h, body, body_len);
    return h;
}

} // namespace

bool
PackedTrace::writePayload(std::FILE *f) const
{
    const PayloadHeader h =
        headerFor(count_, mainLen_, multiLen_, descCount_, buf_.data(),
                  buf_.size(), sizeof(Desc));
    if (std::fwrite(&h, 1, sizeof h, f) != sizeof h)
        return false;
    if (buf_.size() &&
        std::fwrite(buf_.data(), 1, buf_.size(), f) != buf_.size())
        return false;
    return true;
}

#if defined(__unix__) || defined(__APPLE__)
bool
PackedTrace::writePayload(int fd) const
{
    const PayloadHeader h =
        headerFor(count_, mainLen_, multiLen_, descCount_, buf_.data(),
                  buf_.size(), sizeof(Desc));
    const auto writeAll = [fd](const void *data, size_t n) {
        const auto *p = static_cast<const uint8_t *>(data);
        while (n) {
            const ssize_t w = ::write(fd, p, n);
            if (w <= 0)
                return false;
            p += size_t(w);
            n -= size_t(w);
        }
        return true;
    };
    if (!writeAll(&h, sizeof h))
        return false;
    return buf_.size() == 0 || writeAll(buf_.data(), buf_.size());
}
#endif

void
PackedTrace::appendPayload(std::string *out) const
{
    const PayloadHeader h =
        headerFor(count_, mainLen_, multiLen_, descCount_, buf_.data(),
                  buf_.size(), sizeof(Desc));
    out->append(reinterpret_cast<const char *>(&h), sizeof h);
    if (buf_.size())
        out->append(reinterpret_cast<const char *>(buf_.data()),
                    buf_.size());
}

bool
PackedTrace::parsePayload(const uint8_t *data, size_t len,
                          PackedTrace *out)
{
    PayloadHeader h;
    if (len < sizeof h)
        return false;
    std::memcpy(&h, data, sizeof h);
    if (h.descSize != sizeof(Desc))
        return false;
    const size_t descBytes = size_t(h.descCount) * sizeof(Desc);
    const size_t bodyLen = descBytes + h.mainLen + h.multiLen;
    if (h.mainLen > len || h.multiLen > len || descBytes > len ||
        len != sizeof h + bodyLen)
        return false;
    const uint8_t *body = data + sizeof h;
    if (payloadChecksum(h, body, bodyLen) != h.checksum)
        return false;
    // Validate every descriptor's enums once, so decoding never has to.
    for (uint32_t i = 0; i < h.descCount; ++i) {
        Desc d;
        std::memcpy(&d, body + size_t(i) * sizeof(Desc), sizeof(Desc));
        if (d.cls >= uint8_t(InstrClass::NumClasses) ||
            d.fu >= uint8_t(Fu::NumFus) ||
            d.stride >= uint8_t(StrideKind::NumKinds))
            return false;
    }
    PackedTrace t;
    t.buf_ = Buf(bodyLen);
    if (bodyLen)
        std::memcpy(t.buf_.data(), body, bodyLen);
    t.count_ = h.count;
    t.mainLen_ = h.mainLen;
    t.multiLen_ = h.multiLen;
    t.descCount_ = h.descCount;
    *out = std::move(t);
    return true;
}

} // namespace swan::trace
