/**
 * @file
 * On-disk trace format. The paper's methodology separates capture from
 * simulation: DynamoRIO traces are collected once on an Armv8.2 server
 * and replayed through the Ramulator-based timing model many times
 * (Section 4.3). This module gives the reproduction the same workflow —
 * capture a kernel's dynamic instruction stream to a file, then
 * simulate it later against any number of core configurations
 * (`swan run <kernel> --dump-trace f.swt`, `swan simulate f.swt`).
 *
 * Format (little-endian): a 16-byte header {magic "SWTR", u32 version,
 * u64 record count}, then one packed 64-byte record per instruction.
 * Records are fixed width so a reader can seek and a writer can stream.
 */

#ifndef SWAN_TRACE_SERIALIZE_HH
#define SWAN_TRACE_SERIALIZE_HH

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "trace/instr.hh"
#include "trace/recorder.hh"

namespace swan::trace
{

/** Current file-format version. */
constexpr uint32_t kTraceFormatVersion = 1;

/**
 * Write a buffered trace to @p path.
 * @return true on success; on failure @p error (if non-null) explains.
 */
bool writeTrace(const std::string &path, const std::vector<Instr> &instrs,
                std::string *error = nullptr);

/**
 * Read a trace file written by writeTrace or TraceFileSink.
 * @return the records, or nullopt with @p error set on malformed input
 *         (bad magic, version mismatch, truncated body).
 */
std::optional<std::vector<Instr>> readTrace(const std::string &path,
                                            std::string *error = nullptr);

/**
 * Streaming sink that writes records to disk as they are emitted, for
 * traces too large to buffer. The record count in the header is patched
 * on close().
 */
class TraceFileSink : public Sink
{
  public:
    /** Opens @p path for writing; ok() reports failure. */
    explicit TraceFileSink(const std::string &path);
    ~TraceFileSink() override;

    TraceFileSink(const TraceFileSink &) = delete;
    TraceFileSink &operator=(const TraceFileSink &) = delete;

    void onInstr(const Instr &instr) override;

    /** Patch the header with the final count and close the file. */
    bool close();

    bool ok() const { return file_ != nullptr && !failed_; }
    uint64_t count() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    bool failed_ = false;
    uint64_t count_ = 0;
};

} // namespace swan::trace

#endif // SWAN_TRACE_SERIALIZE_HH
