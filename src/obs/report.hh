/**
 * @file
 * swan::obs sinks — what happens to recorded spans after a run.
 *
 * The registry (obs/telemetry.hh) only accumulates fixed-size records;
 * everything with a memory or format opinion lives here, on the cold
 * side of the run: buildReport() folds the records into per-phase and
 * per-shard aggregates, and Sink implementations serialize them —
 * ReportSink as a run-report JSON (per-phase wall/CPU time, replay
 * throughput, fleet-wide cache traffic, per-shard breakdown) and
 * ChromeTraceSink as Chrome trace-event JSON, one event per line,
 * loadable directly in Perfetto (ui.perfetto.dev) or
 * chrome://tracing with shard processes separated per track.
 *
 * The Collector ties it together for the common case: start() before
 * the work, addSink() any number of sinks, finish() after — stop,
 * aggregate, feed every sink, release. Experiment::run() drives one
 * of these when SessionOptions::metricsOut is set.
 */

#ifndef SWAN_OBS_REPORT_HH
#define SWAN_OBS_REPORT_HH

#include <array>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/telemetry.hh"
#include "sweep/cache.hh"

namespace swan::obs
{

/** Aggregate of every span of one phase (within one scope). */
struct PhaseStats
{
    uint64_t count = 0;
    uint64_t wallNs = 0;  //!< sum of span durations
    uint64_t cpuNs = 0;   //!< sum of span thread-CPU time
    uint64_t minNs = 0;   //!< shortest span (0 when count == 0)
    uint64_t maxNs = 0;   //!< longest span
    uint64_t argTotal = 0; //!< sum of phase payloads (see SpanRec::arg)

    void add(const SpanRec &r);
};

/** One finished run, aggregated. */
struct RunReport
{
    RunMeta meta;
    std::array<PhaseStats, kPhaseCount> phases{};

    struct ShardBreakdown
    {
        int shard = -1; //!< -1 = parent process
        std::array<PhaseStats, kPhaseCount> phases{};
    };
    /** Per-process breakdown, parent (-1) first then shards ascending;
     *  only processes that recorded at least one span appear. */
    std::vector<ShardBreakdown> shards;

    sweep::CacheStats cache; //!< fleet-wide (absorbed) cache counters
    uint64_t droppedSpans = 0;
    /** Shard snapshot files rejected as corrupt at merge time (see
     *  Telemetry::corruptSnapshots); their shards appear in the
     *  report with no telemetry, like crashed shards. */
    uint64_t corruptSnapshots = 0;
    uint64_t wallNs = 0; //!< the Sweep envelope's wall time

    /** Fused-replay throughput over the whole fleet, in millions of
     *  instruction-steps (decoded instruction x config x pass) per
     *  second of replay wall time; 0 when nothing replayed. */
    double replayMinstrPerS() const;
};

RunReport buildReport(const std::vector<SpanRec> &records,
                      const RunMeta &meta, uint64_t dropped_spans,
                      const sweep::CacheStats &cache,
                      uint64_t corrupt_snapshots = 0);

/** Serialize @p report as the stable run-report JSON object. */
void writeReportJson(std::ostream &os, const RunReport &report);

/** Serialize raw records as Chrome trace-event JSON (one event per
 *  line; complete "X" events in microseconds, pid = shard process,
 *  tid = recording thread, metadata names each process). */
void writeChromeTrace(std::ostream &os,
                      const std::vector<SpanRec> &records);

/** Consumes one finished run's telemetry. */
class Sink
{
  public:
    virtual ~Sink() = default;

    /** @return false on failure, with @p err set (never throws). */
    virtual bool consume(const RunReport &report,
                         const std::vector<SpanRec> &records,
                         std::string *err) = 0;
};

/** Writes the run-report JSON to a file. */
class ReportSink final : public Sink
{
  public:
    explicit ReportSink(std::string path) : path_(std::move(path)) {}

    bool consume(const RunReport &report,
                 const std::vector<SpanRec> &records,
                 std::string *err) override;

  private:
    std::string path_;
};

/** Writes the Chrome trace-event JSONL to a file. */
class ChromeTraceSink final : public Sink
{
  public:
    explicit ChromeTraceSink(std::string path) : path_(std::move(path))
    {
    }

    bool consume(const RunReport &report,
                 const std::vector<SpanRec> &records,
                 std::string *err) override;

  private:
    std::string path_;
};

/**
 * One run's collection scope. start() activates the process-wide
 * registry (false and inert when another collector already owns it),
 * finish() stops it, aggregates, feeds every attached sink and
 * releases the registry. The destructor releases without flushing —
 * an exception between start() and finish() must not leave a dangling
 * active registry.
 */
class Collector
{
  public:
    Collector() = default;
    ~Collector();

    Collector(const Collector &) = delete;
    Collector &operator=(const Collector &) = delete;

    bool start(size_t capacity = Telemetry::kDefaultCapacity);

    bool active() const { return owned_; }

    void addSink(std::unique_ptr<Sink> sink);

    /**
     * Stop, aggregate with @p cache folded in, run every sink, then
     * release the registry. @return false when any sink failed (the
     * first diagnostic lands in @p err); no-op returning true when
     * start() never owned the registry.
     */
    bool finish(const sweep::CacheStats &cache, std::string *err = nullptr);

  private:
    std::vector<std::unique_ptr<Sink>> sinks_;
    bool owned_ = false;
};

} // namespace swan::obs

#endif // SWAN_OBS_REPORT_HH
