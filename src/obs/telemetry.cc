#include "obs/telemetry.hh"

#include "swan/internal/contracts.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <time.h>
#include <unistd.h>
#define SWAN_OBS_HAVE_POSIX 1
#endif

namespace swan::obs
{

namespace
{

/** Process-wide shard tag; plain int — it is written once, right
 *  after fork, before the child spawns any thread. */
int g_shard = -1;

/** The instance created by start(); outlives stop() until release(). */
Telemetry *g_instance = nullptr;

size_t
alignUp(size_t v, size_t a)
{
    return (v + a - 1) / a * a;
}

} // namespace

std::atomic<Telemetry *> Telemetry::g_active{nullptr};

std::string_view
name(Phase p)
{
    switch (p) {
      case Phase::Sweep:
        return "sweep";
      case Phase::GridExpand:
        return "grid_expand";
      case Phase::CacheLookup:
        return "cache_lookup";
      case Phase::Capture:
        return "capture";
      case Phase::Pack:
        return "pack";
      case Phase::Spill:
        return "spill";
      case Phase::Replay:
        return "replay";
      case Phase::Publish:
        return "publish";
      case Phase::Shard:
        return "shard";
      case Phase::Merge:
        return "merge";
      case Phase::Recovery:
        return "recovery";
      case Phase::Promote:
        return "promote";
      case Phase::Demote:
        return "demote";
    }
    return "unknown";
}

Telemetry *
Telemetry::instance()
{
    return g_instance;
}

bool
Telemetry::start(size_t capacity)
{
    if (g_instance)
        return false;
    if (capacity == 0)
        capacity = 1;
    const size_t headBytes = alignUp(sizeof(Telemetry), 64);
    const size_t total = headBytes + capacity * sizeof(SpanRec);
    void *mem = nullptr;
    bool mapped = false;
#ifdef SWAN_OBS_HAVE_POSIX
    // One anonymous mapping for the instance AND its record buffer:
    // recording must stay invisible to malloc (see the file comment),
    // and a forked shard child must inherit the whole registry as one
    // copy-on-write region. The placement hint keeps the arena out of
    // the kernel's top-down mmap search region: a nullptr mapping here
    // would shift every later large-allocation mapping — including
    // capture buffers, whose *addresses the simulation observes* — so
    // metrics-on runs would stop being byte-identical to metrics-off
    // runs. The hint address sits far above any heap and far below the
    // mmap base on 47/48-bit layouts; if it happens to be taken the
    // kernel falls back to a normal placement (collection still works,
    // byte-identity is then best-effort).
    void *hint = reinterpret_cast<void *>(0x200000000000ull);
    void *p = ::mmap(hint, total, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
        mem = p;
        mapped = true;
    }
#endif
    if (!mem)
        mem = ::operator new(total);
    auto *buf = reinterpret_cast<SpanRec *>(static_cast<uint8_t *>(mem) +
                                            headBytes);
    auto *t = new (mem) Telemetry(buf, capacity, total);
    t->mapped_ = mapped;
    g_instance = t;
    g_active.store(t, std::memory_order_release);
    return true;
}

void
Telemetry::stop()
{
    g_active.store(nullptr, std::memory_order_release);
}

void
Telemetry::release()
{
    Telemetry *t = g_instance;
    if (!t)
        return;
    g_active.store(nullptr, std::memory_order_release);
    g_instance = nullptr;
    const bool mapped = t->mapped_;
    const size_t bytes = t->mapBytes_;
    t->~Telemetry();
    if (mapped) {
#ifdef SWAN_OBS_HAVE_POSIX
        ::munmap(t, bytes);
#endif
    } else {
        ::operator delete(t);
        (void)bytes;
    }
}

void
Telemetry::setShard(int s)
{
    g_shard = s;
    if (Telemetry *t = g_instance)
        t->fence_ = std::min(t->n_.load(std::memory_order_relaxed),
                             t->cap_);
}

int
Telemetry::shard()
{
    return g_shard;
}

void
Telemetry::record(const SpanRec &rec)
{
    // The recording path is a no-alloc region: spans bracket the
    // capture phase itself, so any heap traffic here would perturb
    // the capture-time layout metrics-on runs must share with
    // metrics-off runs (file comment; docs/lint.md).
    SWAN_NOALLOC_BEGIN("obs::Telemetry::record");
    const size_t i = n_.fetch_add(1, std::memory_order_relaxed);
    if (i < cap_)
        buf_[i] = rec;
    else
        dropped_.fetch_add(1, std::memory_order_relaxed);
    SWAN_NOALLOC_END();
}

size_t
Telemetry::count() const
{
    return std::min(n_.load(std::memory_order_relaxed), cap_);
}

std::vector<SpanRec>
Telemetry::snapshot() const
{
    const size_t n = count();
    return std::vector<SpanRec>(buf_, buf_ + n);
}

void
Telemetry::setMeta(const RunMeta &meta)
{
    metaPoints_.store(meta.points, std::memory_order_relaxed);
    metaUnits_.store(meta.units, std::memory_order_relaxed);
    metaJobs_.store(meta.jobs, std::memory_order_relaxed);
    metaShards_.store(meta.shards, std::memory_order_relaxed);
    std::memcpy(backend_, meta.backend, sizeof backend_);
    backend_[sizeof backend_ - 1] = '\0';
}

RunMeta
Telemetry::meta() const
{
    RunMeta m;
    m.points = metaPoints_.load(std::memory_order_relaxed);
    m.units = metaUnits_.load(std::memory_order_relaxed);
    m.jobs = metaJobs_.load(std::memory_order_relaxed);
    m.shards = metaShards_.load(std::memory_order_relaxed);
    std::memcpy(m.backend, backend_, sizeof m.backend);
    m.backend[sizeof m.backend - 1] = '\0';
    return m;
}

bool
Telemetry::writeSnapshot(const char *path) const
{
    std::FILE *f = std::fopen(path, "wb");
    if (!f)
        return false;
    const size_t n = count();
    const size_t first = std::min(fence_, n);
    long pid = 0;
#ifdef SWAN_OBS_HAVE_POSIX
    pid = static_cast<long>(::getpid());
#endif
    bool ok = std::fprintf(f, "pid %ld\nshard %d\ncount %zu\n", pid,
                           g_shard, n - first) >= 0;
    for (size_t i = first; ok && i < n; ++i) {
        const SpanRec &r = buf_[i];
        ok = std::fprintf(
                 f, "%u %llu %llu %llu %llu %u\n", unsigned(r.phase),
                 static_cast<unsigned long long>(r.t0Ns),
                 static_cast<unsigned long long>(r.t1Ns),
                 static_cast<unsigned long long>(r.cpuNs),
                 static_cast<unsigned long long>(r.arg),
                 unsigned(r.tid)) >= 0;
    }
    ok = (std::fclose(f) == 0) && ok;
    return ok;
}

size_t
Telemetry::absorbSnapshot(const char *path)
{
    // A missing snapshot is an expected outcome (a crashed shard, or
    // one forked before the collector started): silent zero. Only a
    // file that exists but cannot be parsed end-to-end is corrupt.
    std::ifstream in(path);
    if (!in.is_open())
        return 0;
    const auto corrupt = [this] {
        corruptSnapshots_.fetch_add(1, std::memory_order_relaxed);
        return size_t(0);
    };
    std::string tag;
    long pid = 0;
    int shard = -1;
    size_t n = 0;
    if (!(in >> tag >> pid) || tag != "pid")
        return corrupt();
    if (!(in >> tag >> shard) || tag != "shard" || shard < -1 ||
        shard > 127)
        return corrupt();
    if (!(in >> tag >> n) || tag != "count")
        return corrupt();
    // Validate the whole payload before recording any of it: a
    // truncated or garbage snapshot absorbs NOTHING — half a shard's
    // spans would silently skew every phase total in the report — and
    // the fleet merge proceeds as if the shard had crashed.
    std::vector<SpanRec> recs;
    recs.reserve(std::min(n, cap_));
    for (size_t i = 0; i < n; ++i) {
        unsigned phase = 0, tid = 0;
        unsigned long long t0 = 0, t1 = 0, cpu = 0, arg = 0;
        if (!(in >> phase >> t0 >> t1 >> cpu >> arg >> tid))
            return corrupt();
        if (phase >= kPhaseCount)
            continue; // a newer writer's phase: skip, stay compatible
        SpanRec r;
        r.phase = Phase(phase);
        r.t0Ns = t0;
        r.t1Ns = t1;
        r.cpuNs = cpu;
        r.arg = arg;
        r.tid = uint32_t(tid);
        r.shard = int8_t(shard);
        recs.push_back(r);
    }
    for (const SpanRec &r : recs)
        record(r);
    return recs.size();
}

uint64_t
Telemetry::nowNs()
{
#ifdef SWAN_OBS_HAVE_POSIX
    timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return uint64_t(ts.tv_sec) * 1000000000ull + uint64_t(ts.tv_nsec);
#else
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count());
#endif
}

uint64_t
Telemetry::cpuNowNs()
{
#if defined(SWAN_OBS_HAVE_POSIX) && defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
    return uint64_t(ts.tv_sec) * 1000000000ull + uint64_t(ts.tv_nsec);
#else
    return 0;
#endif
}

uint32_t
Telemetry::threadId()
{
    // Hash-derived, stable for the thread's lifetime, and computed
    // without allocation (std::hash of std::thread::id is a direct
    // integral hash on every mainstream libstdc++/libc++).
    const size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return uint32_t(h ^ (h >> 32));
}

} // namespace swan::obs
