#include "obs/report.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "swan/internal/simd_dispatch.hh"

namespace swan::obs
{

namespace
{

bool
anyCount(const std::array<PhaseStats, kPhaseCount> &phases)
{
    for (const auto &p : phases)
        if (p.count)
            return true;
    return false;
}

void
writePhaseArray(std::ostream &os, const char *indent,
                const std::array<PhaseStats, kPhaseCount> &phases)
{
    os << "[";
    bool first = true;
    for (size_t i = 0; i < kPhaseCount; ++i) {
        const PhaseStats &p = phases[i];
        if (!p.count)
            continue;
        os << (first ? "\n" : ",\n") << indent << "  {\"phase\": \""
           << name(Phase(i)) << "\", \"count\": " << p.count
           << ", \"wall_ns\": " << p.wallNs << ", \"cpu_ns\": " << p.cpuNs
           << ", \"min_ns\": " << p.minNs << ", \"max_ns\": " << p.maxNs
           << ", \"arg_total\": " << p.argTotal << "}";
        first = false;
    }
    os << (first ? "]" : std::string("\n") + indent + "]");
}

/** Shard -> Chrome pid: parent (-1) is pid 1, shard N is pid N + 2. */
int
chromePid(int shard)
{
    return shard + 2;
}

} // namespace

void
PhaseStats::add(const SpanRec &r)
{
    const uint64_t wall = r.t1Ns >= r.t0Ns ? r.t1Ns - r.t0Ns : 0;
    if (count == 0 || wall < minNs)
        minNs = wall;
    if (wall > maxNs)
        maxNs = wall;
    ++count;
    wallNs += wall;
    cpuNs += r.cpuNs;
    argTotal += r.arg;
}

double
RunReport::replayMinstrPerS() const
{
    const PhaseStats &r = phases[size_t(Phase::Replay)];
    if (!r.wallNs || !r.argTotal)
        return 0.0;
    return double(r.argTotal) * 1e3 / double(r.wallNs);
}

RunReport
buildReport(const std::vector<SpanRec> &records, const RunMeta &meta,
            uint64_t dropped_spans, const sweep::CacheStats &cache,
            uint64_t corrupt_snapshots)
{
    RunReport rep;
    rep.meta = meta;
    rep.cache = cache;
    rep.droppedSpans = dropped_spans;
    rep.corruptSnapshots = corrupt_snapshots;

    std::map<int, std::array<PhaseStats, kPhaseCount>> byShard;
    for (const SpanRec &r : records) {
        const size_t pi = size_t(r.phase);
        if (pi >= kPhaseCount)
            continue;
        rep.phases[pi].add(r);
        byShard[int(r.shard)][pi].add(r);
    }
    rep.wallNs = rep.phases[size_t(Phase::Sweep)].wallNs;
    for (auto &[shard, phases] : byShard) {
        if (!anyCount(phases))
            continue;
        RunReport::ShardBreakdown b;
        b.shard = shard;
        b.phases = phases;
        rep.shards.push_back(std::move(b));
    }
    return rep;
}

void
writeReportJson(std::ostream &os, const RunReport &rep)
{
    os << "{\n";
    os << "  \"swan_obs_version\": 1,\n";
    os << "  \"meta\": {\"points\": " << rep.meta.points
       << ", \"units\": " << rep.meta.units
       << ", \"jobs\": " << rep.meta.jobs
       << ", \"shards\": " << rep.meta.shards << ", \"backend\": \""
       << rep.meta.backend << "\"},\n";
    // The replay engine's runtime ISA dispatch: which decode/step
    // kernels this run actually executed (matches `swan version`).
    const detail::SimdDispatch &simd = detail::simdDispatch();
    os << "  \"simd\": {\"isa\": \"" << simd.isa << "\", \"decode\": \""
       << simd.decodeKernel << "\", \"step\": \"" << simd.stepKernel
       << "\", \"forced\": " << (simd.forced ? "true" : "false")
       << "},\n";
    os << "  \"wall_ns\": " << rep.wallNs << ",\n";
    os << "  \"dropped_spans\": " << rep.droppedSpans << ",\n";
    os << "  \"corrupt_obsnaps\": " << rep.corruptSnapshots << ",\n";
    char rate[64];
    std::snprintf(rate, sizeof rate, "%.3f", rep.replayMinstrPerS());
    os << "  \"replay_minstr_per_s\": " << rate << ",\n";
    os << "  \"phases\": ";
    writePhaseArray(os, "  ", rep.phases);
    os << ",\n  \"shards\": [";
    for (size_t i = 0; i < rep.shards.size(); ++i) {
        os << (i ? ",\n" : "\n") << "    {\"shard\": "
           << rep.shards[i].shard << ", \"phases\": ";
        writePhaseArray(os, "    ", rep.shards[i].phases);
        os << "}";
    }
    os << (rep.shards.empty() ? "]" : "\n  ]") << ",\n";
    const sweep::CacheStats &c = rep.cache;
    os << "  \"cache\": {\"memory_hits\": " << c.hits
       << ", \"disk_hits\": " << c.diskHits << ", \"misses\": " << c.misses
       << ", \"stores\": " << c.stores << ", \"trace_hits\": "
       << c.traceHits << ", \"trace_misses\": " << c.traceMisses
       << ", \"trace_stores\": " << c.traceStores
       << ", \"trace_ram_hits\": " << c.traceRamHits
       << ", \"evictions\": " << c.evictions
       << ", \"far_hits\": " << c.farHits
       << ", \"far_misses\": " << c.farMisses
       << ", \"far_stores\": " << c.farStores
       << ", \"disk_promotions\": " << c.farPromotions
       << ", \"ram_promotions\": " << c.ramPromotions
       << ", \"ram_demotions\": " << c.ramDemotions
       << ", \"corrupt_quarantined\": " << c.corruptEntriesQuarantined
       << ", \"stale_claims_swept\": " << c.staleClaimsSwept
       << ", \"recovered_units\": " << c.recoveredUnits << "}\n";
    os << "}\n";
}

void
writeChromeTrace(std::ostream &os, const std::vector<SpanRec> &records)
{
    // Normalize to the earliest open so timestamps start near zero —
    // Perfetto renders absolute CLOCK_MONOTONIC values fine but the
    // zoomed-out view is friendlier this way.
    uint64_t base = ~0ull;
    for (const SpanRec &r : records)
        base = std::min(base, r.t0Ns);
    if (records.empty())
        base = 0;

    os << "[\n";
    // Metadata: name one Chrome "process" per recording process so
    // shard tracks separate visually.
    std::map<int, bool> shardsSeen;
    for (const SpanRec &r : records)
        shardsSeen.emplace(int(r.shard), true);
    bool first = true;
    for (const auto &[shard, unused] : shardsSeen) {
        (void)unused;
        os << (first ? "" : ",\n") << "{\"name\": \"process_name\", "
           << "\"ph\": \"M\", \"pid\": " << chromePid(shard)
           << ", \"args\": {\"name\": \""
           << (shard < 0 ? std::string("swan parent")
                         : "swan shard " + std::to_string(shard))
           << "\"}}";
        first = false;
    }
    for (const SpanRec &r : records) {
        char ts[64], dur[64];
        const uint64_t wall = r.t1Ns >= r.t0Ns ? r.t1Ns - r.t0Ns : 0;
        std::snprintf(ts, sizeof ts, "%.3f",
                      double(r.t0Ns - base) / 1e3);
        std::snprintf(dur, sizeof dur, "%.3f", double(wall) / 1e3);
        os << (first ? "" : ",\n") << "{\"name\": \"" << name(r.phase)
           << "\", \"cat\": \"swan\", \"ph\": \"X\", \"ts\": " << ts
           << ", \"dur\": " << dur << ", \"pid\": " << chromePid(r.shard)
           << ", \"tid\": " << r.tid << ", \"args\": {\"arg\": " << r.arg
           << ", \"shard\": " << int(r.shard) << "}}";
        first = false;
    }
    os << "\n]\n";
}

bool
ReportSink::consume(const RunReport &report,
                    const std::vector<SpanRec> &records, std::string *err)
{
    (void)records;
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (err)
            *err = "obs: cannot open report file " + path_;
        return false;
    }
    writeReportJson(out, report);
    out.flush();
    if (!out) {
        if (err)
            *err = "obs: short write to " + path_;
        return false;
    }
    return true;
}

bool
ChromeTraceSink::consume(const RunReport &report,
                         const std::vector<SpanRec> &records,
                         std::string *err)
{
    (void)report;
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (err)
            *err = "obs: cannot open trace file " + path_;
        return false;
    }
    writeChromeTrace(out, records);
    out.flush();
    if (!out) {
        if (err)
            *err = "obs: short write to " + path_;
        return false;
    }
    return true;
}

Collector::~Collector()
{
    if (owned_)
        Telemetry::release();
}

bool
Collector::start(size_t capacity)
{
    if (owned_)
        return true;
    owned_ = Telemetry::start(capacity);
    return owned_;
}

void
Collector::addSink(std::unique_ptr<Sink> sink)
{
    if (sink)
        sinks_.push_back(std::move(sink));
}

bool
Collector::finish(const sweep::CacheStats &cache, std::string *err)
{
    if (!owned_)
        return true;
    Telemetry::stop();
    Telemetry *t = Telemetry::instance();
    bool ok = true;
    if (t) {
        const std::vector<SpanRec> records = t->snapshot();
        const RunReport rep =
            buildReport(records, t->meta(), t->dropped(), cache,
                        t->corruptSnapshots());
        for (auto &sink : sinks_) {
            std::string serr;
            if (!sink->consume(rep, records, &serr)) {
                if (ok && err)
                    *err = serr;
                ok = false;
            }
        }
    }
    Telemetry::release();
    owned_ = false;
    return ok;
}

} // namespace swan::obs
