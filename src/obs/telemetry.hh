/**
 * @file
 * swan::obs — phase-structured telemetry for the sweep pipeline.
 *
 * A Telemetry instance is a lock-free span registry: every pipeline
 * phase (grid expand, cache lookup, capture, pack, spill, decode/
 * replay, publish, shard merge, recovery) brackets itself with a Span
 * guard, and the guard appends one fixed-size SpanRec to a shared
 * buffer with a single atomic fetch_add. When no collector is active
 * the guard is a relaxed pointer load and a branch — no clock reads,
 * no stores, no allocation — so instrumented code is measurably
 * indistinguishable from uninstrumented code (bench/obs_overhead.cc
 * gates this at <= 2% on the fused-replay hot path).
 *
 * Determinism contract (why this file is written the way it is): the
 * sweep engine guarantees byte-identical emitter output across
 * backends, job counts and shard counts, and that guarantee rests on
 * the capture thread's heap evolving identically whatever the
 * configuration — captured traces carry real buffer addresses and the
 * cache models are address-sensitive (sweep/cache.hh). Telemetry
 * therefore NEVER touches malloc on the recording path: the instance
 * and its record buffer live in one anonymous mmap region (like the
 * threaded backend's WorkerPool arena), record() is an index bump
 * plus a struct store into that region, and overflow drops records
 * (counted) instead of growing. Collection may allocate freely — it
 * happens before the first capture (start) and after the last result
 * lands (snapshot/flush).
 *
 * Shard transport: a forked shard child inherits the active instance
 * copy-on-write. The child tags itself with setShard(), records into
 * its private copy, and writes the records made since the fork fence
 * to a small text snapshot file next to the cache tier's `.stats`
 * delta files; the parent absorbs every shard's snapshot after
 * waitpid, so one flush sees the whole fleet.
 */

#ifndef SWAN_OBS_TELEMETRY_HH
#define SWAN_OBS_TELEMETRY_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace swan::obs
{

/** The span taxonomy, one value per pipeline phase. */
enum class Phase : uint8_t
{
    Sweep = 0,   //!< whole runSweep envelope (one per sweep)
    GridExpand,  //!< spec -> flattened point list
    CacheLookup, //!< result probe (phase 1a) / packed-trace disk read
    Capture,     //!< instrumented kernel execution -> Instr stream
    Pack,        //!< Instr stream -> varint PackedTrace
    Spill,       //!< memo-budget eviction write / worker reload
    Replay,      //!< fused multi-config packed-trace traversal
    Publish,     //!< result stores into the cache tiers
    Shard,       //!< one shard child process, fork to _exit
    Merge,       //!< parent-side merge of shard-published units
    Recovery,    //!< parent re-execution of units a dead shard left
    Promote,     //!< cache tier promotion (far->disk copy, RAM pin)
    Demote,      //!< cache tier demotion (cold-first eviction)
};

constexpr size_t kPhaseCount = size_t(Phase::Demote) + 1;

/** Lower-case stable phase name ("grid_expand", "replay", ...). */
std::string_view name(Phase p);

/** One closed span. Fixed-size and trivially copyable: records cross
 *  process boundaries via text snapshots and live in a shared mmap. */
struct SpanRec
{
    uint64_t t0Ns = 0;  //!< CLOCK_MONOTONIC at open
    uint64_t t1Ns = 0;  //!< CLOCK_MONOTONIC at close
    uint64_t cpuNs = 0; //!< thread CPU time consumed inside the span
    /** Phase-specific payload: instructions decoded (Replay: decoded
     *  instructions x configs x passes), bytes (Pack/Spill), points
     *  (CacheLookup/Publish), units (Merge/Recovery). */
    uint64_t arg = 0;
    uint32_t tid = 0; //!< stable-per-thread id (hashed, truncated)
    Phase phase = Phase::Sweep;
    int8_t shard = -1; //!< owning shard, -1 = parent process
};

/** Sweep-level metadata stamped by the scheduler for the run report. */
struct RunMeta
{
    uint64_t points = 0; //!< grid points in the sweep
    uint64_t units = 0;  //!< trace groups scheduled (pending only)
    int jobs = 1;
    int shards = 1;
    char backend[16] = {0}; //!< resolved backend name
};

/**
 * The span registry. At most one instance is active per process;
 * create it with start() before the work to observe, read it with
 * snapshot()/meta()/dropped() after, and destroy it with release().
 * record() is safe from any thread and from forked children (each
 * child records into its copy-on-write clone of the buffer).
 */
class Telemetry
{
  public:
    static constexpr size_t kDefaultCapacity = 1 << 16;

    /** The recording target, or null when collection is off. A single
     *  relaxed load: this is the whole cost of an unobserved Span. */
    static Telemetry *
    active()
    {
        return g_active.load(std::memory_order_relaxed);
    }

    /** The instance created by start(), active or stopped. */
    static Telemetry *instance();

    /** Create and activate the process-wide instance (one anonymous
     *  mmap region, no malloc). False if one already exists. */
    static bool start(size_t capacity = kDefaultCapacity);

    /** Stop recording; the instance stays readable until release(). */
    static void stop();

    /** Unmap the instance. No-op when none exists. All Span guards
     *  must be closed first. */
    static void release();

    /** Tag this process as shard @p s (children call it right after
     *  fork; -1 = parent). Also marks the snapshot fence: a later
     *  writeSnapshot() exports only records made after this call.
     *  Always callable, collector active or not. */
    static void setShard(int s);

    /** The current process's shard tag (-1 in the parent). */
    static int shard();

    void record(const SpanRec &rec);

    /** Records accepted so far (excludes dropped). */
    size_t count() const;

    /** Records dropped on buffer overflow. */
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Copy of every accepted record, in record order. Allocates;
     *  call outside the capture window. */
    std::vector<SpanRec> snapshot() const;

    void setMeta(const RunMeta &meta);
    RunMeta meta() const;

    /**
     * Export the records made since the setShard() fence as a text
     * snapshot at @p path ("pid <pid>" header first, like the sharded
     * backend's `.stats` files, so stale-file cleanup can probe the
     * owner's liveness). Child-side; uses stdio on a caller-built
     * path only — a shard child must not unwind or flush foreign
     * buffers.
     */
    bool writeSnapshot(const char *path) const;

    /**
     * Parent-side: read a child snapshot and append its records to
     * this instance (shard tag taken from the file header). The whole
     * payload is parsed and validated first — a snapshot that exists
     * but is garbage or truncated (a killed shard mid-write, a bad
     * sector) absorbs NOTHING and bumps corruptSnapshots(), exactly
     * like a crashed shard's missing file; a half-absorbed snapshot
     * would silently skew every phase total. Returns records absorbed,
     * 0 on a missing or corrupt file — never an error.
     */
    size_t absorbSnapshot(const char *path);

    /** Snapshot files absorbSnapshot() rejected as corrupt (existing
     *  but unparseable end-to-end); surfaced in the run report. */
    uint64_t
    corruptSnapshots() const
    {
        return corruptSnapshots_.load(std::memory_order_relaxed);
    }

    /** CLOCK_MONOTONIC, nanoseconds. */
    static uint64_t nowNs();

    /** This thread's CPU clock, nanoseconds (0 where unsupported). */
    static uint64_t cpuNowNs();

    /** Stable-per-thread 32-bit id for SpanRec::tid. */
    static uint32_t threadId();

  private:
    Telemetry(SpanRec *buf, size_t cap, size_t map_bytes)
        : cap_(cap), mapBytes_(map_bytes), buf_(buf)
    {
    }

    static std::atomic<Telemetry *> g_active;

    std::atomic<size_t> n_{0};
    std::atomic<uint64_t> dropped_{0};
    std::atomic<uint64_t> corruptSnapshots_{0};
    size_t cap_;
    size_t mapBytes_;
    SpanRec *buf_;
    size_t fence_ = 0; //!< first record owned by this (child) process
    bool mapped_ = false;

    // Meta fields are plain atomics so the scheduler can stamp them
    // mid-run without a lock (and without tearing a torn read at
    // flush time).
    std::atomic<uint64_t> metaPoints_{0};
    std::atomic<uint64_t> metaUnits_{0};
    std::atomic<int> metaJobs_{1};
    std::atomic<int> metaShards_{1};
    char backend_[16] = {0};
};

/**
 * RAII span guard. Construct at phase entry, closes at scope exit (or
 * explicitly via close()). When no collector is active the whole
 * guard is one relaxed load; when one is, open/close each read two
 * clocks and close() appends one record — still malloc-free, so spans
 * may bracket the capture phase itself.
 */
class Span
{
  public:
    explicit Span(Phase phase, uint64_t arg = 0)
        : t_(Telemetry::active()), phase_(phase), arg_(arg)
    {
        if (t_) {
            t0_ = Telemetry::nowNs();
            cpu0_ = Telemetry::cpuNowNs();
        }
    }

    ~Span() { close(); }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Add to the phase payload (e.g. bytes discovered mid-span). */
    void
    addArg(uint64_t delta)
    {
        if (t_)
            arg_ += delta;
    }

    void
    close()
    {
        if (!t_)
            return;
        SpanRec r;
        r.t0Ns = t0_;
        r.t1Ns = Telemetry::nowNs();
        r.cpuNs = Telemetry::cpuNowNs() - cpu0_;
        r.arg = arg_;
        r.tid = Telemetry::threadId();
        r.phase = phase_;
        r.shard = int8_t(Telemetry::shard());
        t_->record(r);
        t_ = nullptr;
    }

  private:
    Telemetry *t_;
    Phase phase_;
    uint64_t arg_;
    uint64_t t0_ = 0;
    uint64_t cpu0_ = 0;
};

} // namespace swan::obs

#endif // SWAN_OBS_TELEMETRY_HH
