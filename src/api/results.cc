#include "swan/results.hh"

#include <map>
#include <string_view>
#include <tuple>

#include "core/metrics.hh"

namespace swan
{

std::vector<Speedup>
Results::speedupVs(core::Impl baseline) const
{
    // One pass to index the baseline points by their non-width axes,
    // one pass to match — linear, where a rescan per point would be
    // quadratic in the sweep size. The string_views borrow from
    // results_, which outlives the index.
    using Key = std::tuple<const core::KernelSpec *, std::string_view,
                           std::string_view>;
    std::map<Key, std::vector<const sweep::SweepResult *>> index;
    for (const auto &b : results_)
        if (b.point.impl == baseline)
            index[Key{b.point.spec, b.point.configName,
                      b.point.workingSetName}]
                .push_back(&b);

    std::vector<Speedup> out;
    for (const auto &r : results_) {
        if (r.point.impl == baseline)
            continue;
        const auto it = index.find(Key{r.point.spec, r.point.configName,
                                       r.point.workingSetName});
        if (it == index.end())
            continue;
        // Exact-width baseline wins; the width-normalized 128-bit
        // point is the fallback (scalar/auto points have no width
        // axis — sweep::expand collapses them to 128).
        const sweep::SweepResult *base = nullptr;
        for (const sweep::SweepResult *b : it->second) {
            if (b->point.vecBits == r.point.vecBits) {
                base = b;
                break;
            }
            if (!base && b->point.vecBits == 128)
                base = b;
        }
        if (base)
            out.push_back(Speedup{base, &r});
    }
    return out;
}

double
valueFor(const std::vector<std::pair<std::string, double>> &cells,
         std::string_view key, double fallback)
{
    for (const auto &c : cells)
        if (c.first == key)
            return c.second;
    return fallback;
}

std::vector<std::pair<std::string, double>>
geomeanBy(const std::vector<Speedup> &rows,
          const std::function<std::string(const Speedup &)> &key,
          const std::function<double(const Speedup &)> &value)
{
    // Grouped in first-occurrence order; the per-group values keep
    // row order, so the geomean is evaluated over the same sequence a
    // hand-rolled per-kernel loop would produce (floating-point sums
    // are order-sensitive — figure output depends on it).
    std::vector<std::pair<std::string, std::vector<double>>> groups;
    for (const auto &row : rows) {
        const std::string k = key(row);
        std::vector<double> *vals = nullptr;
        for (auto &g : groups)
            if (g.first == k) {
                vals = &g.second;
                break;
            }
        if (!vals) {
            groups.emplace_back(k, std::vector<double>{});
            vals = &groups.back().second;
        }
        vals->push_back(value(row));
    }
    std::vector<std::pair<std::string, double>> out;
    out.reserve(groups.size());
    for (const auto &g : groups)
        out.emplace_back(g.first, core::geomean(g.second));
    return out;
}

} // namespace swan
