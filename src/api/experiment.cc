#include "swan/experiment.hh"

#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/report.hh"
#include "swan/error.hh"
#include "sweep/scheduler.hh"

namespace swan
{

Experiment::Experiment(Session &session) : session_(&session)
{
    spec_.warmupPasses = session.options().warmupPasses;
    spec_.faults = session.options().faults;
}

Experiment &
Experiment::kernels(std::vector<std::string> names)
{
    spec_.kernels.names = std::move(names);
    return *this;
}

Experiment &
Experiment::kernel(std::string name)
{
    spec_.kernels.names.push_back(std::move(name));
    return *this;
}

Experiment &
Experiment::library(std::string symbol)
{
    spec_.kernels.library = std::move(symbol);
    return *this;
}

Experiment &
Experiment::widerOnly(bool on)
{
    spec_.kernels.widerOnly = on;
    return *this;
}

Experiment &
Experiment::includeExcluded(bool on)
{
    spec_.kernels.includeExcluded = on;
    return *this;
}

Experiment &
Experiment::impls(std::vector<core::Impl> impls)
{
    spec_.impls = std::move(impls);
    return *this;
}

Experiment &
Experiment::impl(core::Impl impl)
{
    spec_.impls = {impl};
    return *this;
}

Experiment &
Experiment::vecBits(std::vector<int> bits)
{
    spec_.vecBits = std::move(bits);
    return *this;
}

Experiment &
Experiment::configs(std::vector<std::string> names)
{
    spec_.configs = std::move(names);
    return *this;
}

Experiment &
Experiment::config(std::string name)
{
    spec_.configs = {std::move(name)};
    return *this;
}

Experiment &
Experiment::workingSets(std::vector<std::string> names)
{
    spec_.workingSets = std::move(names);
    return *this;
}

Experiment &
Experiment::workingSet(std::string name)
{
    spec_.workingSets = {std::move(name)};
    return *this;
}

Experiment &
Experiment::warmupPasses(int passes)
{
    spec_.warmupPasses = passes;
    return *this;
}

Experiment &
Experiment::faults(std::vector<std::string> scenarios)
{
    spec_.faults = std::move(scenarios);
    return *this;
}

Experiment &
Experiment::fault(std::string scenario)
{
    spec_.faults.push_back(std::move(scenario));
    return *this;
}

Experiment &
Experiment::withFaults(std::vector<std::string> scenarios)
{
    return faults(std::move(scenarios));
}

Experiment &
Experiment::onRow(sweep::RowCallback callback)
{
    onRow_ = std::move(callback);
    return *this;
}

Results
Experiment::run(std::string *err) const
{
    sweep::SchedulerConfig sc = session_->schedulerConfig();
    sc.onRow = onRow_;

    // Telemetry scope (SessionOptions::metricsOut / SWAN_METRICS):
    // activated BEFORE the sweep so the grid-expand and capture spans
    // are covered, flushed after the last result lands. The collector
    // allocates nothing on the recording path (obs/telemetry.hh), so
    // results are byte-identical with metrics on or off; if another
    // collector already owns the registry this run simply goes
    // uncollected.
    // Activation only — sink construction waits until after the sweep
    // (they are read at finish()): even a pre-capture string allocation
    // would shift the capture-time heap layout and so the recorded
    // buffer addresses.
    const std::string &stem = session_->options().metricsOut;
    obs::Collector collector;
    if (!stem.empty())
        collector.start();

    std::vector<sweep::SweepResult> results;
    try {
        results = sweep::runSweep(spec_, sc, err);
    } catch (const std::exception &e) {
        if (err)
            *err = e.what();
        return Results(); // ~Collector releases without flushing
    }
    if (collector.active()) {
        collector.addSink(
            std::make_unique<obs::ReportSink>(stem + ".report.json"));
        collector.addSink(
            std::make_unique<obs::ChromeTraceSink>(stem +
                                                   ".trace.jsonl"));
        // Metrics failures are advisory: the sweep's results are
        // valid either way, so surface the diagnostic without
        // emptying the return.
        std::string merr;
        if (!collector.finish(session_->cache().stats(), &merr) && err &&
            err->empty())
            *err = merr;
    }
    if (results.empty())
        return Results();
    return Results(std::move(results), session_->cache().stats());
}

Results
Experiment::run() const
{
    std::string err;
    Results r = run(&err);
    if (r.empty())
        throw Error(err.empty() ? "experiment matched no points" : err);
    return r;
}

} // namespace swan
