#include "swan/session.hh"

#include <cstdlib>

namespace swan
{

namespace
{

/**
 * Parse a positive integer env var; @p fallback when unset, unparsable
 * or non-positive. SWAN_JOBS deliberately cannot express "all cores":
 * an environment default silently fanning a sweep out to every
 * hardware thread is a footgun, so all-cores stays an explicit choice
 * (SessionOptions::jobs <= 0, or `--jobs 0` on the CLI). SWAN_SHARDS
 * shares the rule: forking a process fleet is opt-in per value, never
 * an ambient "as many as possible".
 */
int
envInt(const char *name, int fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const long n = std::strtol(v, &end, 10);
    return (end && *end == '\0' && n > 0) ? int(n) : fallback;
}

} // namespace

Session::Session(SessionOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cacheDir, opts_.cacheMaxBytes, opts_.farCacheDir,
             opts_.cacheRamMaxBytes)
{
    // One byte knob for both in-RAM trace memos: the capture-phase
    // spill budget and the cache's pinned-trace tier (T0) answer to
    // SWAN_TRACE_MEMO_BYTES together.
    cache_.setRamTraceBudget(opts_.traceMemoBytes);
}

SessionOptions
Session::envDefaults()
{
    // One parser per variable: the cache and scheduler statics already
    // own theirs, so a format change cannot drift between the façade
    // and the engine.
    SessionOptions o;
    o.jobs = envInt("SWAN_JOBS", o.jobs);
    o.shards = envInt("SWAN_SHARDS", o.shards);
    if (o.shards > sweep::ShardedBackend::kMaxShards)
        o.shards = sweep::ShardedBackend::kMaxShards;
    if (uint64_t ms = 0;
        sweep::parseByteCount(std::getenv("SWAN_SHARD_TIMEOUT_MS"), &ms))
        o.shardTimeoutMs = ms;
    o.shardBatch = envInt("SWAN_SHARD_BATCH", o.shardBatch);
    o.traceMemoBytes = sweep::SchedulerConfig::envTraceMemoBytes();
    o.cacheDir = sweep::ResultCache::envDiskDir();
    o.cacheMaxBytes = sweep::ResultCache::envMaxDiskBytes();
    o.farCacheDir = sweep::ResultCache::envFarDir();
    o.cacheRamMaxBytes = sweep::ResultCache::envRamMaxBytes();
    o.workload = core::Options::fromEnv();
    if (const char *v = std::getenv("SWAN_METRICS"); v && *v)
        o.metricsOut = v;
    return o;
}

core::KernelRun
Session::run(core::Workload &w, core::Impl impl,
             const sim::CoreConfig &cfg, int vec_bits) const
{
    const core::Runner runner(opts_.workload);
    return runner.run(w, impl, cfg, vec_bits, opts_.warmupPasses);
}

core::KernelRun
Session::run(const core::KernelSpec &spec, core::Impl impl,
             const sim::CoreConfig &cfg, int vec_bits) const
{
    auto w = spec.make(opts_.workload);
    return run(*w, impl, cfg, vec_bits);
}

core::Comparison
Session::compare(const core::KernelSpec &spec,
                 const sim::CoreConfig &cfg) const
{
    // One workload instance for all three implementations, like
    // core::Runner::compare, but honoring the session's warm-up
    // passes and workload policy.
    core::Comparison c;
    c.info = spec.info;
    auto w = spec.make(opts_.workload);
    c.scalar = run(*w, core::Impl::Scalar, cfg);
    c.autovec = run(*w, core::Impl::Auto, cfg);
    c.neon = run(*w, core::Impl::Neon, cfg);
    c.verified = w->verify();
    return c;
}

sweep::SchedulerConfig
Session::schedulerConfig() const
{
    sweep::SchedulerConfig sc;
    sc.jobs = opts_.jobs;
    sc.backend = opts_.backend;
    sc.shards = opts_.shards;
    sc.cache = &cache_;
    sc.warmupPasses = opts_.warmupPasses;
    sc.traceMemoBytes = opts_.traceMemoBytes;
    sc.shardTimeoutMs = opts_.shardTimeoutMs;
    sc.shardBatch = opts_.shardBatch;
    return sc;
}

} // namespace swan
