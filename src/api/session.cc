#include "swan/session.hh"

#include <cstdlib>

namespace swan
{

namespace
{

/**
 * Parse a positive integer env var; @p fallback when unset, unparsable
 * or non-positive. SWAN_JOBS deliberately cannot express "all cores":
 * an environment default silently fanning a sweep out to every
 * hardware thread is a footgun, so all-cores stays an explicit choice
 * (SessionOptions::jobs <= 0, or `--jobs 0` on the CLI).
 */
int
envInt(const char *name, int fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const long n = std::strtol(v, &end, 10);
    return (end && *end == '\0' && n > 0) ? int(n) : fallback;
}

} // namespace

Session::Session(SessionOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheDir, opts_.cacheMaxBytes)
{
}

SessionOptions
Session::envDefaults()
{
    // One parser per variable: the cache and scheduler statics already
    // own theirs, so a format change cannot drift between the façade
    // and the engine.
    SessionOptions o;
    o.jobs = envInt("SWAN_JOBS", o.jobs);
    o.traceMemoBytes = sweep::SchedulerConfig::envTraceMemoBytes();
    o.cacheDir = sweep::ResultCache::envDiskDir();
    o.cacheMaxBytes = sweep::ResultCache::envMaxDiskBytes();
    return o;
}

sweep::SchedulerConfig
Session::schedulerConfig() const
{
    sweep::SchedulerConfig sc;
    sc.jobs = opts_.jobs;
    sc.cache = &cache_;
    sc.warmupPasses = opts_.warmupPasses;
    sc.traceMemoBytes = opts_.traceMemoBytes;
    return sc;
}

} // namespace swan
