#include "core/kernel.hh"

namespace swan::core
{

std::string_view
name(Domain d)
{
    switch (d) {
      case Domain::ImageProcessing: return "Image Processing";
      case Domain::Graphics: return "Graphics";
      case Domain::AudioProcessing: return "Audio Processing";
      case Domain::DataCompression: return "Data Compression";
      case Domain::Cryptography: return "Cryptography";
      case Domain::StringUtilities: return "String Utilities";
      case Domain::VideoProcessing: return "Video Processing";
      case Domain::MachineLearning: return "Machine Learning";
      default: return "?";
    }
}

std::string_view
name(Pattern p)
{
    switch (p) {
      case Pattern::Reduction: return "reduction";
      case Pattern::RandomAccess: return "random-access";
      case Pattern::StridedAccess: return "strided-access";
      case Pattern::Transpose: return "matrix-transposition";
      case Pattern::VectorApi: return "vector-api";
      case Pattern::LoopDistribution: return "loop-distribution";
      default: return "none";
    }
}

} // namespace swan::core
