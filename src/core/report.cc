#include "core/report.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace swan::core
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto line = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "| " : " | ") << std::left
               << std::setw(int(width[c])) << cells[c];
        }
        os << " |\n";
    };

    line(headers_);
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c)
        os << std::string(width[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        line(row);
}

std::string
fmt(double x, int prec)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(prec) << x;
    return ss.str();
}

std::string
fmtX(double x, int prec)
{
    return fmt(x, prec) + "x";
}

std::string
fmtPct(double x, int prec)
{
    return fmt(x, prec) + "%";
}

void
banner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n\n";
}

} // namespace swan::core
