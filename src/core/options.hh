/**
 * @file
 * Problem-size options. Paper sizes (Section 4.1): 720x1280 images, 1 s of
 * 44.1 kHz audio, 128 KB buffers, 156 CNN layers. Cycle-accurate simulation
 * of all 59 kernels on one host core needs smaller defaults; setting
 * SWAN_FULL=1 (or Options::full()) restores paper sizes. Shapes and inner
 * loop structure are size-independent; DESIGN.md discusses fidelity.
 */

#ifndef SWAN_CORE_OPTIONS_HH
#define SWAN_CORE_OPTIONS_HH

#include <cstdint>

namespace swan::core
{

/** Workload input-size configuration. */
struct Options
{
    // Image / graphics / video libraries (pixels). The default keeps
    // the RGBA kernels' in+out footprint (8 B/px ~ 1 MiB) past the
    // 512 KiB L2 so the paper's cache-pressure and DRAM-rate effects
    // survive input scaling.
    int imageWidth = 480;
    int imageHeight = 270;

    // Audio libraries: samples per channel (44.1 kHz stream).
    int audioSamples = 4410;        //!< 0.1 s
    int audioFrame = 128;           //!< WebAudio render quantum

    // Data compression / crypto / string utilities (bytes).
    int bufferBytes = 16 * 1024;

    // Machine learning (XNNPACK GEMM/SpMM shapes).
    // N deliberately not divisible by wide-register lane counts, so the
    // Figure-5(a) utilization drop appears (Section 7.1); K sized so the
    // B panel exceeds L1 (the bursty-MPKI behavior of Table 5).
    int gemmM = 96;
    int gemmN = 92;
    int gemmK = 192;
    double spmmSparsity = 0.8;      //!< fraction of zero weights

    // Video coding block counts.
    int videoBlocks = 64;           //!< number of 16x16 blocks processed

    uint32_t seed = 0x5eed5a17u;

    /** Scaled defaults (CI-friendly). */
    static Options defaults() { return {}; }

    /** The paper's input sizes (Section 4.1). */
    static Options full();

    /** defaults(), full() when SWAN_FULL=1, tiny when SWAN_FAST=1. */
    static Options fromEnv();
};

} // namespace swan::core

#endif // SWAN_CORE_OPTIONS_HH
