/**
 * @file
 * Global kernel registry. Workload libraries register their kernels at
 * static-initialization time via SWAN_REGISTER_KERNEL; benches, tests and
 * examples enumerate them here. Table 2's library inventory is derived
 * from the registered metadata.
 */

#ifndef SWAN_CORE_REGISTRY_HH
#define SWAN_CORE_REGISTRY_HH

#include <atomic>
#include <string>
#include <vector>

#include "core/kernel.hh"

namespace swan::core
{

/** Application usage of a library (the checkmark matrix of Table 2). */
struct LibraryUsage
{
    std::string library;
    std::string symbol;
    Domain domain;
    bool chromium = false;
    bool android = false;
    bool webrtc = false;
    bool pdfium = false;
    double chromiumMaxPct = 0.0; //!< max % of Chrome time (Table 2)
    double chromiumAvgPct = 0.0;
};

/**
 * Singleton registry of all kernels and library metadata.
 *
 * Thread-safety contract: registration happens exclusively in static
 * initializers (SWAN_REGISTER_KERNEL at namespace scope), i.e. on one
 * thread before main() runs — add() takes no lock. kernels() and
 * find() hand out references into the backing vector, so the vector
 * must never reallocate while readers exist. The sweep scheduler
 * enforces this registration-before-run invariant by calling
 * closeRegistration() before its worker threads start; any add() after
 * that point aborts with a diagnostic.
 */
class Registry
{
  public:
    static Registry &instance();

    /** Append a kernel. Aborts if registration has been closed. */
    void add(KernelSpec spec);
    void addLibrary(LibraryUsage usage);

    /**
     * Freeze the registry: concurrent readers may now hold references
     * into kernels() safely. Idempotent; there is no reopen.
     */
    void closeRegistration() { closed_.store(true, std::memory_order_release); }
    bool registrationClosed() const
    {
        return closed_.load(std::memory_order_acquire);
    }

    const std::vector<KernelSpec> &kernels() const { return kernels_; }
    const std::vector<LibraryUsage> &libraries() const { return libs_; }

    /** Kernels of one library symbol (e.g. "ZL"). */
    std::vector<const KernelSpec *> bySymbol(const std::string &sym) const;

    /** Find one kernel ("ZL/adler32" or plain name); null if absent. */
    const KernelSpec *find(const std::string &qualified) const;

    /** Distinct library symbols in registration order. */
    std::vector<std::string> symbols() const;

  private:
    Registry() = default;
    std::atomic<bool> closed_{false};
    std::vector<KernelSpec> kernels_;
    std::vector<LibraryUsage> libs_;
};

/** Static registration helper. */
struct Registrar
{
    explicit Registrar(KernelSpec spec)
    {
        Registry::instance().add(std::move(spec));
    }
};

struct LibraryRegistrar
{
    explicit LibraryRegistrar(LibraryUsage usage)
    {
        Registry::instance().addLibrary(std::move(usage));
    }
};

#define SWAN_CONCAT_INNER(a, b) a##b
#define SWAN_CONCAT(a, b) SWAN_CONCAT_INNER(a, b)

/** Register a kernel; use at namespace scope in workload libraries. */
#define SWAN_REGISTER_KERNEL(spec)                                          \
    static ::swan::core::Registrar SWAN_CONCAT(swan_reg_, __COUNTER__)(spec)

/** Register a library's Table 2 metadata. */
#define SWAN_REGISTER_LIBRARY(usage)                                       \
    static ::swan::core::LibraryRegistrar SWAN_CONCAT(                      \
        swan_lib_, __COUNTER__)(usage)

} // namespace swan::core

#endif // SWAN_CORE_REGISTRY_HH
