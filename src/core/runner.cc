#include "core/runner.hh"

namespace swan::core
{

std::string_view
name(Impl impl)
{
    switch (impl) {
      case Impl::Scalar: return "Scalar";
      case Impl::Auto: return "Auto";
      case Impl::Neon: return "Neon";
      default: return "?";
    }
}

std::vector<trace::Instr>
Runner::capture(Workload &w, Impl impl, int vec_bits)
{
    trace::Recorder rec;
    {
        trace::ScopedRecorder scoped(&rec);
        switch (impl) {
          case Impl::Scalar:
            w.runScalar();
            break;
          case Impl::Auto:
            w.runAuto();
            break;
          case Impl::Neon:
            w.runNeon(vec_bits);
            break;
        }
    }
    return rec.take();
}

KernelRun
Runner::run(Workload &w, Impl impl, const sim::CoreConfig &cfg,
            int vec_bits, int warmup_passes) const
{
    KernelRun out;
    auto instrs = capture(w, impl, vec_bits);
    out.mix.addTrace(instrs);
    out.sim = sim::simulateTrace(instrs, cfg, warmup_passes);
    sim::applyPowerModel(out.sim, sim::PowerParams::forConfig(cfg));
    return out;
}

Comparison
Runner::compare(const KernelSpec &spec, const sim::CoreConfig &cfg) const
{
    Comparison c;
    c.info = spec.info;
    auto w = spec.make(opts_);
    c.scalar = run(*w, Impl::Scalar, cfg);
    c.autovec = run(*w, Impl::Auto, cfg);
    c.neon = run(*w, Impl::Neon, cfg);
    c.verified = w->verify();
    return c;
}

Comparison
Runner::compareScalarNeon(const KernelSpec &spec,
                          const sim::CoreConfig &cfg, int vec_bits) const
{
    Comparison c;
    c.info = spec.info;
    auto w = spec.make(opts_);
    c.scalar = run(*w, Impl::Scalar, cfg);
    c.neon = run(*w, Impl::Neon, cfg, vec_bits);
    c.autovec = c.scalar;
    c.verified = w->verify();
    return c;
}

} // namespace swan::core
