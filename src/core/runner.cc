#include "core/runner.hh"

namespace swan::core
{

std::string_view
name(Impl impl)
{
    switch (impl) {
      case Impl::Scalar: return "Scalar";
      case Impl::Auto: return "Auto";
      case Impl::Neon: return "Neon";
      default: return "?";
    }
}

std::vector<trace::Instr>
Runner::capture(Workload &w, Impl impl, int vec_bits)
{
    std::vector<trace::Instr> out;
    captureInto(w, impl, vec_bits, &out);
    return out;
}

void
Runner::captureInto(Workload &w, Impl impl, int vec_bits,
                    std::vector<trace::Instr> *out)
{
    trace::Recorder rec(out);
    {
        trace::ScopedRecorder scoped(&rec);
        switch (impl) {
          case Impl::Scalar:
            w.runScalar();
            break;
          case Impl::Auto:
            w.runAuto();
            break;
          case Impl::Neon:
            w.runNeon(vec_bits);
            break;
        }
    }
}

KernelRun
Runner::run(Workload &w, Impl impl, const sim::CoreConfig &cfg,
            int vec_bits, int warmup_passes) const
{
    return runMany(w, impl, {cfg}, vec_bits, warmup_passes).front();
}

std::vector<KernelRun>
Runner::runMany(Workload &w, Impl impl,
                const std::vector<sim::CoreConfig> &cfgs, int vec_bits,
                int warmup_passes) const
{
    trace::MixStats mix;
    trace::PackedTrace packed;
    {
        const auto instrs = capture(w, impl, vec_bits);
        mix.addTrace(instrs);
        packed = trace::PackedTrace::pack(instrs);
        // The 64-byte-per-instr AoS buffer dies here; simulation runs
        // off the packed encoding.
    }
    // Results come out of the replay engine power-complete (the power
    // model is fused into CoreModel::finish).
    auto sims = sim::simulateTraceMany(packed, cfgs, warmup_passes);
    std::vector<KernelRun> out(cfgs.size());
    for (size_t i = 0; i < cfgs.size(); ++i) {
        out[i].mix = mix;
        out[i].sim = std::move(sims[i]);
    }
    return out;
}

Comparison
Runner::compare(const KernelSpec &spec, const sim::CoreConfig &cfg) const
{
    Comparison c;
    c.info = spec.info;
    auto w = spec.make(opts_);
    c.scalar = run(*w, Impl::Scalar, cfg);
    c.autovec = run(*w, Impl::Auto, cfg);
    c.neon = run(*w, Impl::Neon, cfg);
    c.verified = w->verify();
    return c;
}

Comparison
Runner::compareScalarNeon(const KernelSpec &spec,
                          const sim::CoreConfig &cfg, int vec_bits) const
{
    Comparison c;
    c.info = spec.info;
    auto w = spec.make(opts_);
    c.scalar = run(*w, Impl::Scalar, cfg);
    c.neon = run(*w, Impl::Neon, cfg, vec_bits);
    c.autovec = c.scalar;
    c.verified = w->verify();
    return c;
}

} // namespace swan::core
