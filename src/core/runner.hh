/**
 * @file
 * The measurement harness: captures a kernel implementation's dynamic
 * instruction trace, replays it through a core timing model (with cache
 * warm-up, as the paper does), and applies the power model. This is the
 * software analogue of the paper's measurement flow (Section 4.3):
 * cross-compile -> run pinned to a core -> Simpleperf PMU counters ->
 * battery power rails.
 */

#ifndef SWAN_CORE_RUNNER_HH
#define SWAN_CORE_RUNNER_HH

#include <string_view>
#include <vector>

#include "core/kernel.hh"
#include "core/registry.hh"
#include "sim/core_model.hh"
#include "sim/power.hh"
#include "trace/stats.hh"

namespace swan::core
{

/** Which implementation of a kernel to run (Figure 2's bars). */
enum class Impl
{
    Scalar,
    Auto,
    Neon,
};

std::string_view name(Impl impl);

/** One implementation's measured results. */
struct KernelRun
{
    sim::SimResult sim;
    trace::MixStats mix;
};

/** Scalar/Auto/Neon comparison of one kernel on one core config. */
struct Comparison
{
    KernelInfo info;
    KernelRun scalar;
    KernelRun autovec;
    KernelRun neon;
    bool verified = false;

    double
    neonSpeedup() const
    {
        return double(scalar.sim.cycles) / double(neon.sim.cycles);
    }
    double
    autoSpeedup() const
    {
        return double(scalar.sim.cycles) / double(autovec.sim.cycles);
    }
    double
    neonEnergyImprovement() const
    {
        return scalar.sim.energyJ / neon.sim.energyJ;
    }
    double
    autoEnergyImprovement() const
    {
        return scalar.sim.energyJ / autovec.sim.energyJ;
    }
    double
    instrReduction() const
    {
        return double(scalar.mix.total()) / double(neon.mix.total());
    }
};

/** Trace-capture + simulation harness. */
class Runner
{
  public:
    explicit Runner(Options opts = Options::fromEnv()) : opts_(opts) {}

    const Options &options() const { return opts_; }

    /** Execute one implementation under a buffering recorder. */
    static std::vector<trace::Instr> capture(Workload &w, Impl impl,
                                             int vec_bits = 128);

    /**
     * capture() into a caller-owned buffer (cleared first, capacity
     * kept), for drivers that capture many traces back to back and
     * must keep their heap evolution capture-count-independent (see
     * trace::Recorder's external-buffer mode).
     */
    static void captureInto(Workload &w, Impl impl, int vec_bits,
                            std::vector<trace::Instr> *out);

    /** Capture + simulate + power for one implementation. */
    KernelRun run(Workload &w, Impl impl, const sim::CoreConfig &cfg,
                  int vec_bits = 128, int warmup_passes = 1) const;

    /**
     * Capture once, replay against many core configurations in a
     * single pass on the fused engine (sim::replay): the AoS capture
     * buffer is packed and freed before simulation, and each packed
     * instruction is decoded once — straight into registers — with
     * every configuration's core model stepped from the same decoded
     * fields. Result i is bit-identical to run() with cfgs[i].
     */
    std::vector<KernelRun> runMany(Workload &w, Impl impl,
                                   const std::vector<sim::CoreConfig> &cfgs,
                                   int vec_bits = 128,
                                   int warmup_passes = 1) const;

    /** Run Scalar, Auto and Neon and verify outputs. */
    Comparison compare(const KernelSpec &spec,
                       const sim::CoreConfig &cfg) const;

    /** Scalar-vs-Neon only (skips the Auto pass; faster sweeps). */
    Comparison compareScalarNeon(const KernelSpec &spec,
                                 const sim::CoreConfig &cfg,
                                 int vec_bits = 128) const;

  private:
    Options opts_;
};

} // namespace swan::core

#endif // SWAN_CORE_RUNNER_HH
