#include "core/registry.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace swan::core
{

Registry &
Registry::instance()
{
    static Registry reg;
    return reg;
}

void
Registry::add(KernelSpec spec)
{
    if (registrationClosed()) {
        std::fprintf(stderr,
                     "swan: kernel '%s' registered after the registry "
                     "was closed (a sweep already started); register "
                     "kernels in static initializers only\n",
                     spec.info.qualifiedName().c_str());
        std::abort();
    }
    kernels_.push_back(std::move(spec));
}

void
Registry::addLibrary(LibraryUsage usage)
{
    if (registrationClosed()) {
        std::fprintf(stderr,
                     "swan: library '%s' registered after the registry "
                     "was closed (a sweep already started)\n",
                     usage.library.c_str());
        std::abort();
    }
    libs_.push_back(std::move(usage));
}

std::vector<const KernelSpec *>
Registry::bySymbol(const std::string &sym) const
{
    std::vector<const KernelSpec *> out;
    for (const auto &k : kernels_)
        if (k.info.symbol == sym)
            out.push_back(&k);
    return out;
}

const KernelSpec *
Registry::find(const std::string &qualified) const
{
    for (const auto &k : kernels_) {
        if (k.info.qualifiedName() == qualified ||
            k.info.name == qualified)
            return &k;
    }
    return nullptr;
}

std::vector<std::string>
Registry::symbols() const
{
    std::vector<std::string> out;
    for (const auto &k : kernels_)
        if (std::find(out.begin(), out.end(), k.info.symbol) == out.end())
            out.push_back(k.info.symbol);
    return out;
}

} // namespace swan::core
