/**
 * @file
 * The Swan kernel abstraction: each of the suite's 59 data-parallel
 * kernels is a Workload with a Scalar reference implementation, an
 * explicitly vectorized Neon implementation (width-generic for the eight
 * Figure-5 kernels), an optional Auto implementation mirroring what
 * Clang's auto-vectorizer produces, output verification (the paper
 * validates Neon against Scalar outputs), and metadata: library, domain,
 * computation patterns (Section 6) and the auto-vectorization verdict
 * (Section 5.2).
 */

#ifndef SWAN_CORE_KERNEL_HH
#define SWAN_CORE_KERNEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "autovec/legality.hh"
#include "core/options.hh"

namespace swan::core
{

/** Application domain of a library (Table 2). */
enum class Domain
{
    ImageProcessing,
    Graphics,
    AudioProcessing,
    DataCompression,
    Cryptography,
    StringUtilities,
    VideoProcessing,
    MachineLearning,
};

std::string_view name(Domain d);

/** Computation patterns of Section 6 (bitmask). */
enum class Pattern : uint32_t
{
    None = 0,
    Reduction = 1u << 0,          //!< Section 6.1
    RandomAccess = 1u << 1,       //!< Section 6.2 (look-up tables)
    StridedAccess = 1u << 2,      //!< Section 6.3 (ld2/3/4, zip/uzp)
    Transpose = 1u << 3,          //!< Section 6.4
    VectorApi = 1u << 4,          //!< Section 6.5 (portable vector APIs)
    LoopDistribution = 1u << 5,   //!< Section 6.1 Adler-32 style rewrite
};

inline uint32_t
operator|(Pattern a, Pattern b)
{
    return uint32_t(a) | uint32_t(b);
}
inline uint32_t
operator|(uint32_t a, Pattern b)
{
    return a | uint32_t(b);
}
inline bool
has(uint32_t mask, Pattern p)
{
    return (mask & uint32_t(p)) != 0;
}

std::string_view name(Pattern p);

/** Static metadata of one kernel. */
struct KernelInfo
{
    std::string library;    //!< e.g. "libjpeg-turbo"
    std::string symbol;     //!< Table 2 symbol, e.g. "LJ"
    std::string name;       //!< e.g. "rgb_to_ycbcr"
    Domain domain = Domain::ImageProcessing;
    uint32_t patterns = 0;  //!< Pattern bitmask
    autovec::Verdict autovec;
    bool widerWidths = false;   //!< one of the eight Figure-5 kernels
    uint64_t flopsHint = 0;     //!< useful ops per invocation (Figure 6)
    /**
     * Excluded from headline geomeans, like the paper's DES kernel
     * (Section 6.2), which only exists for the look-up-table study.
     */
    bool excluded = false;

    std::string
    qualifiedName() const
    {
        return symbol + "/" + name;
    }
};

/**
 * A runnable kernel instance holding its inputs and per-implementation
 * outputs. run* methods execute under the ambient trace recorder (or at
 * full host speed when none is installed).
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Scalar reference implementation (instrumented via simd::Sc). */
    virtual void runScalar() = 0;

    /**
     * Explicit Neon implementation. @p vec_bits is 128 unless the kernel
     * supports the wider-register study (KernelInfo::widerWidths).
     */
    virtual void runNeon(int vec_bits) = 0;

    /**
     * What Clang's auto-vectorizer produces for the scalar loop. Default:
     * vectorization fails and the scalar code runs unchanged. Kernels
     * with Verdict::vectorizes override this.
     */
    virtual void runAuto() { runScalar(); }

    /** Compare Scalar and Neon outputs (paper's correctness check). */
    virtual bool verify() = 0;

    /** Useful arithmetic operations of one invocation (Figure 6). */
    virtual uint64_t flops() const { return 0; }
};

/** Factory + metadata registered with the suite. */
struct KernelSpec
{
    KernelInfo info;
    std::function<std::unique_ptr<Workload>(const Options &)> make;
};

} // namespace swan::core

#endif // SWAN_CORE_KERNEL_HH
