/**
 * @file
 * Fixed-width console table printer used by the bench binaries to emit
 * paper-style rows.
 */

#ifndef SWAN_CORE_REPORT_HH
#define SWAN_CORE_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace swan::core
{

/** Minimal console table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p prec decimals. */
std::string fmt(double x, int prec = 2);

/** Format as a multiplier, e.g. "3.3x". */
std::string fmtX(double x, int prec = 1);

/** Format as a percentage, e.g. "41.9%". */
std::string fmtPct(double x, int prec = 1);

/** Print a section banner. */
void banner(std::ostream &os, const std::string &title);

} // namespace swan::core

#endif // SWAN_CORE_REPORT_HH
