/**
 * @file
 * swan::detail::AllocGuard — the runtime half of the no-alloc
 * contract (include/swan/internal/contracts.hh has the story).
 *
 * Under -DSWAN_ALLOC_GUARD=ON this TU replaces the global operator
 * new/delete family with thin malloc forwarders that consult a
 * thread-local arm depth: a heap operation while some AllocGuard is
 * armed on the calling thread is a contract violation — counted, and
 * fatal by default with the violated region's name. The forwarders
 * preserve replacement semantics (new-handler loop, nothrow and
 * aligned forms) and keep the allocation *sequence* identical to the
 * default operators, so instrumented builds stay byte-identical in
 * emitter output; they only observe, never reroute.
 *
 * Without the define the guard class still exists (tests construct it
 * unconditionally) but no hook is installed: enforced() is false and
 * counters stay zero.
 *
 * This TU also includes the centralized layout pins so every build of
 * the library evaluates them (see include/swan/internal/layout.hh).
 */

#include "swan/internal/contracts.hh"
#include "swan/internal/layout.hh"

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <new>

namespace swan::detail
{

namespace
{

// Plain thread-locals: the hook must not allocate, and these are
// touched on every guarded heap op.
thread_local uint32_t tlsDepth = 0;
thread_local uint64_t tlsOps = 0;
thread_local const char *tlsWhat = nullptr;
thread_local bool tlsFailFast = true;

std::atomic<uint64_t> gViolations{0};

#if defined(SWAN_ALLOC_GUARD)
/** Record one heap operation under an armed guard. Fail-fast aborts
 *  here: fprintf on the unbuffered stderr stream does not call
 *  operator new, so reporting cannot recurse into the hook. */
void
violation(const char *op, size_t bytes)
{
    ++tlsOps;
    gViolations.fetch_add(1, std::memory_order_relaxed);
    if (!tlsFailFast)
        return;
    std::fprintf(stderr,
                 "swan: AllocGuard: %s of %zu bytes inside no-alloc "
                 "region \"%s\" — the region's determinism contract "
                 "(docs/lint.md) forbids heap traffic here\n",
                 op, bytes, tlsWhat ? tlsWhat : "?");
    std::abort();
}
#endif

} // namespace

AllocGuard::AllocGuard(const char *what, bool fail_fast) noexcept
    : what_(what), prevWhat_(tlsWhat), before_(tlsOps), armed_(true),
      prevFailFast_(tlsFailFast)
{
    tlsWhat = what_;
    tlsFailFast = fail_fast;
    ++tlsDepth;
}

AllocGuard::~AllocGuard()
{
    release();
}

void
AllocGuard::release() noexcept
{
    if (!armed_)
        return;
    armed_ = false;
    --tlsDepth;
    tlsWhat = prevWhat_;
    tlsFailFast = prevFailFast_;
}

uint64_t
AllocGuard::allocations() const noexcept
{
    return tlsOps - before_;
}

bool
AllocGuard::enforced() noexcept
{
#if defined(SWAN_ALLOC_GUARD)
    return true;
#else
    return false;
#endif
}

uint64_t
AllocGuard::totalViolations() noexcept
{
    return gViolations.load(std::memory_order_relaxed);
}

AllocGuard::Pause::Pause() noexcept : savedDepth_(tlsDepth)
{
    tlsDepth = 0;
}

AllocGuard::Pause::~Pause()
{
    tlsDepth = savedDepth_;
}

} // namespace swan::detail

#if defined(SWAN_ALLOC_GUARD)

namespace
{

using swan::detail::AllocGuard;

void *
guardedAlloc(size_t n, const char *op)
{
    if (swan::detail::tlsDepth != 0)
        swan::detail::violation(op, n);
    // Replacement-new contract: retry through the installed
    // new-handler until malloc succeeds or no handler remains.
    for (;;) {
        if (void *p = std::malloc(n ? n : 1))
            return p;
        std::new_handler h = std::get_new_handler();
        if (!h)
            return nullptr;
        h();
    }
}

void *
guardedAllocAligned(size_t n, size_t align, const char *op)
{
    if (swan::detail::tlsDepth != 0)
        swan::detail::violation(op, n);
    for (;;) {
        void *p = nullptr;
        // aligned_alloc demands size % alignment == 0; round up.
        const size_t sz = (n + align - 1) / align * align;
        p = std::aligned_alloc(align, sz ? sz : align);
        if (p)
            return p;
        std::new_handler h = std::get_new_handler();
        if (!h)
            return nullptr;
        h();
    }
}

void
guardedFree(void *p)
{
    if (!p)
        return;
    if (swan::detail::tlsDepth != 0)
        swan::detail::violation("operator delete", 0);
    std::free(p);
}

} // namespace

// The replaceable global allocation functions (new-expression entry
// points). Sized deletes forward to the unsized form — the size is
// advisory and malloc tracks it anyway.
void *
operator new(size_t n)
{
    if (void *p = guardedAlloc(n, "operator new"))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n)
{
    if (void *p = guardedAlloc(n, "operator new[]"))
        return p;
    throw std::bad_alloc();
}

void *
operator new(size_t n, const std::nothrow_t &) noexcept
{
    return guardedAlloc(n, "operator new(nothrow)");
}

void *
operator new[](size_t n, const std::nothrow_t &) noexcept
{
    return guardedAlloc(n, "operator new[](nothrow)");
}

void *
operator new(size_t n, std::align_val_t a)
{
    if (void *p = guardedAllocAligned(n, size_t(a), "operator new(align)"))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n, std::align_val_t a)
{
    if (void *p =
            guardedAllocAligned(n, size_t(a), "operator new[](align)"))
        return p;
    throw std::bad_alloc();
}

void *
operator new(size_t n, std::align_val_t a, const std::nothrow_t &) noexcept
{
    return guardedAllocAligned(n, size_t(a), "operator new(align,nothrow)");
}

void *
operator new[](size_t n, std::align_val_t a,
               const std::nothrow_t &) noexcept
{
    return guardedAllocAligned(n, size_t(a),
                               "operator new[](align,nothrow)");
}

void
operator delete(void *p) noexcept
{
    guardedFree(p);
}
void
operator delete[](void *p) noexcept
{
    guardedFree(p);
}
void
operator delete(void *p, size_t) noexcept
{
    guardedFree(p);
}
void
operator delete[](void *p, size_t) noexcept
{
    guardedFree(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    guardedFree(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    guardedFree(p);
}
void
operator delete(void *p, size_t, std::align_val_t) noexcept
{
    guardedFree(p);
}
void
operator delete[](void *p, size_t, std::align_val_t) noexcept
{
    guardedFree(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    guardedFree(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    guardedFree(p);
}

#endif // SWAN_ALLOC_GUARD
