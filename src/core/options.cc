#include "core/options.hh"

#include <cstdlib>
#include <cstring>

namespace swan::core
{

namespace
{

bool
envSet(const char *name)
{
    const char *v = std::getenv(name);
    return v && std::strcmp(v, "0") != 0 && std::strcmp(v, "") != 0;
}

} // namespace

Options
Options::full()
{
    Options o;
    o.imageWidth = 1280;
    o.imageHeight = 720;
    o.audioSamples = 44100;
    o.bufferBytes = 128 * 1024;
    o.gemmM = 256;
    o.gemmN = 252;
    o.gemmK = 256;
    o.videoBlocks = 1024;
    return o;
}

Options
Options::fromEnv()
{
    if (envSet("SWAN_FULL"))
        return full();
    Options o;
    if (envSet("SWAN_FAST")) {
        o.imageWidth = 96;
        o.imageHeight = 48;
        o.audioSamples = 1024;
        o.bufferBytes = 4 * 1024;
        o.gemmM = 32;
        o.gemmN = 32;
        o.gemmK = 32;
        o.videoBlocks = 16;
    }
    return o;
}

} // namespace swan::core
