/**
 * @file
 * Aggregation helpers: geometric means (the paper reports per-library
 * geomeans), library-level summaries over kernel comparisons.
 */

#ifndef SWAN_CORE_METRICS_HH
#define SWAN_CORE_METRICS_HH

#include <string>
#include <vector>

#include "core/runner.hh"

namespace swan::core
{

/** Geometric mean; 0 for an empty set. */
double geomean(const std::vector<double> &xs);

/** Arithmetic mean; 0 for an empty set. */
double mean(const std::vector<double> &xs);

/** Per-library aggregate of kernel comparisons (Figure 2/3 rows). */
struct LibrarySummary
{
    std::string symbol;
    int kernels = 0;
    double neonSpeedup = 0.0;
    double autoSpeedup = 0.0;
    double neonEnergyImprovement = 0.0;
    double autoEnergyImprovement = 0.0;
    double instrReduction = 0.0;
    double scalarPowerW = 0.0;
    double autoPowerW = 0.0;
    double neonPowerW = 0.0;
};

/** Aggregate comparisons by library symbol (registration order). */
std::vector<LibrarySummary>
summarizeByLibrary(const std::vector<Comparison> &comparisons);

} // namespace swan::core

#endif // SWAN_CORE_METRICS_HH
