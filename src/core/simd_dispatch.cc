#include "swan/internal/simd_dispatch.hh"

#include <cstdlib>
#include <cstring>

namespace swan::detail
{

namespace
{

/** Best level the hardware (and this build) can run. */
SimdLevel
detectLevel()
{
#if defined(SWAN_SIMD_OFF)
    return SimdLevel::Scalar;
#elif defined(__aarch64__)
    return SimdLevel::Neon; // NEON is architecturally baseline
#elif defined(__x86_64__) && defined(__GNUC__)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2"))
        return SimdLevel::Avx2;
    return SimdLevel::Swar;
#else
    return SimdLevel::Swar;
#endif
}

SimdDispatch
select()
{
    SimdDispatch d{};
    const SimdLevel best = detectLevel();
    SimdLevel level = best;
    d.forced = false;
#if defined(SWAN_SIMD_OFF)
    // Build-time gate wins over everything, including the env.
    d.forced = true;
#else
    // Runtime override: every level is bit-identical in output, so
    // forcing one down is always safe (used by the determinism matrix
    // and A/B benching). Asking for more than the hardware has
    // degrades to the best available.
    if (const char *env = std::getenv("SWAN_SIMD")) {
        if (!std::strcmp(env, "scalar")) {
            level = SimdLevel::Scalar;
            d.forced = true;
        } else if (!std::strcmp(env, "swar")) {
            level = best == SimdLevel::Scalar ? best : SimdLevel::Swar;
            d.forced = true;
        } else if (!std::strcmp(env, "native")) {
            level = best;
        }
    }
#endif
    d.level = level;

#if defined(__aarch64__)
    d.isa = "aarch64+neon";
#elif defined(__x86_64__)
    d.isa = best == SimdLevel::Avx2 ? "x86-64+avx2+bmi2" : "x86-64";
#else
    d.isa = "generic";
#endif

    switch (level) {
    case SimdLevel::Avx2:
        d.decodeKernel = "batch-pext-avx2";
        d.stepKernel = "slot-scan-avx2";
        break;
    case SimdLevel::Neon:
        d.decodeKernel = "batch-neon";
        d.stepKernel = "slot-scan-scalar";
        break;
    case SimdLevel::Swar:
        d.decodeKernel = "batch-swar";
        d.stepKernel = "slot-scan-scalar";
        break;
    case SimdLevel::Scalar:
    default:
        d.decodeKernel = "scalar-ctz";
        d.stepKernel = "slot-scan-scalar";
        break;
    }
    return d;
}

} // namespace

const SimdDispatch &
simdDispatch() noexcept
{
    static const SimdDispatch d = select();
    return d;
}

} // namespace swan::detail
