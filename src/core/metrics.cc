#include "core/metrics.hh"

#include <cmath>

namespace swan::core
{

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / double(xs.size()));
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / double(xs.size());
}

std::vector<LibrarySummary>
summarizeByLibrary(const std::vector<Comparison> &comparisons)
{
    std::vector<std::string> order;
    for (const auto &c : comparisons) {
        bool seen = false;
        for (const auto &s : order)
            seen = seen || s == c.info.symbol;
        if (!seen)
            order.push_back(c.info.symbol);
    }

    std::vector<LibrarySummary> out;
    for (const auto &sym : order) {
        LibrarySummary s;
        s.symbol = sym;
        std::vector<double> speed, aspeed, energy, aenergy, reduc;
        std::vector<double> pw_s, pw_a, pw_n;
        for (const auto &c : comparisons) {
            if (c.info.symbol != sym)
                continue;
            ++s.kernels;
            speed.push_back(c.neonSpeedup());
            aspeed.push_back(c.autoSpeedup());
            energy.push_back(c.neonEnergyImprovement());
            aenergy.push_back(c.autoEnergyImprovement());
            reduc.push_back(c.instrReduction());
            pw_s.push_back(c.scalar.sim.powerW);
            pw_a.push_back(c.autovec.sim.powerW);
            pw_n.push_back(c.neon.sim.powerW);
        }
        s.neonSpeedup = geomean(speed);
        s.autoSpeedup = geomean(aspeed);
        s.neonEnergyImprovement = geomean(energy);
        s.autoEnergyImprovement = geomean(aenergy);
        s.instrReduction = geomean(reduc);
        s.scalarPowerW = mean(pw_s);
        s.autoPowerW = mean(pw_a);
        s.neonPowerW = mean(pw_n);
        out.push_back(s);
    }
    return out;
}

} // namespace swan::core
