/**
 * @file
 * Analytical model of domain-specific accelerator offload (Section 8):
 * kernel-launch overheads of the Adreno 640 GPU (OpenCL) and Hexagon 690
 * DSP (fastRPC), and a throughput model for GPU GEMM/SpMM used to
 * reproduce the Figure 6 crossover against Neon. The paper's unified
 * memory assumption removes copy costs; launch overhead and achievable
 * throughput drive the comparison.
 */

#ifndef SWAN_GPU_OFFLOAD_MODEL_HH
#define SWAN_GPU_OFFLOAD_MODEL_HH

#include <cstdint>

namespace swan::gpu
{

/** Offload model parameters (Table 7 / Figure 6 constants). */
struct OffloadParams
{
    double gpuLaunchUs = 230.0;     //!< Adreno 640 OpenCL launch
    double dspLaunchUs = 20.0;      //!< Hexagon 690 fastRPC launch
    /**
     * Peak GPU FP32 MAC throughput. The paper states Neon has 96x less
     * compute throughput than the GPU; with Neon at 2 x 128-bit FMA units
     * at 2.8 GHz (22.4 GMAC/s) this is ~2.15 TMAC/s.
     */
    double gpuGmacPerSec = 96.0 * 22.4;
    /** Achievable fraction of peak for dense GEMM. */
    double gemmEfficiency = 0.55;
    /** Achievable fraction of peak for SpMM (irregular access). */
    double spmmEfficiency = 0.18;
    /**
     * Work-group ramp: problems smaller than this many MACs cannot fill
     * the GPU, modeled as a minimum execution time floor.
     */
    double minKernelUs = 12.0;
};

/** GPU execution time (seconds) including launch overhead. */
double gpuTimeSec(uint64_t macs, bool sparse,
                  const OffloadParams &params = {});

/** GPU time without launch overhead (the dashed line of Figure 6). */
double gpuComputeTimeSec(uint64_t macs, bool sparse,
                         const OffloadParams &params = {});

} // namespace swan::gpu

#endif // SWAN_GPU_OFFLOAD_MODEL_HH
