#include "gpu/offload_model.hh"

#include <algorithm>

namespace swan::gpu
{

double
gpuComputeTimeSec(uint64_t macs, bool sparse, const OffloadParams &p)
{
    const double eff = sparse ? p.spmmEfficiency : p.gemmEfficiency;
    const double rate = p.gpuGmacPerSec * 1e9 * eff;
    const double compute = double(macs) / rate;
    return std::max(compute, p.minKernelUs * 1e-6);
}

double
gpuTimeSec(uint64_t macs, bool sparse, const OffloadParams &p)
{
    return p.gpuLaunchUs * 1e-6 + gpuComputeTimeSec(macs, sparse, p);
}

} // namespace swan::gpu
