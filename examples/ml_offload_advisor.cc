/**
 * @file
 * ML offload advisor: for a list of convolution-layer GEMM shapes,
 * decide whether to run each layer on the CPU vector engine or launch a
 * GPU kernel — the Section 8 trade-off. Demonstrates using the timing
 * model and the offload model together as a library.
 */

#include <iostream>

#include "swan/gpu.hh"
#include "swan/swan.hh"

namespace swan::workloads::xnnpack
{
std::unique_ptr<core::Workload> makeGemmF32(const core::Options &);
} // namespace swan::workloads::xnnpack

using namespace swan;

int
main()
{
    struct Layer
    {
        const char *name;
        int m, n, k;
    };
    // Representative CNN layer GEMM shapes (im2col'd).
    const Layer layers[] = {
        {"stem 3x3", 32, 196, 27},     {"stage1 1x1", 64, 196, 32},
        {"stage2 3x3", 128, 96, 288},  {"stage3 1x1", 256, 49, 128},
        {"stage4 3x3", 256, 49, 2304}, {"classifier", 1000, 1, 1280},
    };

    const auto cfg = sim::primeConfig();
    gpu::OffloadParams params;
    core::Runner runner;

    core::banner(std::cout,
                 "ML offload advisor: CPU (Neon) vs GPU per layer");
    core::Table t({"Layer", "MACs", "Neon (us)", "GPU (us)", "Decision"});

    double cpu_total = 0, best_total = 0;
    for (const auto &l : layers) {
        core::Options opts;
        opts.gemmM = l.m;
        opts.gemmN = l.n;
        opts.gemmK = l.k;
        auto w = workloads::xnnpack::makeGemmF32(opts);
        auto run = runner.run(*w, core::Impl::Neon, cfg);
        const uint64_t macs = w->flops() / 2;
        const double neon_us = run.sim.timeSec * 1e6;
        const double gpu_us = gpu::gpuTimeSec(macs, false, params) * 1e6;
        cpu_total += neon_us;
        best_total += std::min(neon_us, gpu_us);
        t.addRow({l.name, std::to_string(macs), core::fmt(neon_us, 1),
                  core::fmt(gpu_us, 1),
                  neon_us <= gpu_us ? "CPU vector" : "GPU"});
    }
    t.print(std::cout);

    std::cout << "\nAll-CPU: " << core::fmt(cpu_total, 1)
              << " us; hybrid (advisor): " << core::fmt(best_total, 1)
              << " us. Small layers stay on the CPU because the 230 us "
                 "GPU launch overhead dwarfs them (Table 7 / Figure "
                 "6).\n";
    return 0;
}
