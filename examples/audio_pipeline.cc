/**
 * @file
 * WebAudio render-quantum example: a small audio graph — gain, mix,
 * clip, loudness check and an FFT analysis node — processed the way the
 * Webaudio module renders 128-sample frames through its portable vector
 * APIs (Section 6.5). Shows why WA's speedup saturates even though every
 * kernel is data-parallel.
 */

#include <iostream>

#include "swan/swan.hh"

using namespace swan;

int
main()
{
    const char *graph[] = {"WA/gain_node", "WA/vadd", "WA/vclip",
                           "WA/audible", "WA/deinterleave_channels",
                           "PF/fft_forward", "PF/zconvolve_accumulate",
                           "PF/fft_inverse"};

    core::Runner runner;
    const auto cfg = sim::primeConfig();

    core::banner(std::cout,
                 "WebAudio graph: gain -> mix -> clip -> analyze "
                 "(Prime core)");
    core::Table t({"Node", "Neon speedup", "Ld/St share", "Verified"});

    double ldst_total = 0;
    int n = 0;
    for (const char *name : graph) {
        const auto *spec = core::Registry::instance().find(name);
        if (!spec) {
            std::cerr << "missing kernel " << name << "\n";
            return 1;
        }
        auto c = runner.compareScalarNeon(*spec, cfg);
        const double ldst =
            100.0 * (c.neon.mix.fraction(trace::PaperClass::VLoad) +
                     c.neon.mix.fraction(trace::PaperClass::VStore));
        ldst_total += ldst;
        ++n;
        t.addRow({name, core::fmtX(c.neonSpeedup()),
                  core::fmtPct(ldst, 0), c.verified ? "yes" : "NO"});
    }
    t.print(std::cout);

    std::cout << "\nAverage vector load/store share across the graph: "
              << core::fmtPct(ldst_total / n, 0)
              << " — the portable-API cost the paper quantifies as ~59% "
                 "for WA (Section 6.5).\n";
    return 0;
}
