/**
 * @file
 * What would SVE/RVV buy a mobile SoC? A tour of the future-ISA
 * extension layer (simd/vec_sve.hh) through the four Section-9 studies:
 * run each extension workload against its Neon-only counterpart on the
 * simulated Prime core and summarize the verdicts the paper's analysis
 * predicts — gathers rescue look-up tables, complex intrinsics rescue
 * portable audio APIs, strided loads rescue sparse channel access, and
 * predication rescues wide-register tails.
 *
 * Usage: isa_futures [--full]   (--full uses paper-scale inputs)
 */

#include <iostream>
#include <string>

#include "swan/swan.hh"
#include "swan/workloads.hh"

using namespace swan;
using namespace swan::workloads;

namespace
{

/** Cycles of one implementation on the Prime core. */
double
cycles(const core::Runner &runner, core::Workload &w, core::Impl impl,
       const sim::CoreConfig &cfg, int vec_bits = 128)
{
    return double(runner.run(w, impl, cfg, vec_bits).sim.cycles);
}

} // namespace

int
main(int argc, char **argv)
{
    core::Options opts = core::Options::fromEnv();
    if (argc > 1 && std::string(argv[1]) == "--full")
        opts = core::Options::full();
    core::Runner runner(opts);
    const auto prime = sim::primeConfig();

    core::banner(std::cout,
                 "ISA futures: what SVE/RVV add to mobile vector "
                 "processing");

    core::Table t({"Study", "Neon today", "With the extension", "Verdict"});

    // 1. Gathers for look-up tables (Section 6.2).
    {
        auto lane = ext::makeDesGather(opts, ext::LutImpl::LaneExport);
        auto gather = ext::makeDesGather(opts, ext::LutImpl::Gather);
        const double s = cycles(runner, *lane, core::Impl::Scalar, prime);
        const double neon =
            s / cycles(runner, *lane, core::Impl::Neon, prime);
        gather->runScalar();
        const double sve =
            s / cycles(runner, *gather, core::Impl::Neon, prime);
        const bool ok = lane->verify() && gather->verify();
        t.addRow({"DES S-box look-ups", core::fmtX(neon) + " vs scalar",
                  core::fmtX(sve) + " vs scalar",
                  ok ? (sve > 1.0 && neon < 1.2
                            ? "gather rescues vectorization"
                            : "gather helps")
                     : "VERIFY FAILED"});
    }

    // 2. Complex intrinsics for portable audio APIs (Section 6.5).
    {
        auto portable =
            ext::makeZConvolve(opts, ext::ComplexImpl::Portable);
        auto fcmla = ext::makeZConvolve(opts, ext::ComplexImpl::Fcmla);
        const double s =
            cycles(runner, *portable, core::Impl::Scalar, prime);
        const double api =
            s / cycles(runner, *portable, core::Impl::Neon, prime);
        fcmla->runScalar();
        const double v83 =
            s / cycles(runner, *fcmla, core::Impl::Neon, prime);
        const bool ok = portable->verify() && fcmla->verify();
        t.addRow({"FFT complex MAC", core::fmtX(api) + " (portable API)",
                  core::fmtX(v83) + " (FCMLA)",
                  ok ? "2 ops replace 8, permutes gone"
                     : "VERIFY FAILED"});
    }

    // 3. Arbitrary-stride access (Section 6.3).
    {
        auto neon =
            ext::makeChannelExtract(opts, ext::StrideImpl::NeonUnzip);
        auto rvv =
            ext::makeChannelExtract(opts, ext::StrideImpl::StridedLoad);
        auto nrun = core::Runner::capture(*neon, core::Impl::Neon);
        auto rrun = core::Runner::capture(*rvv, core::Impl::Neon);
        trace::MixStats nmix, rmix;
        nmix.addTrace(nrun);
        rmix.addTrace(rrun);
        neon->runScalar();
        rvv->runScalar();
        const bool ok = neon->verify() && rvv->verify();
        t.addRow({"1-of-8-channel extract",
                  std::to_string(nmix.loadBytes() / 1024) +
                      " KiB loaded (VLD4+UZP)",
                  std::to_string(rmix.loadBytes() / 1024) +
                      " KiB loaded (vlse)",
                  ok ? "8x less memory traffic" : "VERIFY FAILED"});
    }

    // 4. Predicated tails at wide registers (Section 7.1).
    {
        const auto wide = sim::widerVectorConfig(1024);
        auto narrow = ext::makeAxpyTail(opts, ext::TailImpl::NarrowTail);
        auto pred = ext::makeAxpyTail(opts, ext::TailImpl::Predicated);
        const double s =
            cycles(runner, *narrow, core::Impl::Scalar, wide);
        const double ntail =
            s / cycles(runner, *narrow, core::Impl::Neon, wide, 1024);
        pred->runScalar();
        const double ptail =
            s / cycles(runner, *pred, core::Impl::Neon, wide, 1024);
        const bool ok = narrow->verify() && pred->verify();
        t.addRow({"27-elem rows @ 1024-bit",
                  core::fmtX(ntail) + " (narrow tail)",
                  core::fmtX(ptail) + " (WHILELT)",
                  ok ? "tails no longer cap wide registers"
                     : "VERIFY FAILED"});
    }

    // 5. First-faulting loads for uncountable loops (Section 5.2).
    {
        auto neon =
            ext::makeStrlenScan(opts, ext::ScanImpl::NeonOverread);
        auto ff =
            ext::makeStrlenScan(opts, ext::ScanImpl::SveFirstFault);
        const double s = cycles(runner, *neon, core::Impl::Scalar, prime);
        const double over =
            s / cycles(runner, *neon, core::Impl::Neon, prime);
        ff->runScalar();
        const double ldff =
            s / cycles(runner, *ff, core::Impl::Neon, prime);
        const bool ok = neon->verify() && ff->verify();
        t.addRow({"strlen over a string batch",
                  core::fmtX(over) + " (over-read)",
                  core::fmtX(ldff) + " (LDFF1)",
                  ok ? "uncountable loops vectorize safely"
                     : "VERIFY FAILED"});
    }

    t.print(std::cout);
    std::cout
        << "\nEach row re-runs a Section 5/6/7 pain point with the "
           "instruction the paper's\nSection 9 proposes; bench/ext_* "
           "print the full tables.\n";
    return 0;
}
