/**
 * @file
 * Quickstart: run one Swan kernel (ZL/adler32) end to end — capture the
 * Scalar and Neon dynamic instruction traces, simulate both on the
 * Table 3 Prime core, and print speedup, instruction reduction, power
 * and energy. Pass a qualified kernel name (e.g. "SK/convolve_vertically"
 * or "memcpy") to measure a different kernel.
 */

#include <iostream>

#include "core/metrics.hh"
#include "core/registry.hh"
#include "core/report.hh"
#include "core/runner.hh"
#include "sim/configs.hh"

using namespace swan;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "ZL/adler32";
    const auto *spec = core::Registry::instance().find(name);
    if (!spec) {
        std::cerr << "unknown kernel '" << name << "'; available:\n";
        for (const auto &k : core::Registry::instance().kernels())
            std::cerr << "  " << k.info.qualifiedName() << "\n";
        return 1;
    }

    core::Runner runner;
    auto comparison = runner.compare(*spec, sim::primeConfig());

    core::banner(std::cout, "Swan quickstart: " + name);
    core::Table t({"Metric", "Scalar", "Auto", "Neon"});
    auto row = [&](const std::string &label, auto get) {
        t.addRow({label, get(comparison.scalar), get(comparison.autovec),
                  get(comparison.neon)});
    };
    row("Dynamic instructions", [](const core::KernelRun &r) {
        return std::to_string(r.mix.total());
    });
    row("Cycles (Prime)", [](const core::KernelRun &r) {
        return std::to_string(r.sim.cycles);
    });
    row("IPC", [](const core::KernelRun &r) {
        return core::fmt(r.sim.ipc, 2);
    });
    row("Power (W)", [](const core::KernelRun &r) {
        return core::fmt(r.sim.powerW, 2);
    });
    row("Energy (uJ)", [](const core::KernelRun &r) {
        return core::fmt(r.sim.energyJ * 1e6, 2);
    });
    t.print(std::cout);

    std::cout << "\nNeon speedup:          "
              << core::fmtX(comparison.neonSpeedup())
              << "\nInstruction reduction: "
              << core::fmtX(comparison.instrReduction())
              << "\nEnergy improvement:    "
              << core::fmtX(comparison.neonEnergyImprovement())
              << "\nOutputs verified:      "
              << (comparison.verified ? "yes" : "NO") << "\n";
    return comparison.verified ? 0 : 1;
}
