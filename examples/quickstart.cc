/**
 * @file
 * Quickstart for the public swan API (docs/api.md). One Session owns
 * the runtime policy (threads, caches — here the SWAN_* environment
 * defaults), one fluent Experiment names the grid, and the Results
 * view is queried and printed. Pass a qualified kernel name (e.g.
 * "SK/convolve_vertically" or "memcpy") to measure a different kernel;
 * pass nothing for ZL/adler32.
 */

#include <iostream>

#include "swan/swan.hh"

using namespace swan;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "ZL/adler32";
    const auto *spec = core::Registry::instance().find(name);
    if (!spec) {
        std::cerr << "unknown kernel '" << name << "'; available:\n";
        for (const auto &k : core::Registry::instance().kernels())
            std::cerr << "  " << k.info.qualifiedName() << "\n";
        return 1;
    }
    const std::string qn = spec->info.qualifiedName();

    // Policy: SWAN_* environment as defaults, overridable in code
    // (e.g. Session(Session::envDefaults().withJobs(4))).
    Session session = Session::fromEnv();

    // Grid: one kernel, all three implementations, the Prime core.
    Results results;
    try {
        results = Experiment(session)
                      .kernel(qn)
                      .impls({core::Impl::Scalar, core::Impl::Auto,
                              core::Impl::Neon})
                      .config("prime")
                      .run();
    } catch (const Error &e) {
        std::cerr << "quickstart: " << e.what() << "\n";
        return 1;
    }

    const auto *scalar = results.find(qn, core::Impl::Scalar, 128);
    const auto *autovec = results.find(qn, core::Impl::Auto, 128);
    const auto *neon = results.find(qn, core::Impl::Neon, 128);

    // The paper's correctness check, untraced (full host speed).
    auto w = spec->make(core::Options::fromEnv());
    w->runScalar();
    w->runNeon(128);
    const bool verified = w->verify();

    core::banner(std::cout, "Swan quickstart: " + name);
    core::Table t({"Metric", "Scalar", "Auto", "Neon"});
    auto row = [&](const std::string &label, auto get) {
        t.addRow({label, get(scalar->run), get(autovec->run),
                  get(neon->run)});
    };
    row("Dynamic instructions", [](const core::KernelRun &r) {
        return std::to_string(r.mix.total());
    });
    row("Cycles (Prime)", [](const core::KernelRun &r) {
        return std::to_string(r.sim.cycles);
    });
    row("IPC", [](const core::KernelRun &r) {
        return core::fmt(r.sim.ipc, 2);
    });
    row("Power (W)", [](const core::KernelRun &r) {
        return core::fmt(r.sim.powerW, 2);
    });
    row("Energy (uJ)", [](const core::KernelRun &r) {
        return core::fmt(r.sim.energyJ * 1e6, 2);
    });
    t.print(std::cout);

    const double neonSpeedup = double(scalar->run.sim.cycles) /
                               double(neon->run.sim.cycles);
    const double instrReduction = double(scalar->run.mix.total()) /
                                  double(neon->run.mix.total());
    const double energyImprovement =
        scalar->run.sim.energyJ / neon->run.sim.energyJ;
    std::cout << "\nNeon speedup:          " << core::fmtX(neonSpeedup)
              << "\nInstruction reduction: "
              << core::fmtX(instrReduction)
              << "\nEnergy improvement:    "
              << core::fmtX(energyImprovement)
              << "\nOutputs verified:      " << (verified ? "yes" : "NO")
              << "\n";
    return verified ? 0 : 1;
}
