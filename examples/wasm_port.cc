/**
 * @file
 * Porting a Swan kernel to WebAssembly SIMD128, end to end. The paper's
 * Section 9 plans WASM-SIMD versions of the suite for browser
 * workloads; this example shows both halves of that workflow on the
 * public API:
 *
 *  1. Write a kernel directly against the wasm instruction-set model
 *     (simd/vec_wasm.hh) — here a saturating u8 "screen blend" like the
 *     ones Skia rasterizes — trace it, and read off the cost.
 *  2. Run the prebuilt Section-9 ports (workloads/ext) to see where the
 *     proposal's missing instructions (VLD3, ADDV, FMLA, crypto) bite
 *     relative to native Neon.
 *
 * Usage: wasm_port [--full]   (--full uses paper-scale inputs)
 */

#include <iostream>
#include <string>
#include <vector>

#include "swan/simd.hh"
#include "swan/swan.hh"
#include "swan/workloads.hh"

using namespace swan;
using namespace swan::workloads;
namespace ws = swan::simd::wasm;
using ws::v128;

namespace
{

/**
 * Step 1's hand-written port: dst = dst + src - dst*src/255 per byte
 * (a screen blend), built purely from SIMD128 operations.
 */
void
screenBlendWasm(const uint8_t *src, uint8_t *dst, size_t n)
{
    const v128 k255 = ws::splat(uint8_t(255));
    for (size_t i = 0; i + 16 <= n; i += 16) {
        const v128 s = ws::v128_load(&src[i]);
        const v128 d = ws::v128_load(&dst[i]);
        // dst + src - dst*src/255 == 255 - (255-dst)(255-src)/255;
        // approximate the /255 with the usual (x + 128 + (x>>8)) >> 8 on
        // widened lanes.
        const v128 is = ws::i8x16_sub(k255, s);
        const v128 id = ws::i8x16_sub(k255, d);
        const v128 p_lo = ws::i16x8_extmul_low_u8x16(is, id);
        const v128 p_hi = ws::i16x8_extmul_high_u8x16(is, id);
        auto div255 = [](const v128 &x) {
            v128 t = ws::i16x8_add(x, ws::splat(uint16_t(128)));
            t = ws::i16x8_add(t, ws::i16x8_shr_u(t, 8));
            return ws::i16x8_shr_u(t, 8);
        };
        const v128 q_lo = div255(p_lo);
        const v128 q_hi = div255(p_hi);
        const v128 blended =
            ws::i8x16_sub(k255, ws::i8x16_narrow_i16x8_u(q_lo, q_hi));
        ws::v128_store(&dst[i], blended);
        simd::ctl::loop();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    core::Options opts = core::Options::fromEnv();
    if (argc > 1 && std::string(argv[1]) == "--full")
        opts = core::Options::full();
    core::Runner runner(opts);
    const auto prime = sim::primeConfig();

    core::banner(std::cout,
                 "Step 1: a hand-written WASM SIMD kernel, traced");

    std::vector<uint8_t> src(4096), dst(4096);
    for (size_t i = 0; i < src.size(); ++i) {
        src[i] = uint8_t(i * 37);
        dst[i] = uint8_t(i * 11);
    }
    trace::Recorder rec;
    {
        trace::ScopedRecorder scoped(&rec);
        screenBlendWasm(src.data(), dst.data(), src.size());
    }
    auto instrs = rec.take();
    trace::MixStats mix;
    mix.addTrace(instrs);
    std::cout << "screen-blend over " << src.size() << " bytes: "
              << mix.total() << " instructions, "
              << mix.vectorInstrs() << " vector ("
              << core::fmtPct(100.0 * double(mix.vectorInstrs()) /
                              double(mix.total()))
              << "), " << mix.loadBytes() << " B loaded\n";

    core::banner(std::cout,
                 "Step 2: the Section-9 ports, WASM vs native Neon");

    struct Port
    {
        const char *name;
        std::unique_ptr<core::Workload> (*make)(const core::Options &,
                                                ext::WasmIsa);
    };
    const Port ports[] = {
        {"rgb_to_y (no VLD3)", &ext::makeWasmRgbToY},
        {"adler32 (no ADDV)", &ext::makeWasmAdler32},
        {"fir_filter (no FMA)", &ext::makeWasmFirFilter},
        {"sha256 (no crypto)", &ext::makeWasmSha256},
    };

    core::Table t({"Kernel", "Neon", "WASM SIMD128", "WASM relaxed"});
    for (const auto &port : ports) {
        std::vector<std::string> row{port.name};
        for (ext::WasmIsa isa : {ext::WasmIsa::NeonNative,
                                 ext::WasmIsa::Simd128,
                                 ext::WasmIsa::Relaxed}) {
            auto w = port.make(opts, isa);
            auto s = runner.run(*w, core::Impl::Scalar, prime);
            auto v = runner.run(*w, core::Impl::Neon, prime);
            if (!w->verify()) {
                std::cerr << port.name << ": output mismatch\n";
                return 1;
            }
            row.push_back(core::fmtX(double(s.sim.cycles) /
                                     double(v.sim.cycles)) +
                          " vs scalar");
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nReading the table: streaming arithmetic ports at "
                 "near parity; structured\nloads and reductions pay a "
                 "shuffle tax; fused ops return with\nrelaxed-simd; "
                 "crypto does not return at all (Section 5.1's ZL/BS "
                 "edge).\n";
    return 0;
}
