/**
 * @file
 * Image-decode pipeline example: the kernels a browser runs to display a
 * PNG/JPEG — PNG row de-filtering, color-space conversion, chroma
 * downsampling and Skia compositing — measured as a pipeline, the way
 * Table 2 attributes Chromium execution time to these libraries.
 */

#include <iostream>

#include "swan/swan.hh"

using namespace swan;

int
main()
{
    const char *stages[] = {"LP/defilter_paeth", "LP/expand_palette",
                            "LJ/ycbcr_to_rgb", "LJ/downsample_h2v2",
                            "SK/rgba_premultiply",
                            "SK/blit_row_srcover"};

    core::Runner runner;
    const auto cfg = sim::primeConfig();

    core::banner(std::cout,
                 "Image pipeline: PNG de-filter -> color convert -> "
                 "composite (Prime core)");
    core::Table t({"Stage", "Scalar (us)", "Neon (us)", "Speedup",
                   "Verified"});

    double total_scalar = 0, total_neon = 0;
    for (const char *name : stages) {
        const auto *spec = core::Registry::instance().find(name);
        if (!spec) {
            std::cerr << "missing kernel " << name << "\n";
            return 1;
        }
        auto c = runner.compareScalarNeon(*spec, cfg);
        total_scalar += c.scalar.sim.timeSec;
        total_neon += c.neon.sim.timeSec;
        t.addRow({name, core::fmt(c.scalar.sim.timeSec * 1e6, 1),
                  core::fmt(c.neon.sim.timeSec * 1e6, 1),
                  core::fmtX(c.neonSpeedup()),
                  c.verified ? "yes" : "NO"});
    }
    t.print(std::cout);

    std::cout << "\nWhole pipeline: " << core::fmt(total_scalar * 1e6, 1)
              << " us scalar -> " << core::fmt(total_neon * 1e6, 1)
              << " us Neon ("
              << core::fmtX(total_scalar / total_neon)
              << "); Amdahl: the carried-dependence de-filters bound "
                 "the pipeline gain.\n";
    return 0;
}
