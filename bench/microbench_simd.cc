/**
 * @file
 * Host-side google-benchmark microbenchmark of the Neon emulation layer
 * itself: how fast the functional simulator executes vector intrinsics
 * with tracing off and on. Useful for sizing full-input (SWAN_FULL=1)
 * runs; not a paper experiment.
 */

#include <benchmark/benchmark.h>

#include "swan/simd.hh"
#include "swan/trace.hh"

using namespace swan;
using namespace swan::simd;

namespace
{

void
BM_VaddU8Untraced(benchmark::State &state)
{
    uint8_t buf[32];
    for (int i = 0; i < 32; ++i)
        buf[i] = uint8_t(i * 7);
    for (auto _ : state) {
        auto a = vld1<128>(buf);
        auto b = vld1<128>(buf + 16);
        benchmark::DoNotOptimize(vadd(a, b));
    }
}
BENCHMARK(BM_VaddU8Untraced);

void
BM_VaddU8Traced(benchmark::State &state)
{
    uint8_t buf[32];
    for (int i = 0; i < 32; ++i)
        buf[i] = uint8_t(i * 7);
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    for (auto _ : state) {
        auto a = vld1<128>(buf);
        auto b = vld1<128>(buf + 16);
        benchmark::DoNotOptimize(vadd(a, b));
        if (rec.instrs().size() > (1u << 20))
            rec.clear();
    }
}
BENCHMARK(BM_VaddU8Traced);

void
BM_WasmShuffleUntraced(benchmark::State &state)
{
    namespace ws = swan::simd::wasm;
    uint8_t buf[32];
    for (int i = 0; i < 32; ++i)
        buf[i] = uint8_t(i * 3);
    for (auto _ : state) {
        auto a = ws::v128_load(buf);
        auto b = ws::v128_load(buf + 16);
        benchmark::DoNotOptimize(
            ws::i8x16_shuffle<0, 3, 6, 9, 12, 15, 18, 21, 24, 27, 30, 0,
                              0, 0, 0, 0>(a, b));
    }
}
BENCHMARK(BM_WasmShuffleUntraced);

void
BM_WasmHsumU32Untraced(benchmark::State &state)
{
    namespace ws = swan::simd::wasm;
    auto v = ws::splat(uint32_t(7));
    for (auto _ : state)
        benchmark::DoNotOptimize(ws::hsum_u32x4(v));
}
BENCHMARK(BM_WasmHsumU32Untraced);


void
BM_MlalF32Wide(benchmark::State &state)
{
    const int bits = int(state.range(0));
    float buf[32];
    for (int i = 0; i < 32; ++i)
        buf[i] = float(i) * 0.25f;
    for (auto _ : state) {
        switch (bits) {
          case 256: {
            auto a = vld1<256>(buf);
            benchmark::DoNotOptimize(vmla(a, a, a));
            break;
          }
          case 1024: {
            auto a = vld1<1024>(buf);
            benchmark::DoNotOptimize(vmla(a, a, a));
            break;
          }
          default: {
            auto a = vld1<128>(buf);
            benchmark::DoNotOptimize(vmla(a, a, a));
            break;
          }
        }
    }
}
BENCHMARK(BM_MlalF32Wide)->Arg(128)->Arg(256)->Arg(1024);

void
BM_Aese(benchmark::State &state)
{
    auto st = vdup<uint8_t, 128>(uint8_t(0x3c));
    auto key = vdup<uint8_t, 128>(uint8_t(0xa5));
    for (auto _ : state)
        benchmark::DoNotOptimize(vaese(st, key));
}
BENCHMARK(BM_Aese);

} // namespace
