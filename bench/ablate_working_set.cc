/**
 * @file
 * Ablation study of the Section 5.2 cache-locality claim: "Lower cache
 * hit-rate drops vector processing speedup in data-parallel kernels
 * with large working set size." The paper observes it across libraries
 * (LJ/LP reach only 3.3x despite 8-bit pixels and a theoretical 16x
 * VRE, because their working sets spill past the LLC); this bench
 * demonstrates the mechanism on a single kernel by sweeping its input
 * from L1-resident to DRAM-resident and holding everything else fixed.
 *
 * Two kernels bracket the effect: LJ/rgb_to_ycbcr (streaming 8-bit
 * image kernel — the paper's poster child for the locality cliff) and
 * BS/sha256 (compute-dense crypto kernel whose dozens of operations
 * per byte hide memory latency at every footprint).
 */

#include "bench_common.hh"

using namespace swan;

namespace
{

struct SweepPoint
{
    const char *label;
    int width;
    int height;
};

/** Input footprint of rgb_to_ycbcr in KiB: 3 B/px in, 1 B/px out. */
double
imageKiB(const SweepPoint &p)
{
    return double(p.width) * double(p.height) * 4.0 / 1024.0;
}

} // namespace

int
main()
{
    const auto *kernel = core::Registry::instance().find("LJ/rgb_to_ycbcr");
    const auto *control = core::Registry::instance().find("BS/sha256");
    if (!kernel || !control) {
        std::cerr << "registry is missing the swept kernels\n";
        return 1;
    }
    const auto cfg = sim::primeConfig();

    core::banner(std::cout,
                 "Ablation: working-set size vs Neon speedup "
                 "(Section 5.2 locality claim)");
    std::cout << "Cache hierarchy (Table 3): L1D 64 KiB, L2 512 KiB, "
                 "LLC 2 MiB.\n\n";

    // From comfortably L1-resident through L2- and LLC-resident to
    // DRAM-resident (the paper's HD inputs are the last row).
    const SweepPoint sweep[] = {
        {"L1-resident", 64, 48},
        {"L2-resident", 192, 160},
        {"LLC-resident", 480, 270},
        {"2x LLC", 720, 540},
        {"DRAM-resident (paper HD)", 1280, 720},
    };

    core::Table t({"Working set", "KiB", "L1 hit (Neon)", "LLC MPKI (Neon)",
                   "Scalar IPC", "Neon IPC", "Neon speedup"});

    double smallSpeedup = 0.0, largeSpeedup = 0.0;
    for (const auto &p : sweep) {
        core::Options opts;
        opts.imageWidth = p.width;
        opts.imageHeight = p.height;
        core::Runner runner(opts);
        auto cmp = runner.compareScalarNeon(*kernel, cfg);
        const double speedup = cmp.neonSpeedup();
        if (p.width == sweep[0].width)
            smallSpeedup = speedup;
        largeSpeedup = speedup;
        t.addRow({p.label, core::fmt(imageKiB(p), 0),
                  core::fmtPct(100.0 * cmp.neon.sim.l1HitRate),
                  core::fmt(cmp.neon.sim.llcMpki, 1),
                  core::fmt(cmp.scalar.sim.ipc, 2),
                  core::fmt(cmp.neon.sim.ipc, 2), core::fmtX(speedup)});
    }
    t.print(std::cout);

    std::cout << "\nCache-resident vs DRAM-resident Neon speedup: "
              << core::fmtX(smallSpeedup) << " -> "
              << core::fmtX(largeSpeedup) << "\n";

    // Control: a compute-dense kernel. SHA-256 executes dozens of
    // operations per input byte, so memory latency hides behind compute
    // and the speedup must stay flat over the same footprint sweep —
    // the paper's crypto libraries keep their standout speedup at every
    // input size (Section 5.2).
    core::Table c({"Buffer", "KiB", "L1 hit (Neon)", "Neon speedup"});
    double minCtl = 1e9, maxCtl = 0.0;
    // Capped at 1 MiB (2x LLC): the buffered scalar trace of SHA-256 is
    // ~40 records/byte, so larger inputs exhaust host memory.
    for (int kib : {4, 64, 256, 1024}) {
        core::Options opts;
        opts.bufferBytes = kib * 1024;
        core::Runner runner(opts);
        auto cmp = runner.compareScalarNeon(*control, cfg);
        minCtl = std::min(minCtl, cmp.neonSpeedup());
        maxCtl = std::max(maxCtl, cmp.neonSpeedup());
        c.addRow({std::string("sha256 ") + std::to_string(kib) + " KiB",
                  std::to_string(kib),
                  core::fmtPct(100.0 * cmp.neon.sim.l1HitRate),
                  core::fmtX(cmp.neonSpeedup())});
    }
    c.print(std::cout);

    const bool monotone_drop = largeSpeedup < smallSpeedup;
    const bool control_flat = (maxCtl - minCtl) < 0.2 * maxCtl;
    std::cout << "\nPaper anchor (Section 5.2): image kernels' large "
                 "working sets drop cache hit\nrates (LJ: 91%/90%/67% "
                 "L1/L2/LLC) and cap the speedup near 3.3x despite\n"
                 "16x VRE; cache-resident kernels keep the full vector "
                 "memory advantage.\n"
              << "Speedup falls with working set: "
              << (monotone_drop ? "yes" : "NO")
              << "; control stays flat: " << (control_flat ? "yes" : "NO")
              << "\n";
    return monotone_drop && control_flat ? 0 : 1;
}
