#!/usr/bin/env sh
# Drive the per-figure bench binaries and a set of swan_cli sweep grids
# through the shared sweep engine. A common on-disk result cache means
# experiment points computed by one bench are served to every later one
# without re-simulation; run it twice and the second pass is all hits.
#
# Usage: bench/run_all.sh [BUILD_DIR]   (default: build)
set -eu

BUILD_DIR=${1:-build}
JOBS=${SWAN_JOBS:-$(nproc 2>/dev/null || echo 2)}
CACHE_DIR=${SWAN_SWEEP_CACHE_DIR:-$BUILD_DIR/.sweep-cache}

if [ ! -x "$BUILD_DIR/swan" ]; then
    echo "run_all.sh: $BUILD_DIR/swan not found; build first:" >&2
    echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

export SWAN_JOBS="$JOBS"
export SWAN_SWEEP_CACHE_DIR="$CACHE_DIR"
echo "== sweep cache: $CACHE_DIR, jobs: $JOBS =="

echo "== swan sweep: headline kernels, Scalar vs Neon, prime =="
"$BUILD_DIR/swan" sweep --impls scalar,neon --cores prime \
    --jobs "$JOBS" --format table

echo "== swan sweep: Figure-5 kernels across widths (CSV) =="
"$BUILD_DIR/swan" sweep --wider --bits 128,256,512,1024 --cores wider \
    --ws scalability --jobs "$JOBS" --format csv

echo "== swan sweep: Figure-5 kernels across core scaling (JSONL) =="
"$BUILD_DIR/swan" sweep --wider --cores 4W-2V,4W-4V,4W-6V,6W-6V,4W-8V,8W-8V \
    --ws scalability --jobs "$JOBS" --format jsonl

echo "== fig02_perf_energy =="
"$BUILD_DIR/fig02_perf_energy"

echo "== fig04_core_arch =="
"$BUILD_DIR/fig04_core_arch"

echo "== tab05_microarch =="
"$BUILD_DIR/tab05_microarch"

echo "== fig05a_wider_registers =="
"$BUILD_DIR/fig05a_wider_registers"

echo "== fig05b_more_units =="
"$BUILD_DIR/fig05b_more_units"

echo "== tab06_strided =="
"$BUILD_DIR/tab06_strided"

# Sharded-backend determinism smoke over the fig05a/fig05b grids: a
# --shards 2 fleet must emit byte-identical CSV to a --shards 1 run.
# Fresh cache directories on both sides so the shards actually
# simulate (a warm result cache would short-circuit the claim/merge
# path this smoke exists to exercise).
echo "== sharded smoke: fig05a/fig05b grids, --shards 2 vs 1 =="
SHARD_T="$BUILD_DIR/.sweep-cache-shard-t"
SHARD_S="$BUILD_DIR/.sweep-cache-shard-s"
rm -rf "$SHARD_T" "$SHARD_S"
"$BUILD_DIR/swan" sweep --wider --bits 128,256,512,1024 --cores wider \
    --ws scalability --jobs "$JOBS" --shards 1 --cache-dir "$SHARD_T" \
    --format csv > "$BUILD_DIR/fig05a_shard1.csv"
"$BUILD_DIR/swan" sweep --wider --bits 128,256,512,1024 --cores wider \
    --ws scalability --jobs "$JOBS" --shards 2 --cache-dir "$SHARD_S" \
    --format csv > "$BUILD_DIR/fig05a_shard2.csv"
cmp "$BUILD_DIR/fig05a_shard1.csv" "$BUILD_DIR/fig05a_shard2.csv"
"$BUILD_DIR/swan" sweep --wider --cores 4W-2V,4W-4V,4W-6V,6W-6V,4W-8V,8W-8V \
    --ws scalability --jobs "$JOBS" --shards 1 --cache-dir "$SHARD_T" \
    --format csv > "$BUILD_DIR/fig05b_shard1.csv"
"$BUILD_DIR/swan" sweep --wider --cores 4W-2V,4W-4V,4W-6V,6W-6V,4W-8V,8W-8V \
    --ws scalability --jobs "$JOBS" --shards 2 --cache-dir "$SHARD_S" \
    --format csv > "$BUILD_DIR/fig05b_shard2.csv"
cmp "$BUILD_DIR/fig05b_shard1.csv" "$BUILD_DIR/fig05b_shard2.csv"
rm -rf "$SHARD_T" "$SHARD_S"
echo "sharded output byte-identical"

# Replay-engine perf gate: the fused decode->step engine must hold
# >= 1.3x over block-delivery replay at N=3 configs and >= 1.5x at
# N=4 (half a lane block), with no regression at N=1 (>= 1.0x) and
# >= 1.2x on the saturation corpus. Enforced here on optimized
# builds; CI runs the smoke report-only by presetting
# SWAN_PERF_ENFORCE=0 — noisy shared runners. The emitted JSON
# records the dispatched decode/step kernels so a gate failure can
# be attributed to the code or to running on non-AVX2 hardware.
echo "== perf_smoke (BENCH_trace_replay.json, BENCH_sim_replay.json) =="
SWAN_PERF_ENFORCE="${SWAN_PERF_ENFORCE:-1}" "$BUILD_DIR/perf_smoke" \
    "$BUILD_DIR/BENCH_trace_replay.json" "$BUILD_DIR/BENCH_sim_replay.json"

# Observability overhead gate: fused replay with a live telemetry
# collector + sinks must stay within 2% of metrics-off wall time
# (call-granularity spans, never per-instruction cost). Same
# SWAN_PERF_ENFORCE policy as perf_smoke.
echo "== obs_overhead (BENCH_sweep_obs.json) =="
SWAN_PERF_ENFORCE="${SWAN_PERF_ENFORCE:-1}" "$BUILD_DIR/obs_overhead" \
    "$BUILD_DIR/BENCH_sweep_obs.json"

# Tiered-cache gate: 80/20 warm-skewed re-lookup traffic must run
# >= 1.3x faster than the cold miss+store pass, with >= 0.9 of warm
# lookups served from the RAM tier (memo hits + pinned traces). Same
# SWAN_PERF_ENFORCE policy as perf_smoke.
echo "== cache_tiers (BENCH_cache_tiers.json) =="
SWAN_PERF_ENFORCE="${SWAN_PERF_ENFORCE:-1}" "$BUILD_DIR/cache_tiers" \
    "$BUILD_DIR/BENCH_cache_tiers.json"

echo "== done =="
