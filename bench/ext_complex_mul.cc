/**
 * @file
 * Extension study (Section 6.5): the cost of portable vector APIs on
 * complex arithmetic. PFFFT's portable macro layer limits its complex
 * multiplication to basic intrinsics — six instructions and eight
 * Cortex-A76 cycles per complex multiply; Armv8.2 fused multiply-add/
 * subtract cuts that to four instructions and five cycles; Armv8.3's
 * FCMLA (two cycles on Cortex-A710) does a complex MAC in two
 * instructions with no permutes. This bench runs the same interleaved
 * spectrum convolution with all three budgets.
 */

#include "bench_common.hh"

#include "swan/trace.hh"
#include "swan/workloads.hh"

using namespace swan;
using workloads::ext::ComplexImpl;

int
main()
{
    core::Runner runner;
    const auto cfg = sim::primeConfig();

    struct Variant
    {
        const char *name;
        ComplexImpl impl;
        const char *paper;
    };
    const Variant variants[] = {
        {"Portable API (MUL/ADD + permutes)", ComplexImpl::Portable,
         "6 instr / 8 cyc per cmul"},
        {"Armv8.2 FMLA/FMLS + permutes", ComplexImpl::Fmla,
         "4 instr / 5 cyc per cmul"},
        {"Armv8.3 FCMLA rot0+rot90", ComplexImpl::Fcmla,
         "2-cycle FCMLA (A710)"},
    };

    core::banner(std::cout,
                 "Extension: complex multiply-accumulate budgets "
                 "(Section 6.5)");
    core::Table t({"Implementation", "Speedup vs Scalar",
                   "V-instr / complex", "V-Float ops", "Paper"});

    bool all_ok = true;
    double portableCycles = 0.0;
    for (const auto &v : variants) {
        auto w = workloads::ext::makeZConvolve(runner.options(), v.impl);
        auto s = runner.run(*w, core::Impl::Scalar, cfg);
        auto n = runner.run(*w, core::Impl::Neon, cfg);
        all_ok = all_ok && w->verify();
        if (v.impl == ComplexImpl::Portable)
            portableCycles = double(n.sim.cycles);
        const double complexOps = double(w->flops()) / 8.0;
        t.addRow({v.name,
                  core::fmtX(double(s.sim.cycles) / double(n.sim.cycles)),
                  core::fmtX(double(n.mix.vectorInstrs()) / complexOps),
                  std::to_string(n.mix.count(trace::InstrClass::VFloat)),
                  v.paper});
        if (v.impl == ComplexImpl::Fcmla && portableCycles > 0.0) {
            std::cout << "FCMLA vs portable API: "
                      << core::fmtX(portableCycles /
                                    double(n.sim.cycles))
                      << " fewer cycles\n";
        }
    }
    t.print(std::cout);

    std::cout << "\nPaper anchor: the portable-API restriction drops "
                 "PFFFT's Neon speedup to 2.3x\n(Section 6.5); fused and "
                 "complex intrinsics recover the gap but no portable\n"
                 "API exposes them across SSE/Neon.\n"
              << "Outputs verified: " << (all_ok ? "yes" : "NO") << "\n";
    return all_ok ? 0 : 1;
}
