/**
 * @file
 * Section 6.2 reproduction: the DES look-up-table study. Without
 * gather/scatter intrinsics, the Neon DES implementation must export
 * every S-box index to a scalar register, look it up, and re-insert it.
 * The paper measures: (a) Neon-with-LUT ~11% *slower* than scalar;
 * (b) with the look-up tables replaced by arithmetic, Neon beats Scalar
 * by ~2.1x; (c) ~73% of the Neon-with-LUT instructions are table
 * look-up traffic.
 */

#include "bench_common.hh"

namespace swan::workloads::boringssl
{
std::unique_ptr<core::Workload> makeDesLut(const core::Options &,
                                           bool use_lut);
} // namespace swan::workloads::boringssl

using namespace swan;

int
main()
{
    core::Runner runner;
    const auto cfg = sim::primeConfig();

    auto measure = [&](bool use_lut) {
        auto w = workloads::boringssl::makeDesLut(runner.options(),
                                                  use_lut);
        auto s = runner.run(*w, core::Impl::Scalar, cfg);
        auto n = runner.run(*w, core::Impl::Neon, cfg);
        const bool ok = w->verify();
        return std::tuple<core::KernelRun, core::KernelRun, bool>(
            std::move(s), std::move(n), ok);
    };

    auto [s_lut, n_lut, ok1] = measure(true);
    auto [s_arith, n_arith, ok2] = measure(false);

    // Look-up traffic share: lane moves + the scalar loads of the table
    // inside the Neon implementation.
    const double lut_share =
        100.0 *
        double(n_lut.mix.count(trace::InstrClass::VMisc) +
               n_lut.mix.count(trace::InstrClass::SLoad)) /
        double(n_lut.mix.total());

    core::banner(std::cout, "Section 6.2: DES look-up-table study");
    core::Table t({"Variant", "Neon vs Scalar", "Paper"});
    t.addRow({"With look-up tables",
              core::fmtX(double(s_lut.sim.cycles) /
                         double(n_lut.sim.cycles)),
              "0.89x (11% slowdown)"});
    t.addRow({"Look-up tables removed",
              core::fmtX(double(s_arith.sim.cycles) /
                         double(n_arith.sim.cycles)),
              "2.1x"});
    t.print(std::cout);

    std::cout << "\nTable look-up traffic share of the Neon-with-LUT "
                 "implementation: "
              << core::fmtPct(lut_share, 0) << " (paper: 73%)\n"
              << "Outputs verified: " << (ok1 && ok2 ? "yes" : "NO")
              << "\n";
    return ok1 && ok2 ? 0 : 1;
}
