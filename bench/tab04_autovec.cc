/**
 * @file
 * Table 4 reproduction: the auto-vectorization census. Buckets every
 * kernel's Auto implementation against Scalar and Neon by measured
 * speedup, and reports the Section 5.2 failure-reason counts from the
 * legality model.
 */

#include "bench_common.hh"

#include "swan/autovec.hh"

using namespace swan;

int
main()
{
    core::Runner runner;
    const auto cfg = sim::primeConfig();

    std::vector<autovec::SpeedupPair> pairs;
    std::array<int, 5> reason_counts{};
    int vectorizes = 0;
    for (const auto *spec : bench::headlineKernels()) {
        auto c = runner.compare(*spec, cfg);
        pairs.push_back({c.autoSpeedup(), c.neonSpeedup()});
        const auto &v = spec->info.autovec;
        if (v.vectorizes) {
            ++vectorizes;
        } else {
            using autovec::Fail;
            const Fail fails[] = {Fail::Uncountable, Fail::IndirectMemory,
                                  Fail::ComplexPhi, Fail::OtherLegality,
                                  Fail::CostModel};
            for (size_t i = 0; i < 5; ++i)
                if (autovec::has(v.failReasons, fails[i]))
                    ++reason_counts[i];
        }
    }

    auto t4 = autovec::census(pairs);

    core::banner(std::cout, "Table 4: Auto vs Scalar and Auto vs Neon");
    core::Table t({"Bucket", "Measured", "Paper"});
    t.addRow({"Auto ~= Scalar", std::to_string(t4.autoApproxScalar),
              "34"});
    t.addRow({"Auto < Scalar", std::to_string(t4.autoBelowScalar), "2"});
    t.addRow({"Auto > Scalar (#boosted)",
              std::to_string(t4.autoAboveScalar), "23"});
    t.addRow({"  of boosted: Auto ~= Neon",
              std::to_string(t4.autoApproxNeon), "6"});
    t.addRow({"  of boosted: Auto < Neon",
              std::to_string(t4.autoBelowNeon), "12"});
    t.addRow({"  of boosted: Auto > Neon",
              std::to_string(t4.autoAboveNeon), "5"});
    t.print(std::cout);

    core::banner(std::cout,
                 "Section 5.2: vectorization-failure reasons (legality "
                 "model; kernels can trip several)");
    core::Table r({"Reason", "Kernels", "Paper"});
    r.addRow({"Uncountable loop", std::to_string(reason_counts[0]), "8"});
    r.addRow({"Indirect memory access", std::to_string(reason_counts[1]),
              "8"});
    r.addRow({"Complex PHI / dependence", std::to_string(reason_counts[2]),
              "9"});
    r.addRow({"Other legality", std::to_string(reason_counts[3]), "10"});
    r.addRow({"Cost model", std::to_string(reason_counts[4]), "12"});
    r.print(std::cout);

    std::cout << "\nKernels the legality model lets vectorize: "
              << vectorizes << " (paper: 23)\n";
    return 0;
}
