/**
 * @file
 * Extension study (Section 6.3): strides beyond Neon's VLD4. An
 * 8-channel interleaved audio stream needs stride-8 access; Neon
 * composes it from VLD4 pairs + UZP stages, while RVV-style strided
 * loads (vlse) encode it in one instruction. Full de-interleaving uses
 * every loaded byte, so Neon stays competitive; extracting a single
 * channel pays for all eight, and the strided load wins on traffic and
 * instruction count.
 */

#include "bench_common.hh"

#include "swan/trace.hh"
#include "swan/workloads.hh"

using namespace swan;
using workloads::ext::StrideImpl;

namespace
{

struct Meas
{
    core::KernelRun scalar;
    core::KernelRun neon;
    core::KernelRun strided;
    bool ok = false;
};

Meas
measure(const core::Runner &runner, const sim::CoreConfig &cfg, bool full)
{
    auto make = [&](StrideImpl impl) {
        return full
                   ? workloads::ext::makeDeinterleave8(runner.options(),
                                                       impl)
                   : workloads::ext::makeChannelExtract(runner.options(),
                                                        impl);
    };
    Meas m;
    auto neon = make(StrideImpl::NeonUnzip);
    m.scalar = runner.run(*neon, core::Impl::Scalar, cfg);
    m.neon = runner.run(*neon, core::Impl::Neon, cfg);
    const bool ok1 = neon->verify();
    auto strided = make(StrideImpl::StridedLoad);
    strided->runScalar();
    m.strided = runner.run(*strided, core::Impl::Neon, cfg);
    m.ok = ok1 && strided->verify();
    return m;
}

} // namespace

int
main()
{
    core::Runner runner;
    const auto cfg = sim::primeConfig();

    const Meas full = measure(runner, cfg, /*full=*/true);
    const Meas extract = measure(runner, cfg, /*full=*/false);

    core::banner(std::cout,
                 "Extension: stride-8 access, VLD4+UZP vs strided loads "
                 "(Section 6.3)");

    core::Table t({"Kernel", "Impl", "Speedup vs Scalar",
                   "Instr reduction", "Load traffic (B)"});
    auto add = [&](const char *name, const Meas &m) {
        t.addRow({name, "Neon VLD4+UZP",
                  core::fmtX(double(m.scalar.sim.cycles) /
                             double(m.neon.sim.cycles)),
                  core::fmtX(double(m.scalar.mix.total()) /
                             double(m.neon.mix.total())),
                  std::to_string(m.neon.mix.loadBytes())});
        t.addRow({name, "Strided load (RVV vlse)",
                  core::fmtX(double(m.scalar.sim.cycles) /
                             double(m.strided.sim.cycles)),
                  core::fmtX(double(m.scalar.mix.total()) /
                             double(m.strided.mix.total())),
                  std::to_string(m.strided.mix.loadBytes())});
    };
    add("Deinterleave 8ch", full);
    add("Extract 1 of 8ch", extract);
    t.print(std::cout);

    std::cout
        << "\nPaper anchor (Section 6.3): Neon encodes strides up to 4 "
           "efficiently; higher\nstrides need multiple instructions that "
           "hurt performance, which RVV's\narbitrary-stride loads avoid. "
           "Sparse use (one channel of eight) also pays 8x\nthe memory "
           "traffic on Neon. Note the trade-off the timing model keeps "
           "honest:\na strided load cracks into per-element accesses in "
           "the LSU, so its cycle win\nis smaller than its instruction-"
           "count and traffic wins (and can invert when\nevery loaded "
           "byte would have been used anyway).\n"
        << "Outputs verified: " << (full.ok && extract.ok ? "yes" : "NO")
        << "\n";
    return full.ok && extract.ok ? 0 : 1;
}
