/**
 * @file
 * Table 2 reproduction: accelerated libraries, their domains, application
 * usage matrix and Chromium execution-time shares (static metadata from
 * the paper), plus the per-library kernel counts of this suite.
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    auto &reg = core::Registry::instance();
    core::banner(std::cout,
                 "Table 2: accelerated libraries (domain, usage, "
                 "Chromium exec. time)");

    core::Table t({"Library", "Domain", "Sym", "Chromium", "Android",
                   "WebRTC", "PDFium", "Max(%)", "Avg(%)", "Kernels"});
    int total = 0;
    for (const auto &lib : reg.libraries()) {
        auto kernels = reg.bySymbol(lib.symbol);
        int count = 0;
        for (const auto *k : kernels)
            if (!k->info.excluded)
                ++count;
        total += count;
        auto mark = [](bool b) { return b ? std::string("yes")
                                          : std::string("-"); };
        t.addRow({lib.library, std::string(core::name(lib.domain)),
                  lib.symbol, mark(lib.chromium), mark(lib.android),
                  mark(lib.webrtc), mark(lib.pdfium),
                  lib.chromiumMaxPct > 0 ? core::fmt(lib.chromiumMaxPct, 1)
                                         : "-",
                  lib.chromiumAvgPct > 0 ? core::fmt(lib.chromiumAvgPct, 1)
                                         : "-",
                  std::to_string(count)});
    }
    t.print(std::cout);
    std::cout << "\nTotal data-parallel kernels: " << total
              << " (paper: 59)\n";
    return total == 59 ? 0 : 1;
}
