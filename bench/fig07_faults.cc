/**
 * @file
 * Figure 7 (extension): fault-injection robustness study. Replays four
 * representative kernels — a checksum reduction, a crypto hash, a
 * strided image conversion and an audio inner product — clean and
 * under each fault scenario of the catalog (swan/faults.hh), all with
 * one seed, and reports the cycle/energy inflation each perturbation
 * costs on the prime core. Scenarios ride the ordinary sweep grid as a
 * fault axis, so every number here is deterministic: the same seed
 * gives byte-identical results on any backend, job count or shard
 * count, and faulted points never share cache entries with clean ones.
 */

#include "bench_common.hh"

#include "swan/faults.hh"

using namespace swan;

namespace
{

/** The scenario axis: one clean point plus every catalog scenario,
 *  all pinned to one seed so the figure is reproducible. The default
 *  50k-instruction period dwarfs the shortest kernels' traces (an
 *  inner product retires ~1k instructions per pass), so the windows
 *  are densified to a 2000/1000 half-duty cycle — every scenario
 *  provably fires on every kernel in the table. */
const std::vector<std::string> &
faultAxis()
{
    static const std::vector<std::string> axis = {
        "none",
        "dram-spike:seed=7:period=2000:duration=1000",
        "cache-flush:seed=7:period=2000:duration=1000",
        "mispredict-burst:seed=7:period=2000:duration=1000",
        "firstfault:seed=7:period=2000:duration=1000",
    };
    return axis;
}

const sweep::SweepResult *
resultFor(const Results &results, const std::string &kernel,
          const std::string &fault)
{
    for (const auto &r : results)
        if (r.point.spec->info.qualifiedName() == kernel &&
            r.point.faultName() == fault)
            return &r;
    return nullptr;
}

/** "1.23x" cycle inflation of the faulted point over the clean one. */
std::string
inflation(const sweep::SweepResult *clean, const sweep::SweepResult *hurt)
{
    if (!clean || !hurt)
        return "-";
    return core::fmtX(double(hurt->run.sim.cycles) /
                      double(clean->run.sim.cycles));
}

} // namespace

int
main()
{
    const std::vector<std::string> kernels = {
        "ZL/adler32",
        "BS/sha256",
        "LJ/rgb_to_ycbcr",
        "LO/inner_product",
    };

    Session session = Session::fromEnv();
    Results results = bench::runExperiment(Experiment(session)
                                               .kernels(kernels)
                                               .impl(core::Impl::Neon)
                                               .config("prime")
                                               .workingSet("default")
                                               .faults(faultAxis()),
                                           "fig07_faults");

    core::banner(std::cout,
                 "Figure 7: cycle inflation under fault injection "
                 "(prime core, Neon, seed 7)");
    core::Table t({"Kernel", "Clean cycles", "dram-spike", "cache-flush",
                   "mispredict-burst", "firstfault"});
    for (const auto &k : kernels) {
        const auto *clean = resultFor(results, k, "none");
        std::vector<std::string> row = {
            k, clean ? std::to_string(clean->run.sim.cycles) : "-"};
        for (size_t f = 1; f < faultAxis().size(); ++f)
            row.push_back(
                inflation(clean, resultFor(results, k, faultAxis()[f])));
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nScenario parameters (canonical spec forms):\n";
    for (size_t f = 1; f < faultAxis().size(); ++f) {
        sim::FaultSpec spec;
        std::string err;
        if (sim::FaultSpec::parse(faultAxis()[f], &spec, &err))
            std::cout << "  " << spec.describe() << "\n";
    }

    std::cout << "\nReading: cache-flush storms re-cool the hierarchy "
                 "mid-run and tax every kernel; mispredict-burst bites "
                 "only branchy control flow (the crypto rounds). The "
                 "flat columns are findings, not dead code: dram-spike "
                 "multiplies DRAM latency, but at these working sets "
                 "every paper kernel is LLC-resident, so a memory-"
                 "latency fault is invisible — and firstfault truncates "
                 "multi-element (gather/scatter/strided) accesses to a "
                 "lane prefix, a shape the Neon kernel set never emits "
                 "(no hardware gather; SVE-style traces are where it "
                 "fires). Both actuators are exercised against "
                 "synthetic DRAM-bound and gather-heavy traces in "
                 "tests/test_faults.cc.\n";
    return 0;
}
