/**
 * @file
 * Figure 6 reproduction: Neon vs GPU execution time for XNNPACK GEMM and
 * SpMM across operation counts. The GPU has ~96x Neon's FP32 MAC
 * throughput but pays a fixed launch overhead, so Neon wins below ~4M
 * MACs (Section 8). Neon times are simulated (streaming, cold caches for
 * the largest points); GPU times come from the analytical offload model.
 */

#include "bench_common.hh"

#include "swan/gpu.hh"
#include "swan/sim.hh"

namespace swan::workloads::xnnpack
{
std::unique_ptr<core::Workload> makeGemmF32(const core::Options &);
std::unique_ptr<core::Workload> makeSpmmF32(const core::Options &);
} // namespace swan::workloads::xnnpack

using namespace swan;

namespace
{

/** Simulate a workload's Neon implementation in streaming mode. */
double
neonTimeSec(core::Workload &w, const sim::CoreConfig &cfg)
{
    sim::CoreModel model(cfg);
    model.beginMeasurement();
    {
        trace::Recorder rec(&model);
        trace::ScopedRecorder scoped(&rec);
        w.runNeon(128);
    }
    auto res = model.finish();
    return res.timeSec;
}

void
sweepGemmSizes(bool sparse, const std::vector<int> &dims)
{
    const auto cfg = sim::primeConfig();
    core::Table t({"MACs", "Neon (ms)", "GPU (ms)",
                   "GPU w/o launch (ms)", "Winner"});
    for (int d : dims) {
        core::Options opts;
        opts.gemmM = d;
        opts.gemmN = d;
        opts.gemmK = d;
        auto w = sparse ? workloads::xnnpack::makeSpmmF32(opts)
                        : workloads::xnnpack::makeGemmF32(opts);
        const double neon_ms = neonTimeSec(*w, cfg) * 1e3;
        const uint64_t macs = w->flops() / 2;
        const double gpu_ms = gpu::gpuTimeSec(macs, sparse) * 1e3;
        const double gpu_compute_ms =
            gpu::gpuComputeTimeSec(macs, sparse) * 1e3;
        t.addRow({std::to_string(macs), core::fmt(neon_ms, 3),
                  core::fmt(gpu_ms, 3), core::fmt(gpu_compute_ms, 3),
                  neon_ms < gpu_ms ? "Neon" : "GPU"});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    core::banner(std::cout, "Figure 6(a): GEMM — Neon vs GPU");
    sweepGemmSizes(false, {58, 93, 144, 200, 235});

    core::banner(std::cout, "Figure 6(b): SpMM (80% sparse) — Neon vs "
                            "GPU");
    sweepGemmSizes(true, {50, 97, 153, 210, 247});

    std::cout << "\nPaper anchor: the crossover where the GPU starts "
                 "winning sits near 4M FP32 MAC operations for both "
                 "kernels; below it the launch overhead (dashed line) "
                 "dominates.\n";
    return 0;
}
