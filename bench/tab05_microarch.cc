/**
 * @file
 * Table 5 reproduction: microarchitectural characteristics per library —
 * L1D/L2/LLC MPKI, front-end and back-end stall fractions, and IPC, for
 * the Scalar (S) and Neon (V) implementations on the Prime core
 * (top-down style bottleneck attribution, Section 5.4).
 *
 * The kernel x implementation grid runs through the sweep engine, so
 * points computed by fig02/fig04 (same kernels, Prime core) are served
 * from the shared result cache instead of re-simulating.
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    Session session = Session::fromEnv();
    const Results results = bench::runExperiment(
        Experiment(session)
            .impls({core::Impl::Scalar, core::Impl::Neon})
            .config("prime"),
        "tab05");

    core::banner(std::cout,
                 "Table 5: L1D/L2/LLC MPKI, FE/BE stalls (%), IPC "
                 "(S = Scalar, V = Neon)");
    core::Table t({"Lib", "L1D S", "L1D V", "L2 S", "L2 V", "LLC S",
                   "LLC V", "FE% S", "FE% V", "BE% S", "BE% V", "IPC S",
                   "IPC V"});

    for (const auto &sym : bench::librarySymbols()) {
        std::vector<double> m[12];
        for (const auto *spec_ : bench::headlineKernels()) {
            if (spec_->info.symbol != sym)
                continue;
            const auto qn = spec_->info.qualifiedName();
            const auto *sr = results.find(qn, core::Impl::Scalar, 128);
            const auto *nr = results.find(qn, core::Impl::Neon, 128);
            if (!sr || !nr)
                continue;
            const auto &s = sr->run.sim;
            const auto &v = nr->run.sim;
            double vals[12] = {s.l1Mpki,      v.l1Mpki,  s.l2Mpki,
                               v.l2Mpki,      s.llcMpki, v.llcMpki,
                               s.feStallPct,  v.feStallPct,
                               s.beStallPct,  v.beStallPct,
                               s.ipc,         v.ipc};
            for (int i = 0; i < 12; ++i)
                m[i].push_back(vals[i]);
        }
        std::vector<std::string> row = {sym};
        for (int i = 0; i < 12; ++i)
            row.push_back(core::fmt(core::mean(m[i]), 1));
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors: Neon raises MPKI at every level "
                 "(fewer instructions move the same data); FE stalls "
                 "stay small; Neon IPC is lower with higher BE stalls "
                 "(memory-bound back-end).\n";
    return 0;
}
