/**
 * @file
 * Figure 5(a) reproduction: Neon performance scalability with wider
 * vector registers (128/256/512/1024 bits) for the eight representative
 * kernels, plus the SIMD lane utilization that explains the plateaus
 * (Section 7.1). Speedups are relative to the 128-bit implementation.
 *
 * The kernel x width grid runs through the sweep engine (src/sweep/):
 * SWAN_JOBS parallelizes the points and SWAN_SWEEP_CACHE_DIR shares
 * results with other benches and reruns; this file only formats the
 * figure from the deterministic result stream.
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    const int widths[4] = {128, 256, 512, 1024};

    Session session = Session::fromEnv();
    const Results results = bench::runExperiment(
        Experiment(session)
            .widerOnly()
            .impl(core::Impl::Neon)
            .vecBits({widths[0], widths[1], widths[2], widths[3]})
            .config("wider")
            .workingSet("scalability"),
        "fig05a");

    core::banner(std::cout,
                 "Figure 5(a): speedup vs 128-bit with wider vector "
                 "registers (SIMD lane utilization in parentheses)");
    core::Table t({"Kernel", "128-bit", "256-bit", "512-bit",
                   "1024-bit"});

    for (const auto *k : bench::headlineKernels()) {
        if (!k->info.widerWidths)
            continue;
        const auto qn = k->info.qualifiedName();
        const auto *base = results.find(qn, core::Impl::Neon, 128);
        std::vector<std::string> row = {qn};
        for (int bits : widths) {
            const auto *r = results.find(qn, core::Impl::Neon, bits);
            const double speedup = double(base->run.sim.cycles) /
                                   double(r->run.sim.cycles);
            row.push_back(
                core::fmtX(speedup) + " (" +
                core::fmtPct(100.0 * r->run.mix.laneUtilization(), 0) +
                ")");
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors: streaming kernels (LJ rgb_to_ycbcr, "
                 "SK convolve) scale to ~7-8x at 1024-bit with ~98% "
                 "utilization; GEMM drops to ~89% utilization "
                 "(indivisible columns); WA audible drops to ~74% "
                 "(stepwise reduction); LV sad16x16 and LW predict_tm "
                 "barely scale (2-D packing overhead).\n";
    return 0;
}
