/**
 * @file
 * Figure 5(a) reproduction: Neon performance scalability with wider
 * vector registers (128/256/512/1024 bits) for the eight representative
 * kernels, plus the SIMD lane utilization that explains the plateaus
 * (Section 7.1). Speedups are relative to the 128-bit implementation.
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    core::Runner runner(bench::scalabilityOptions());
    const int widths[4] = {128, 256, 512, 1024};

    core::banner(std::cout,
                 "Figure 5(a): speedup vs 128-bit with wider vector "
                 "registers (SIMD lane utilization in parentheses)");
    core::Table t({"Kernel", "128-bit", "256-bit", "512-bit",
                   "1024-bit"});

    for (const auto *spec : bench::headlineKernels()) {
        if (!spec->info.widerWidths)
            continue;
        std::vector<std::string> row = {spec->info.qualifiedName()};
        uint64_t base_cycles = 0;
        for (int wi = 0; wi < 4; ++wi) {
            auto w = spec->make(runner.options());
            auto instrs = core::Runner::capture(*w, core::Impl::Neon,
                                                widths[wi]);
            trace::MixStats mix;
            mix.addTrace(instrs);
            auto cfg = sim::widerVectorConfig(widths[wi]);
            auto res = sim::simulateTrace(instrs, cfg);
            if (wi == 0)
                base_cycles = res.cycles;
            const double speedup =
                double(base_cycles) / double(res.cycles);
            row.push_back(core::fmtX(speedup) + " (" +
                          core::fmtPct(100.0 * mix.laneUtilization(), 0) +
                          ")");
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors: streaming kernels (LJ rgb_to_ycbcr, "
                 "SK convolve) scale to ~7-8x at 1024-bit with ~98% "
                 "utilization; GEMM drops to ~89% utilization "
                 "(indivisible columns); WA audible drops to ~74% "
                 "(stepwise reduction); LV sad16x16 and LW predict_tm "
                 "barely scale (2-D packing overhead).\n";
    return 0;
}
