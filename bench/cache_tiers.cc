/**
 * @file
 * Tiered-cache perf smoke: measures what the hotness-aware hierarchy
 * buys on skewed re-lookup traffic, and writes BENCH_cache_tiers.json
 * (argv[1] overrides the path) so the trajectory is tracked run over
 * run.
 *
 * Three passes over one 80/20-skewed lookup sequence (20% of the keys
 * take 80% of the traffic — the warm-service shape a sweep fleet sees):
 *
 *   cold         empty tiers: every unique key misses once and is
 *                computed + stored (write-through to the far tier);
 *                repeats are served back out of the RAM memo,
 *   warm-skewed  fresh process image (new cache instance) on the warm
 *                directories: first touch per key off local disk,
 *                repeats out of RAM, hot packed traces pinned into the
 *                T0 memo after their second hit,
 *   far-cold     local tier wiped: first touch per key is a far hit
 *                write-through-promoted to local disk (the new-host
 *                story; reported, not gated).
 *
 * Gates: warm-skewed >= 1.3x faster than cold, and a hot-tier (RAM)
 * hit rate >= 0.9 on the warm pass. Report-only by default (CI
 * machines are noisy); an optimized build run with SWAN_PERF_ENFORCE=1
 * — which bench/run_all.sh sets — turns them into hard failures. A
 * warm-pass miss (recompute) is always a hard failure.
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace swan;

namespace
{

constexpr size_t kKeys = 64;       //!< distinct result keys
constexpr size_t kHotKeys = 13;    //!< ~20% of them take 80% of traffic
constexpr size_t kLookups = 4000;  //!< result lookups per pass
constexpr size_t kTraceKeys = 3;   //!< distinct packed-trace keys
constexpr size_t kTraceLookups = 96;

std::string
fmtJson(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
}

sweep::CacheKey
keyAt(size_t i)
{
    sweep::CacheKey k;
    k.kernel = "BENCH/tiers";
    k.configFp = 0x9000 + i;
    k.optionsFp = 0xbeef;
    return k;
}

sweep::TraceKey
traceKeyAt(size_t i)
{
    sweep::TraceKey k;
    k.kernel = "BENCH/tiers";
    k.optionsFp = 0xbeef + i;
    return k;
}

core::KernelRun
runAt(size_t i)
{
    core::KernelRun r;
    r.sim.cycles = 1000 + i;
    r.sim.instrs = 100;
    return r;
}

/**
 * The 80/20 sequence, fixed across passes and runs: a deterministic
 * LCG (never the libc PRNG — the same traffic must replay on every
 * platform) routes ~80% of lookups into the first kHotKeys keys.
 */
std::vector<size_t>
skewedSequence()
{
    std::vector<size_t> seq;
    seq.reserve(kLookups);
    uint64_t x = 0x243f6a8885a308d3ull;
    for (size_t i = 0; i < kLookups; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const uint64_t coin = (x >> 33) % 10;
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        if (coin < 8)
            seq.push_back((x >> 33) % kHotKeys);
        else
            seq.push_back(kHotKeys + (x >> 33) % (kKeys - kHotKeys));
    }
    return seq;
}

struct PassResult
{
    double seconds = 0;
    sweep::CacheStats stats;
};

/** One pass of the skewed traffic plus hot trace re-lookups. In the
 *  cold pass misses are "computed" (a canned result) and stored. */
PassResult
runPass(sweep::ResultCache &cache, const std::vector<size_t> &seq,
        const trace::PackedTrace &trace, const trace::MixStats &mix,
        bool store_misses)
{
    const auto t0 = std::chrono::steady_clock::now();
    core::KernelRun got;
    for (const size_t i : seq) {
        if (!cache.lookup(keyAt(i), &got) && store_misses)
            cache.store(keyAt(i), runAt(i));
    }
    trace::PackedTrace t;
    trace::MixStats m;
    for (size_t i = 0; i < kTraceLookups; ++i) {
        const auto key = traceKeyAt(i % kTraceKeys);
        if (!cache.lookupTrace(key, &t, &m) && store_misses) {
            cache.storeTrace(key, trace, mix);
            // Traces are not written through on store (shards publish
            // to T1 only); the parent's post-capture publish step.
            cache.publishTraceFar(key, &trace, mix);
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    PassResult r;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.stats = cache.stats();
    return r;
}

double
hotHitRate(const sweep::CacheStats &s)
{
    const double lookups = double(s.total() + s.traceHits +
                                  s.traceRamHits + s.traceMisses);
    if (lookups == 0)
        return 0;
    return double(s.hits + s.traceRamHits) / lookups;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string jsonPath =
        argc > 1 ? argv[1] : "BENCH_cache_tiers.json";
    namespace fs = std::filesystem;
    const auto base = fs::temp_directory_path() /
                      ("swan_bench_cache_tiers_" +
                       std::to_string(::getpid()));
    const auto localDir = (base / "local").string();
    const auto farDir = (base / "far").string();
    fs::remove_all(base);

    // One real packed trace gives the trace tier honest decode/pin
    // costs.
    const auto *spec = core::Registry::instance().find("ZL/adler32");
    if (!spec) {
        std::cerr << "cache_tiers: kernel ZL/adler32 not registered\n";
        return 1;
    }
    auto w = spec->make(core::Options());
    const auto instrs = core::Runner::capture(*w, core::Impl::Neon, 128);
    const auto packed = trace::PackedTrace::pack(instrs);
    trace::MixStats mix;
    mix.addTrace(instrs);

    const auto seq = skewedSequence();
    const int reps = 3;

    // Cold: fresh directories each rep (best-of, like the replay
    // smokes).
    double coldWall = 1e100;
    sweep::CacheStats coldStats;
    for (int r = 0; r < reps; ++r) {
        fs::remove_all(base);
        sweep::ResultCache cache(localDir, 0, farDir);
        cache.setRamTraceBudget(64ull << 20);
        const auto p = runPass(cache, seq, packed, mix, true);
        if (p.seconds < coldWall) {
            coldWall = p.seconds;
            coldStats = p.stats;
        }
    }

    // Warm-skewed: same directories, fresh cache instance per rep (RAM
    // cold, disk warm — the "next command against a warm cache" shape).
    double warmWall = 1e100;
    sweep::CacheStats warmStats;
    for (int r = 0; r < reps; ++r) {
        sweep::ResultCache cache(localDir, 0, farDir);
        cache.setRamTraceBudget(64ull << 20);
        const auto p = runPass(cache, seq, packed, mix, false);
        if (p.stats.misses || p.stats.traceMisses) {
            std::cerr << "cache_tiers: warm pass recomputed ("
                      << p.stats.misses << " result / "
                      << p.stats.traceMisses << " trace misses)\n";
            return 1;
        }
        if (p.seconds < warmWall) {
            warmWall = p.seconds;
            warmStats = p.stats;
        }
    }

    // Far-cold: wipe the local tier; every first touch promotes from
    // the far tier (reported only — the far tier here shares a
    // filesystem with T1, so the gap understates a real deployment).
    double farWall = 1e100;
    sweep::CacheStats farStats;
    for (int r = 0; r < reps; ++r) {
        fs::remove_all(localDir);
        sweep::ResultCache cache(localDir, 0, farDir);
        cache.setRamTraceBudget(64ull << 20);
        const auto p = runPass(cache, seq, packed, mix, false);
        if (p.stats.misses || p.stats.traceMisses) {
            std::cerr << "cache_tiers: far pass recomputed\n";
            return 1;
        }
        if (p.seconds < farWall) {
            farWall = p.seconds;
            farStats = p.stats;
        }
    }
    fs::remove_all(base);

    const double speedup = coldWall / warmWall;
    const double rate = hotHitRate(warmStats);
    constexpr double kSpeedupGate = 1.3;
    constexpr double kHotRateGate = 0.9;
#ifdef NDEBUG
    const char *enf = std::getenv("SWAN_PERF_ENFORCE");
    const bool gateEnforced = enf && enf[0] == '1';
#else
    const bool gateEnforced = false;
#endif

    core::banner(std::cout, "Tiered cache perf smoke (80/20 traffic)");
    core::Table t({"pass", "wall ms", "vs cold"});
    t.addRow({"cold (miss+store)", core::fmt(coldWall * 1e3, 2),
              core::fmtX(1.0, 2)});
    t.addRow({"warm-skewed", core::fmt(warmWall * 1e3, 2),
              core::fmtX(speedup, 2)});
    t.addRow({"far-cold (promote)", core::fmt(farWall * 1e3, 2),
              core::fmtX(coldWall / farWall, 2)});
    t.print(std::cout);
    std::cout << "warm pass: " << warmStats.hits << " RAM hits, "
              << warmStats.diskHits << " disk hits, "
              << warmStats.traceRamHits << " pinned-trace hits, "
              << warmStats.ramPromotions << " pins; hot-tier rate "
              << core::fmt(rate, 3) << "\n";
    std::cout << "far pass: " << farStats.farHits << " far hits, "
              << farStats.farPromotions << " promoted to local disk\n";

    {
        std::ofstream os(jsonPath, std::ios::trunc);
        os << "{\n"
           << "  \"bench\": \"cache_tiers\",\n"
           << "  \"keys\": " << kKeys << ",\n"
           << "  \"hot_keys\": " << kHotKeys << ",\n"
           << "  \"lookups\": " << kLookups << ",\n"
           << "  \"cold_wall_s\": " << fmtJson(coldWall) << ",\n"
           << "  \"warm_skewed_wall_s\": " << fmtJson(warmWall) << ",\n"
           << "  \"far_cold_wall_s\": " << fmtJson(farWall) << ",\n"
           << "  \"speedup_warm_vs_cold\": " << fmtJson(speedup) << ",\n"
           << "  \"hot_hit_rate\": " << fmtJson(rate) << ",\n"
           << "  \"warm_ram_hits\": " << warmStats.hits << ",\n"
           << "  \"warm_disk_hits\": " << warmStats.diskHits << ",\n"
           << "  \"warm_trace_ram_hits\": " << warmStats.traceRamHits
           << ",\n"
           << "  \"warm_ram_promotions\": " << warmStats.ramPromotions
           << ",\n"
           << "  \"far_hits\": " << farStats.farHits << ",\n"
           << "  \"far_promotions\": " << farStats.farPromotions << ",\n"
           << "  \"cold_far_stores\": " << coldStats.farStores << ",\n"
           << "  \"gate_speedup_min\": " << fmtJson(kSpeedupGate) << ",\n"
           << "  \"gate_hot_hit_rate_min\": " << fmtJson(kHotRateGate)
           << ",\n"
           << "  \"gate_enforced\": "
           << (gateEnforced ? "true" : "false") << "\n"
           << "}\n";
        if (!os) {
            std::cerr << "cache_tiers: cannot write " << jsonPath << "\n";
            return 1;
        }
        std::cout << "wrote " << jsonPath << "\n";
    }

    if (gateEnforced && speedup < kSpeedupGate) {
        std::cerr << "cache_tiers: warm-skewed only "
                  << core::fmtX(speedup, 3) << " vs cold (< "
                  << kSpeedupGate << "x)\n";
        return 1;
    }
    if (gateEnforced && rate < kHotRateGate) {
        std::cerr << "cache_tiers: hot-tier hit rate only "
                  << core::fmt(rate, 3) << " (< " << kHotRateGate
                  << ")\n";
        return 1;
    }
    return 0;
}
