/**
 * @file
 * Extension study (Section 7.1): tail handling at growing register
 * widths. The paper's wide-register GEMM loses SIMD utilization (98% at
 * 128 bits down to 89% at 1024 bits) because output columns are not
 * lane-divisible and Neon falls back to narrower registers. SVE's
 * WHILELT predication runs tails at full width under a mask. This bench
 * sweeps a 27-element-row AXPY — a remainder at every width — across
 * 128..1024-bit registers with both strategies.
 */

#include "bench_common.hh"

#include "swan/trace.hh"
#include "swan/workloads.hh"

using namespace swan;
using workloads::ext::TailImpl;

int
main()
{
    core::Runner runner;

    core::banner(std::cout,
                 "Extension: loop tails, narrower registers vs WHILELT "
                 "predication (Section 7.1)");
    core::Table t({"Width", "Impl", "Speedup vs Scalar",
                   "SIMD utilization", "Vector instrs"});

    bool all_ok = true;
    for (int bits : {128, 256, 512, 1024}) {
        const auto cfg = sim::widerVectorConfig(bits);
        for (auto impl : {TailImpl::NarrowTail, TailImpl::Predicated}) {
            auto w = workloads::ext::makeAxpyTail(runner.options(), impl);
            auto s = runner.run(*w, core::Impl::Scalar, cfg);
            auto n = runner.run(*w, core::Impl::Neon, cfg, bits);
            all_ok = all_ok && w->verify();
            t.addRow({std::to_string(bits) + "-bit",
                      impl == TailImpl::Predicated ? "SVE predicated"
                                                   : "Neon narrow tail",
                      core::fmtX(double(s.sim.cycles) /
                                 double(n.sim.cycles)),
                      core::fmtPct(
                          100.0 * n.mix.machineUtilization(bits / 8), 0),
                      std::to_string(n.mix.vectorInstrs())});
        }
    }
    t.print(std::cout);

    std::cout
        << "\nPaper anchor (Section 7.1): GEMM-FP32 SIMD utilization "
           "falls from 98% at\n128 bits to 89% at 1024 bits because "
           "non-divisible columns force narrower\nregisters; predication "
           "holds utilization at the DLP limit and removes the\n"
           "tail cascade entirely.\n"
        << "Outputs verified: " << (all_ok ? "yes" : "NO") << "\n";
    return all_ok ? 0 : 1;
}
