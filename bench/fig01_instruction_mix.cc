/**
 * @file
 * Figure 1 reproduction: per-library Neon instruction-class distribution
 * (S-Integer, S-Float, V-Load, V-Store, V-Integer, V-Float, V-Crypto,
 * V-Misc, % of dynamic instructions) and the total dynamic instruction
 * reduction of Neon vs Scalar (geomean per library, secondary axis).
 */

#include "bench_common.hh"

using namespace swan;
using trace::PaperClass;

int
main()
{
    core::Runner runner;
    core::banner(std::cout,
                 "Figure 1: Neon instruction distribution (%) and "
                 "Scalar/Neon instruction reduction (x)");

    core::Table t({"Lib", "S-Int", "S-Float", "V-Load", "V-Store",
                   "V-Int", "V-Float", "V-Crypto", "V-Misc",
                   "InstrReduction"});

    for (const auto &sym : bench::librarySymbols()) {
        trace::MixStats mix;
        std::vector<double> reductions;
        for (const auto *spec : bench::headlineKernels()) {
            if (spec->info.symbol != sym)
                continue;
            auto w = spec->make(runner.options());
            auto scalar_trace =
                core::Runner::capture(*w, core::Impl::Scalar);
            auto neon_trace = core::Runner::capture(*w, core::Impl::Neon);
            trace::MixStats kmix;
            kmix.addTrace(neon_trace);
            mix.addTrace(neon_trace);
            reductions.push_back(double(scalar_trace.size()) /
                                 double(neon_trace.size()));
        }
        auto pct = [&](PaperClass c) {
            return core::fmtPct(100.0 * mix.fraction(c), 1);
        };
        t.addRow({sym, pct(PaperClass::SInteger), pct(PaperClass::SFloat),
                  pct(PaperClass::VLoad), pct(PaperClass::VStore),
                  pct(PaperClass::VInteger), pct(PaperClass::VFloat),
                  pct(PaperClass::VCrypto), pct(PaperClass::VMisc),
                  core::fmtX(core::geomean(reductions))});
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors: image/video libraries reduce ~6-12x "
                 "(8-bit pixels); ZL/BS reduce most (crypto "
                 "instructions); WA saturates near 3.4x (vector APIs); "
                 "PF has the largest scalar fraction.\n";
    return 0;
}
