/**
 * @file
 * Ablation study of the timing-model design choices DESIGN.md calls out:
 * the next-line prefetcher, the MSHR count (memory-level parallelism),
 * the L2/LLC fill-bandwidth queues and the DRAM bandwidth. Run on two
 * memory-sensitive kernels (a streaming one and a blocked one) to show
 * which modeling choice moves which result — and that the headline
 * Neon-vs-Scalar *ratios* are stable across them.
 */

#include "bench_common.hh"

#include "swan/sim.hh"

using namespace swan;

namespace
{

struct Variant
{
    const char *name;
    sim::CoreConfig cfg;
};

std::vector<Variant>
variants()
{
    std::vector<Variant> out;
    out.push_back({"baseline (Table 3)", sim::primeConfig()});

    auto no_pf = sim::primeConfig();
    no_pf.l1d.nextLinePrefetch = false;
    no_pf.l2.nextLinePrefetch = false;
    out.push_back({"no next-line prefetch", no_pf});

    auto one_mshr = sim::primeConfig();
    one_mshr.mshrs = 1;
    out.push_back({"1 MSHR (no MLP)", one_mshr});

    auto wide_l2 = sim::primeConfig();
    wide_l2.l2ServiceCycles = 1.0;
    wide_l2.llcServiceCycles = 2.0;
    out.push_back({"4x L2/LLC fill bandwidth", wide_l2});

    auto slow_dram = sim::primeConfig();
    slow_dram.dramGBs = 3.5;
    out.push_back({"1/4 DRAM bandwidth", slow_dram});

    auto far_dram = sim::primeConfig();
    far_dram.dramLatencyNs = 400.0;
    out.push_back({"4x DRAM latency", far_dram});
    return out;
}

} // namespace

int
main()
{
    core::Runner runner;
    const char *kernels[] = {"LP/defilter_up", "LV/sad16x16"};

    for (const char *name : kernels) {
        const auto *spec = core::Registry::instance().find(name);
        if (!spec) {
            std::cerr << "missing kernel " << name << "\n";
            return 1;
        }
        core::banner(std::cout, std::string("Ablation on ") + name);
        // The dynamic trace is configuration-independent: capture the
        // Scalar and Neon streams once and replay them per variant.
        auto w = spec->make(runner.options());
        const auto scalarTrace =
            core::Runner::capture(*w, core::Impl::Scalar);
        const auto neonTrace = core::Runner::capture(*w, core::Impl::Neon);
        core::Table t({"Model variant", "Scalar cycles", "Neon cycles",
                       "Neon speedup", "Neon DRAM acc/kcycle"});
        for (const auto &v : variants()) {
            auto sres = sim::simulateTrace(scalarTrace, v.cfg);
            auto nres = sim::simulateTrace(neonTrace, v.cfg);
            t.addRow({v.name, std::to_string(sres.cycles),
                      std::to_string(nres.cycles),
                      core::fmtX(double(sres.cycles) /
                                 double(nres.cycles)),
                      core::fmt(nres.dramAccessPerKCycle, 2)});
        }
        t.print(std::cout);
    }
    std::cout << "\nReading guide: prefetch and MSHRs mostly move the "
                 "absolute cycle counts; the Neon-vs-Scalar ratio - the "
                 "quantity every paper claim rests on - shifts far "
                 "less.\n";
    return 0;
}
