/**
 * @file
 * Table 3 reproduction: the simulated Snapdragon 855 Cortex-A76 Prime
 * core baseline configuration (what the trace-driven model implements).
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    auto print = [](const sim::CoreConfig &c) {
        core::banner(std::cout, "Core configuration: " + c.name);
        core::Table t({"Component", "Detail"});
        t.addRow({"Scalar core",
                  core::fmt(c.freqGHz, 1) + " GHz, " +
                      std::to_string(c.robSize) + " entry ROB, " +
                      (c.outOfOrder ? "out-of-order" : "in-order")});
        t.addRow({"Width", std::to_string(c.decodeWidth) +
                               "-way decode, " +
                               std::to_string(c.issueWidth) +
                               "-way issue, " +
                               std::to_string(c.commitWidth) +
                               "-way commit"});
        t.addRow({"Vector engine",
                  std::to_string(c.vunits()) + " x " +
                      std::to_string(c.vecBits) +
                      "-bit ASIMD units + crypto ext"});
        auto cache = [](const sim::CacheConfig &cc) {
            return std::to_string(cc.sizeBytes / 1024) + " KiB, " +
                   std::to_string(cc.ways) + "-way, " +
                   std::to_string(cc.latency) + " cycle latency";
        };
        t.addRow({"L1-D cache", cache(c.l1d)});
        t.addRow({"L2 cache", cache(c.l2)});
        t.addRow({"LLC", cache(c.llc)});
        t.addRow({"DRAM", core::fmt(c.dramLatencyNs, 0) + " ns, " +
                              core::fmt(c.dramGBs, 1) + " GB/s"});
        t.print(std::cout);
    };

    print(sim::primeConfig());
    print(sim::goldConfig());
    print(sim::silverConfig());
    return 0;
}
