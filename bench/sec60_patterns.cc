/**
 * @file
 * Section 6 reproduction: the census of common computation patterns —
 * how many kernels exhibit each pattern (reduction, random/LUT access,
 * strided access, matrix transposition, portable vector APIs) and the
 * average fraction of kernel instructions the pattern's signature
 * instructions consume.
 */

#include "bench_common.hh"

using namespace swan;
using core::Pattern;
using trace::StrideKind;

int
main()
{
    core::Runner runner;

    struct Row
    {
        const char *label;
        Pattern pattern;
        int kernels = 0;
        std::vector<double> share;
    };
    Row rows[] = {{"Reduction (6.1)", Pattern::Reduction},
                  {"Random memory access / LUT (6.2)",
                   Pattern::RandomAccess},
                  {"Strided memory access (6.3)", Pattern::StridedAccess},
                  {"Matrix transposition (6.4)", Pattern::Transpose},
                  {"Portable vector APIs (6.5)", Pattern::VectorApi},
                  {"Loop distribution rewrite (6.1)",
                   Pattern::LoopDistribution}};

    for (const auto *spec : bench::headlineKernels()) {
        auto w = spec->make(runner.options());
        auto instrs = core::Runner::capture(*w, core::Impl::Neon);
        trace::MixStats mix;
        mix.addTrace(instrs);
        for (auto &r : rows) {
            if (!core::has(spec->info.patterns, r.pattern))
                continue;
            ++r.kernels;
            double share = 0.0;
            switch (r.pattern) {
              case Pattern::StridedAccess:
                share = 100.0 * (mix.strideFraction(StrideKind::Ld2) +
                                 mix.strideFraction(StrideKind::St2) +
                                 mix.strideFraction(StrideKind::Ld3) +
                                 mix.strideFraction(StrideKind::St3) +
                                 mix.strideFraction(StrideKind::Ld4) +
                                 mix.strideFraction(StrideKind::St4) +
                                 mix.strideFraction(StrideKind::Zip) +
                                 mix.strideFraction(StrideKind::Uzp));
                break;
              case Pattern::Transpose:
                share = 100.0 * mix.strideFraction(StrideKind::Trn);
                break;
              default:
                // Patterns without a dedicated instruction signature are
                // censused by kernel count only.
                share = -1.0;
                break;
            }
            if (share >= 0)
                r.share.push_back(share);
        }
    }

    core::banner(std::cout,
                 "Section 6: common computation patterns across the "
                 "suite");
    core::Table t({"Pattern", "#Kernels", "Avg. signature-instr share"});
    for (const auto &r : rows) {
        t.addRow({r.label, std::to_string(r.kernels),
                  r.share.empty() ? std::string("-")
                                  : core::fmtPct(core::mean(r.share), 1)});
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors: 7 reduction kernels, 7 random-access "
                 "kernels, 6 transposition kernels; LV's DCTs spend "
                 "~24% of instructions transposing; WA/PF rely on "
                 "portable vector APIs.\n";
    return 0;
}
