/**
 * @file
 * Section 5.2 synthesis: what makes a kernel vector-friendly? The
 * paper's analysis names two axes — operation precision (VRE, Equation
 * 1) and cache hit rate — and argues speedup tracks both. This bench
 * computes, for every library, the measured correlates from the same
 * runs the headline figures use: the Neon instruction reduction
 * (precision proxy, Figure 1), the L1 hit rate and arithmetic intensity
 * (vector ops per byte loaded), and the achieved speedup, then checks
 * the paper's two claimed rank relations hold over the suite.
 */

#include <algorithm>
#include <cmath>

#include "bench_common.hh"

#include "swan/trace.hh"

using namespace swan;

namespace
{

struct LibRow
{
    std::string symbol;
    double speedup = 0.0;       //!< geomean Neon vs Scalar
    double reduction = 0.0;     //!< geomean instruction reduction
    double hitRate = 0.0;       //!< mean Neon L1 hit rate
    double intensity = 0.0;     //!< vector ops per loaded byte
    bool crypto = false;
};

/** Spearman rank correlation of two equal-length samples. */
double
spearman(std::vector<double> a, std::vector<double> b)
{
    auto ranks = [](std::vector<double> v) {
        std::vector<size_t> idx(v.size());
        for (size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::sort(idx.begin(), idx.end(),
                  [&](size_t x, size_t y) { return v[x] < v[y]; });
        std::vector<double> r(v.size());
        for (size_t i = 0; i < idx.size(); ++i)
            r[idx[i]] = double(i);
        return r;
    };
    const auto ra = ranks(std::move(a));
    const auto rb = ranks(std::move(b));
    const double n = double(ra.size());
    double d2 = 0.0;
    for (size_t i = 0; i < ra.size(); ++i)
        d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
    return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

} // namespace

int
main()
{
    core::Runner runner;
    const auto cfg = sim::primeConfig();

    core::banner(std::cout,
                 "Section 5.2 synthesis: precision, locality and "
                 "intensity vs speedup");

    std::vector<LibRow> rows;
    for (const auto &sym : bench::librarySymbols()) {
        LibRow row;
        row.symbol = sym;
        double logSpeed = 0.0, logRed = 0.0, hit = 0.0, vops = 0.0,
               bytes = 0.0;
        int n = 0;
        for (const auto *k : core::Registry::instance().bySymbol(sym)) {
            if (k->info.excluded)
                continue;
            auto cmp = runner.compareScalarNeon(*k, cfg);
            logSpeed += std::log(cmp.neonSpeedup());
            logRed += std::log(cmp.instrReduction());
            hit += cmp.neon.sim.l1HitRate;
            vops += double(cmp.neon.mix.vectorInstrs() -
                           cmp.neon.mix.count(trace::InstrClass::VLoad) -
                           cmp.neon.mix.count(trace::InstrClass::VStore));
            bytes += double(cmp.neon.mix.loadBytes());
            row.crypto = row.crypto ||
                         cmp.neon.mix.count(trace::InstrClass::VCrypto) > 0;
            ++n;
        }
        if (n == 0)
            continue;
        row.speedup = std::exp(logSpeed / n);
        row.reduction = std::exp(logRed / n);
        row.hitRate = hit / n;
        row.intensity = bytes > 0.0 ? vops / bytes : 0.0;
        rows.push_back(row);
    }

    core::Table t({"Lib", "Neon speedup", "Instr reduction", "L1 hit",
                   "V-ops/byte", "Crypto"});
    for (const auto &r : rows) {
        t.addRow({r.symbol, core::fmtX(r.speedup), core::fmtX(r.reduction),
                  core::fmtPct(100.0 * r.hitRate),
                  core::fmt(r.intensity, 2), r.crypto ? "yes" : "-"});
    }
    t.print(std::cout);

    // Claim 1 (Equation 1 / Figure 1): speedup rises with instruction
    // reduction, i.e. with encoded operations per instruction.
    std::vector<double> sp, red, hitv;
    for (const auto &r : rows) {
        sp.push_back(r.speedup);
        red.push_back(r.reduction);
        hitv.push_back(r.hitRate);
    }
    const double rho_red = spearman(sp, red);

    // Claim 2: among non-crypto libraries (crypto's reduction dwarfs the
    // locality signal), lower hit rates cap the speedup.
    std::vector<double> sp_nc, hit_nc;
    for (const auto &r : rows) {
        if (!r.crypto) {
            sp_nc.push_back(r.speedup);
            hit_nc.push_back(r.hitRate);
        }
    }
    const double rho_hit = spearman(sp_nc, hit_nc);

    std::cout << "\nSpearman rank correlation, speedup vs instruction "
                 "reduction: "
              << core::fmt(rho_red, 2) << "\n"
              << "Spearman rank correlation (non-crypto), speedup vs L1 "
                 "hit rate: "
              << core::fmt(rho_hit, 2) << "\n";

    std::cout << "\nPaper anchors (Section 5.2): speedup correlates with "
                 "VRE — low-precision kernels\nencode more ops per "
                 "instruction — which the positive reduction "
                 "correlation\nconfirms across the suite. The locality "
                 "claim (low hit rates cap the gain)\nis a *within-"
                 "kernel* effect; across libraries it is confounded by "
                 "precision,\nso the controlled test lives in "
                 "ablate_working_set (3.5x -> 1.8x on one\nkernel as "
                 "its footprint grows).\n";

    const bool ok = rho_red > 0.3;
    std::cout << "Reduction correlation positive: " << (ok ? "yes" : "NO")
              << "\n";
    return ok ? 0 : 1;
}
