/**
 * @file
 * Table 7 reproduction: GPU/DSP kernel-launch overhead versus the total
 * Neon execution time of the nine libraries Chrome does not offload
 * (Section 8). Launch overheads are the paper's measured constants
 * (Adreno 640 OpenCL: 230 us; Hexagon 690 fastRPC: 20 us); Neon kernel
 * times come from the timing model at the paper's input scale.
 */

#include "bench_common.hh"

#include "swan/gpu.hh"

using namespace swan;

int
main()
{
    // The nine libraries of Table 2 that are not offloaded to the GPU.
    const std::vector<std::string> nine = {"LJ", "LP", "LW", "SK", "WA",
                                           "PF", "ZL", "BS", "OR"};
    core::Runner runner;
    const auto cfg = sim::primeConfig();
    gpu::OffloadParams params;

    double min_us = 1e30, max_us = 0, sum_us = 0;
    int count = 0;
    for (const auto *spec : bench::headlineKernels()) {
        bool in_nine = false;
        for (const auto &s : nine)
            in_nine = in_nine || spec->info.symbol == s;
        if (!in_nine)
            continue;
        auto w = spec->make(runner.options());
        auto kr = runner.run(*w, core::Impl::Neon, cfg);
        const double us = kr.sim.timeSec * 1e6;
        min_us = std::min(min_us, us);
        max_us = std::max(max_us, us);
        sum_us += us;
        ++count;
    }
    const double avg_us = sum_us / std::max(count, 1);

    core::banner(std::cout,
                 "Table 7: accelerator launch overhead vs Neon kernel "
                 "execution time");
    core::Table t({"Quantity", "Time (us)"});
    t.addRow({"Adreno 640 GPU kernel launch",
              core::fmt(params.gpuLaunchUs, 0)});
    t.addRow({"Hexagon 690 DSP kernel launch",
              core::fmt(params.dspLaunchUs, 0)});
    t.addRow({"Neon kernel execution, min", core::fmt(min_us, 1)});
    t.addRow({"Neon kernel execution, avg", core::fmt(avg_us, 1)});
    t.addRow({"Neon kernel execution, max", core::fmt(max_us, 1)});
    t.print(std::cout);

    std::cout << "\nGPU launch / avg Neon time = "
              << core::fmtX(params.gpuLaunchUs / avg_us)
              << "   DSP launch / avg Neon time = "
              << core::fmtPct(100.0 * params.dspLaunchUs / avg_us, 0)
              << "\nPaper anchors: GPU launch alone is ~1.9x the average "
                 "Neon kernel time; DSP launch is ~19% of it (paper "
                 "sizes; scaled inputs shrink Neon times — set "
                 "SWAN_FULL=1 for paper scale).\n";
    return 0;
}
