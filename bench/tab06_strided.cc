/**
 * @file
 * Table 6 reproduction: the strided-memory-access census — how many
 * kernels use stride-2/3/4 loads and stores (VLD2/3/4, VST2/3/4) and the
 * register interleave/de-interleave instructions (ZIP/UZP), and what
 * fraction of those kernels' instructions they are (Section 6.3).
 *
 * The per-kernel Neon traces come from the sweep engine: the same
 * (kernel, Neon, 128-bit, prime, default) points other benches and the
 * CLI use, so a warm sweep cache serves this census without
 * re-simulating anything.
 */

#include "bench_common.hh"

using namespace swan;
using trace::StrideKind;

int
main()
{
    Session session = Session::fromEnv();
    const Results results = bench::runExperiment(
        Experiment(session)
            .impl(core::Impl::Neon)
            .vecBits({128})
            .config("prime")
            .workingSet("default"),
        "tab06");

    struct Row
    {
        const char *label;
        StrideKind kind;
        int kernels = 0;
        std::vector<double> portions;
    };
    Row rows[] = {{"stride-2 LD (vld2)", StrideKind::Ld2, 0, {}},
                  {"stride-2 ST (vst2)", StrideKind::St2, 0, {}},
                  {"ZIP", StrideKind::Zip, 0, {}},
                  {"UZP", StrideKind::Uzp, 0, {}},
                  {"TRN", StrideKind::Trn, 0, {}},
                  {"stride-3 LD (vld3)", StrideKind::Ld3, 0, {}},
                  {"stride-3 ST (vst3)", StrideKind::St3, 0, {}},
                  {"stride-4 LD (vld4)", StrideKind::Ld4, 0, {}},
                  {"stride-4 ST (vst4)", StrideKind::St4, 0, {}}};

    for (const auto &res : results) {
        const auto &mix = res.run.mix;
        for (auto &r : rows) {
            if (mix.count(r.kind) > 0) {
                ++r.kernels;
                r.portions.push_back(100.0 * mix.strideFraction(r.kind));
            }
        }
    }

    core::banner(std::cout,
                 "Table 6: strided access instructions — kernels using "
                 "them and average instruction share");
    core::Table t({"Instruction", "#Kernels", "Avg. portion"});
    for (const auto &r : rows) {
        t.addRow({r.label, std::to_string(r.kernels),
                  core::fmtPct(core::mean(r.portions), 1)});
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors (stride/instr: #kernels, portion): "
                 "2/LD: 1, 2.9%; 2/ST: 4, 2.3%; ZIP: 5, 6.2%; UZP: 7, "
                 "3.0%; 4/LD: 8, 5.8%; 4/ST: 8, 4.7%.\n";
    return 0;
}
