/**
 * @file
 * Figure 4 reproduction: Neon performance and energy improvement over
 * Scalar on the three big.LITTLE core types — Silver (in-order
 * Cortex-A55-like, one ASIMD unit, 1.8 GHz), Gold (A76, 2.4 GHz) and
 * Prime (A76, 2.8 GHz).
 *
 * The kernel x implementation x core grid runs through the sweep
 * engine: each (kernel, impl) trace is captured once and replayed
 * against all three cores in a single pass (simulateTraceMany), so the
 * bench costs one trace traversal per kernel-impl instead of three.
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    const char *cores[3] = {"silver", "gold", "prime"};

    Session session = Session::fromEnv();
    const Results results = bench::runExperiment(
        Experiment(session)
            .impls({core::Impl::Scalar, core::Impl::Neon})
            .configs({"silver", "gold", "prime"}),
        "fig04");

    core::banner(std::cout,
                 "Figure 4: Neon performance / energy improvement per "
                 "core type");
    core::Table t({"Lib", "Silver perf", "Gold perf", "Prime perf",
                   "Silver energy", "Gold energy", "Prime energy"});

    // Every Neon point paired with its Scalar baseline on the same
    // core; geomeans per (library, core) via the Results aggregation
    // helpers instead of hand-rolled accumulation loops.
    const auto rows = results.speedupVs(core::Impl::Scalar);
    const auto onCore = [&](const char *core_name) {
        std::vector<Speedup> v;
        for (const auto &r : rows)
            if (r.point->point.configName == core_name)
                v.push_back(r);
        return v;
    };
    const auto bySymbol = [](const Speedup &s) {
        return s.point->point.spec->info.symbol;
    };
    std::vector<std::pair<std::string, double>> perf[3], energy[3];
    for (int i = 0; i < 3; ++i) {
        const auto coreRows = onCore(cores[i]);
        perf[i] = geomeanBy(coreRows, bySymbol,
                            [](const Speedup &s) { return s.speedup(); });
        energy[i] = geomeanBy(coreRows, bySymbol, [](const Speedup &s) {
            return s.energyImprovement();
        });
    }
    for (const auto &sym : bench::librarySymbols()) {
        t.addRow({sym, core::fmtX(valueFor(perf[0], sym)),
                  core::fmtX(valueFor(perf[1], sym)),
                  core::fmtX(valueFor(perf[2], sym)),
                  core::fmtX(valueFor(energy[0], sym)),
                  core::fmtX(valueFor(energy[1], sym)),
                  core::fmtX(valueFor(energy[2], sym))});
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors: more ASIMD units (Gold/Prime vs "
                 "Silver) do not substantially raise Neon's relative "
                 "benefit for low-ILP kernels; unrolled XP benefits "
                 "most; Prime achieves the highest energy savings in "
                 "nearly all workloads.\n";
    return 0;
}
