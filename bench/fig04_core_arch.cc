/**
 * @file
 * Figure 4 reproduction: Neon performance and energy improvement over
 * Scalar on the three big.LITTLE core types — Silver (in-order
 * Cortex-A55-like, one ASIMD unit, 1.8 GHz), Gold (A76, 2.4 GHz) and
 * Prime (A76, 2.8 GHz).
 *
 * The kernel x implementation x core grid runs through the sweep
 * engine: each (kernel, impl) trace is captured once and replayed
 * against all three cores in a single pass (simulateTraceMany), so the
 * bench costs one trace traversal per kernel-impl instead of three.
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    const char *cores[3] = {"silver", "gold", "prime"};

    Session session = Session::fromEnv();
    const Results results = bench::runExperiment(
        Experiment(session)
            .impls({core::Impl::Scalar, core::Impl::Neon})
            .configs({"silver", "gold", "prime"}),
        "fig04");

    core::banner(std::cout,
                 "Figure 4: Neon performance / energy improvement per "
                 "core type");
    core::Table t({"Lib", "Silver perf", "Gold perf", "Prime perf",
                   "Silver energy", "Gold energy", "Prime energy"});

    for (const auto &sym : bench::librarySymbols()) {
        std::vector<double> perf[3], energy[3];
        for (const auto *spec_ : bench::headlineKernels()) {
            if (spec_->info.symbol != sym)
                continue;
            const auto qn = spec_->info.qualifiedName();
            for (int i = 0; i < 3; ++i) {
                const auto *s =
                    results.find(qn, core::Impl::Scalar, 128, cores[i]);
                const auto *n =
                    results.find(qn, core::Impl::Neon, 128, cores[i]);
                if (!s || !n)
                    continue;
                core::Comparison c;
                c.info = spec_->info;
                c.scalar = s->run;
                c.neon = n->run;
                perf[i].push_back(c.neonSpeedup());
                energy[i].push_back(c.neonEnergyImprovement());
            }
        }
        t.addRow({sym, core::fmtX(core::geomean(perf[0])),
                  core::fmtX(core::geomean(perf[1])),
                  core::fmtX(core::geomean(perf[2])),
                  core::fmtX(core::geomean(energy[0])),
                  core::fmtX(core::geomean(energy[1])),
                  core::fmtX(core::geomean(energy[2]))});
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors: more ASIMD units (Gold/Prime vs "
                 "Silver) do not substantially raise Neon's relative "
                 "benefit for low-ILP kernels; unrolled XP benefits "
                 "most; Prime achieves the highest energy savings in "
                 "nearly all workloads.\n";
    return 0;
}
