/**
 * @file
 * Figure 4 reproduction: Neon performance and energy improvement over
 * Scalar on the three big.LITTLE core types — Silver (in-order
 * Cortex-A55-like, one ASIMD unit, 1.8 GHz), Gold (A76, 2.4 GHz) and
 * Prime (A76, 2.8 GHz).
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    core::Runner runner;
    const sim::CoreConfig cfgs[3] = {sim::silverConfig(),
                                     sim::goldConfig(),
                                     sim::primeConfig()};

    core::banner(std::cout,
                 "Figure 4: Neon performance / energy improvement per "
                 "core type");
    core::Table t({"Lib", "Silver perf", "Gold perf", "Prime perf",
                   "Silver energy", "Gold energy", "Prime energy"});

    for (const auto &sym : bench::librarySymbols()) {
        std::vector<double> perf[3], energy[3];
        for (const auto *spec : bench::headlineKernels()) {
            if (spec->info.symbol != sym)
                continue;
            for (int i = 0; i < 3; ++i) {
                auto c = runner.compareScalarNeon(*spec, cfgs[i]);
                perf[i].push_back(c.neonSpeedup());
                energy[i].push_back(c.neonEnergyImprovement());
            }
        }
        t.addRow({sym, core::fmtX(core::geomean(perf[0])),
                  core::fmtX(core::geomean(perf[1])),
                  core::fmtX(core::geomean(perf[2])),
                  core::fmtX(core::geomean(energy[0])),
                  core::fmtX(core::geomean(energy[1])),
                  core::fmtX(core::geomean(energy[2]))});
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors: more ASIMD units (Gold/Prime vs "
                 "Silver) do not substantially raise Neon's relative "
                 "benefit for low-ILP kernels; unrolled XP benefits "
                 "most; Prime achieves the highest energy savings in "
                 "nearly all workloads.\n";
    return 0;
}
