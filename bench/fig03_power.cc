/**
 * @file
 * Figure 3 reproduction: total chip power (including DRAM) of the
 * Scalar, Auto and Neon implementations per library on the Prime core.
 * Vector processing raises the main-memory access *rate*, which raises
 * power (Section 5.3), most visibly in the image/graphics libraries.
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    core::Runner runner;
    const auto cfg = sim::primeConfig();

    std::vector<core::Comparison> comparisons;
    for (const auto *spec : bench::headlineKernels())
        comparisons.push_back(runner.compare(*spec, cfg));

    core::banner(std::cout,
                 "Figure 3: total chip power (W), including DRAM");
    core::Table t({"Lib", "Scalar (W)", "Auto (W)", "Neon (W)",
                   "Neon DRAM acc/kcycle"});
    for (const auto &s : core::summarizeByLibrary(comparisons)) {
        double dram_rate = 0;
        int n = 0;
        for (const auto &c : comparisons) {
            if (c.info.symbol == s.symbol) {
                dram_rate += c.neon.sim.dramAccessPerKCycle;
                ++n;
            }
        }
        t.addRow({s.symbol, core::fmt(s.scalarPowerW, 2),
                  core::fmt(s.autoPowerW, 2), core::fmt(s.neonPowerW, 2),
                  core::fmt(n ? dram_rate / n : 0, 2)});
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors: Neon power exceeds Scalar power; the "
                 "libraries with the highest LLC miss / DRAM access "
                 "rates (image processing and graphics) consume the "
                 "most.\n";
    return 0;
}
