/**
 * @file
 * Extension study (Section 5.2, Example 1): uncountable scan loops.
 * Eight Swan kernels fail auto-vectorization because their loops break
 * on a data-dependent condition. Hand-written Neon vectorizes strlen by
 * over-reading full vectors (legal only with padding or page guards)
 * and exporting lanes to locate the terminator; SVE's first-faulting
 * loads vectorize the loop safely and locate matches in one predicate
 * op. This bench scans a batch of NUL-terminated strings both ways on
 * the simulated Prime core.
 */

#include "bench_common.hh"

#include "swan/trace.hh"
#include "swan/workloads.hh"

using namespace swan;
using workloads::ext::ScanImpl;

int
main()
{
    core::Runner runner;
    const auto cfg = sim::primeConfig();

    auto neon = workloads::ext::makeStrlenScan(runner.options(),
                                               ScanImpl::NeonOverread);
    auto sve = workloads::ext::makeStrlenScan(runner.options(),
                                              ScanImpl::SveFirstFault);

    auto s = runner.run(*neon, core::Impl::Scalar, cfg);
    auto n = runner.run(*neon, core::Impl::Neon, cfg);
    const bool ok1 = neon->verify();
    sve->runScalar();
    auto f = runner.run(*sve, core::Impl::Neon, cfg);
    const bool ok2 = sve->verify();

    core::banner(std::cout,
                 "Extension: uncountable loops, Neon over-read vs SVE "
                 "first-faulting loads (Section 5.2)");
    core::Table t({"Impl", "Speedup vs Scalar", "Instr reduction",
                   "Lane moves", "Safety"});
    t.addRow({"Neon over-read + lane export",
              core::fmtX(double(s.sim.cycles) / double(n.sim.cycles)),
              core::fmtX(double(s.mix.total()) / double(n.mix.total())),
              std::to_string(n.mix.count(trace::InstrClass::VMisc)),
              "needs padding/page guard"});
    t.addRow({"SVE LDFF1 + predicate locate",
              core::fmtX(double(s.sim.cycles) / double(f.sim.cycles)),
              core::fmtX(double(s.mix.total()) / double(f.mix.total())),
              std::to_string(f.mix.count(trace::InstrClass::VMisc)),
              "none (faults masked)"});
    t.print(std::cout);

    std::cout
        << "\nPaper anchor (Section 5.2): uncountable loops block "
           "auto-vectorization in 8\nkernels; Neon's workaround needs "
           "reduction + lane-export locate and an\nover-read guarantee. "
           "First-faulting loads remove both obstacles, which is\nwhat "
           "lets SVE compilers vectorize while-loops automatically.\n"
        << "Outputs verified: " << (ok1 && ok2 ? "yes" : "NO") << "\n";
    return ok1 && ok2 ? 0 : 1;
}
