/**
 * @file
 * Observability overhead smoke: the swan::obs contract is that
 * telemetry costs one relaxed atomic load per span site when no
 * collector is attached, and call-granularity recording (two clock
 * reads + one slot write per phase span, never a per-instruction
 * cost) when one is. This bench holds the fused replay engine —
 * the path the sweeps spend their wall-clock in — to that contract:
 * it times simulateTraceMany over the perf_smoke capture mix with
 * metrics off and again with a live Collector draining to the real
 * ReportSink + ChromeTraceSink, checks the SimResults are identical,
 * and writes BENCH_sweep_obs.json (argv[1] overrides the path; the
 * sink outputs land next to it as <stem>.report.json /
 * <stem>.trace.jsonl).
 *
 * The gate: metrics-on wall time <= 1.02x metrics-off. Like the
 * perf_smoke gates it is report-only by default and becomes a hard
 * failure in an optimized build run with SWAN_PERF_ENFORCE=1 (which
 * bench/run_all.sh sets). Result divergence is always a hard failure.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.hh"
#include "swan/obs.hh"
#include "swan/trace.hh"

using namespace swan;

namespace
{

double
secondsOf(const std::function<void()> &fn, int reps)
{
    // Best-of-N wall time: robust against scheduler noise.
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

bool
sameSim(const sim::SimResult &a, const sim::SimResult &b)
{
    return a.instrs == b.instrs && a.cycles == b.cycles &&
           a.dramReads == b.dramReads && a.dramWrites == b.dramWrites &&
           a.l1Accesses == b.l1Accesses && a.byClass == b.byClass;
}

std::string
fmtJson(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string jsonPath =
        argc > 1 ? argv[1] : "BENCH_sweep_obs.json";
    std::string stem = jsonPath;
    if (stem.size() > 5 && stem.rfind(".json") == stem.size() - 5)
        stem.resize(stem.size() - 5);

    // The perf_smoke capture mix (compression + memcpy, Neon and
    // Scalar), tiled to a DRAM-resident size so the timed region is
    // the real streaming-replay regime. Smaller default than
    // perf_smoke: an overhead *ratio* converges faster than absolute
    // throughput (SWAN_OBS_SMOKE_MB overrides).
    std::vector<trace::Instr> instrs;
    for (const char *name : {"ZL/adler32", "ZL/crc32", "OR/memcpy"}) {
        const auto *spec = core::Registry::instance().find(name);
        if (!spec) {
            std::cerr << "obs_overhead: unknown kernel " << name << "\n";
            return 1;
        }
        for (auto impl : {core::Impl::Scalar, core::Impl::Neon}) {
            auto w = spec->make(core::Options::fromEnv());
            auto t = core::Runner::capture(*w, impl, 128);
            instrs.insert(instrs.end(), t.begin(), t.end());
        }
    }
    size_t targetMb = 96;
    if (const char *v = std::getenv("SWAN_OBS_SMOKE_MB"))
        if (std::atoi(v) > 0)
            targetMb = size_t(std::atoi(v));
    const size_t targetInstrs =
        targetMb * (size_t(1) << 20) / sizeof(trace::Instr);
    const std::vector<trace::Instr> seed = instrs;
    instrs.reserve(std::max(targetInstrs, seed.size()));
    while (instrs.size() + seed.size() <= targetInstrs)
        instrs.insert(instrs.end(), seed.begin(), seed.end());
    const size_t n = instrs.size();
    const auto packed = trace::PackedTrace::pack(instrs);

    const std::vector<sim::CoreConfig> cfgs = {
        sim::primeConfig(), sim::goldConfig(), sim::silverConfig()};
    const int reps = 3;
    // Each rep feeds warmup+measure = 2 passes over every config.
    const double passInstrs = 2.0 * double(n) * double(cfgs.size());

    // Metrics off: the span sites must compile down to one relaxed
    // load + untaken branch each.
    const auto refOff = sim::simulateTraceMany(packed, cfgs, 1);
    const double tOff = secondsOf(
        [&] { sim::simulateTraceMany(packed, cfgs, 1); }, reps);

    // Metrics on: a live registry with the two shipped sinks. The
    // collector stays active across every timed rep so each fused
    // traversal records its Replay span.
    obs::Collector collector;
    if (!collector.start()) {
        std::cerr << "obs_overhead: telemetry registry unavailable\n";
        return 1;
    }
    const auto refOn = sim::simulateTraceMany(packed, cfgs, 1);
    const double tOn = secondsOf(
        [&] { sim::simulateTraceMany(packed, cfgs, 1); }, reps);
    collector.addSink(
        std::make_unique<obs::ReportSink>(stem + ".report.json"));
    collector.addSink(
        std::make_unique<obs::ChromeTraceSink>(stem + ".trace.jsonl"));
    std::string merr;
    if (!collector.finish(sweep::CacheStats{}, &merr)) {
        std::cerr << "obs_overhead: " << merr << "\n";
        return 1;
    }

    for (size_t i = 0; i < cfgs.size(); ++i) {
        if (!sameSim(refOff[i], refOn[i])) {
            std::cerr << "obs_overhead: metrics-on replay diverged "
                         "from metrics-off\n";
            return 1;
        }
    }

    const double ipsOff = passInstrs / tOff;
    const double ipsOn = passInstrs / tOn;
    const double ratio = tOn / tOff;

    core::banner(std::cout, "Observability overhead smoke");
    core::Table t({"leg", "Minstr/s", "vs metrics off"});
    t.addRow({"metrics off", core::fmt(ipsOff / 1e6, 1),
              core::fmtX(1.0, 2)});
    t.addRow({"metrics on", core::fmt(ipsOn / 1e6, 1),
              core::fmtX(ipsOff / ipsOn, 2)});
    t.print(std::cout);
    std::cout << "trace: " << n << " instrs x " << cfgs.size()
              << " configs; metrics-on/off wall ratio "
              << core::fmt(ratio, 4) << " (gate <= 1.02)\n";

    {
        std::ofstream os(jsonPath, std::ios::trunc);
        os << "{\n"
           << "  \"bench\": \"sweep_obs\",\n"
           << "  \"n_instrs\": " << n << ",\n"
           << "  \"n_configs\": " << cfgs.size() << ",\n"
           << "  \"metrics_off_instrs_per_sec\": " << fmtJson(ipsOff)
           << ",\n"
           << "  \"metrics_on_instrs_per_sec\": " << fmtJson(ipsOn)
           << ",\n"
           << "  \"overhead_ratio\": " << fmtJson(ratio) << ",\n"
           << "  \"overhead_gate\": 1.02,\n"
           << "  \"results_identical\": true\n"
           << "}\n";
        if (!os) {
            std::cerr << "obs_overhead: cannot write " << jsonPath
                      << "\n";
            return 1;
        }
        std::cout << "wrote " << jsonPath << "\n";
    }

    // Enforced only in an optimized build when the caller opts in
    // (bench/run_all.sh does); CI publishes the JSON report-only.
    constexpr double kOverheadGate = 1.02;
#ifdef NDEBUG
    const char *enf = std::getenv("SWAN_PERF_ENFORCE");
    const bool gateEnforced = enf && enf[0] == '1';
#else
    const bool gateEnforced = false;
#endif
    if (ratio > kOverheadGate) {
        std::cerr << "obs_overhead: metrics-on overhead "
                  << core::fmt((ratio - 1.0) * 100.0, 2)
                  << "% exceeds the " << (kOverheadGate - 1.0) * 100.0
                  << "% gate"
                  << (gateEnforced ? "" : " (report-only)") << "\n";
        if (gateEnforced)
            return 1;
    }
    return 0;
}
