/**
 * @file
 * Extension study (Section 9): porting Swan kernels to WebAssembly
 * SIMD128. The paper plans WASM-SIMD versions of the suite because the
 * V8 engine executes a large share of mobile browser time; this bench
 * quantifies what each missing Neon feature costs when four
 * representative kernels are ported to the proposal's instruction set:
 *
 *  - rgb_to_y: VLD3 de-interleave -> 3 loads + 6 shuffles per 16 px,
 *    VMLAL -> extmul + add;
 *  - adler32: VPADAL/ADDV reductions -> extadd+add and shuffle folds;
 *  - fir_filter: FMLA -> mul + add, until relaxed-simd restores it;
 *  - sha256: crypto extension -> scalar rounds.
 *
 * Cost model assumes an ideal 1:1 wasm-to-ASIMD JIT (see
 * simd/vec_wasm.hh), so the gaps below are lower bounds.
 */

#include "bench_common.hh"

#include "swan/trace.hh"
#include "swan/workloads.hh"

using namespace swan;
using workloads::ext::WasmIsa;

namespace
{

struct Port
{
    const char *name;
    std::unique_ptr<core::Workload> (*make)(const core::Options &,
                                            WasmIsa);
    const char *gap;
};

const Port kPorts[] = {
    {"rgb_to_y", &workloads::ext::makeWasmRgbToY,
     "no VLD3 / no VMLAL"},
    {"adler32", &workloads::ext::makeWasmAdler32,
     "no VPADAL / no ADDV"},
    {"fir_filter", &workloads::ext::makeWasmFirFilter,
     "no FMA (base proposal)"},
    {"sha256", &workloads::ext::makeWasmSha256,
     "no crypto extension"},
};

const WasmIsa kIsas[] = {WasmIsa::NeonNative, WasmIsa::Simd128,
                         WasmIsa::Relaxed};
const char *kIsaNames[] = {"Neon", "WASM SIMD128", "WASM relaxed"};

} // namespace

int
main()
{
    core::Runner runner;
    const auto cfg = sim::primeConfig();

    core::banner(std::cout,
                 "Extension: WebAssembly SIMD ports (Section 9 future "
                 "work)");

    core::Table t({"Kernel", "ISA", "Speedup vs Scalar", "Instr reduction",
                   "V-Misc / V-instr", "Missing feature"});

    bool all_ok = true;
    for (const auto &port : kPorts) {
        for (size_t i = 0; i < 3; ++i) {
            auto w = port.make(runner.options(), kIsas[i]);
            auto s = runner.run(*w, core::Impl::Scalar, cfg);
            auto n = runner.run(*w, core::Impl::Neon, cfg);
            all_ok = all_ok && w->verify();
            const double vecShare =
                n.mix.vectorInstrs() > 0
                    ? double(n.mix.count(trace::InstrClass::VMisc)) /
                          double(n.mix.vectorInstrs())
                    : 0.0;
            t.addRow({i == 0 ? port.name : "",
                      kIsaNames[i],
                      core::fmtX(double(s.sim.cycles) /
                                 double(n.sim.cycles)),
                      core::fmtX(double(s.mix.total()) /
                                 double(n.mix.total())),
                      core::fmtPct(100.0 * vecShare),
                      i == 0 ? "-" : port.gap});
        }
    }
    t.print(std::cout);

    std::cout
        << "\nPaper anchors (gap measurements this study remedies or "
           "recreates):\n"
           "  - Section 6.3: structured loads beyond what shuffles "
           "compose cheaply;\n"
           "  - Section 6.1: reductions need across-vector sums;\n"
           "  - Section 6.5: portable APIs without fused ops inflate "
           "the budget\n"
           "    (relaxed-simd's f32x4.relaxed_madd restores FMLA "
           "parity);\n"
           "  - Section 5.1: ZL/BS's standout speedup is the crypto "
           "extension, which\n"
           "    wasm lacks entirely (the port falls back to scalar "
           "rounds).\n"
        << "Outputs verified: " << (all_ok ? "yes" : "NO") << "\n";
    return all_ok ? 0 : 1;
}
