/**
 * @file
 * Replay-pipeline perf smoke: measures simulated instructions per
 * second through the trace replay paths the sweeps spend their
 * wall-clock in —
 *
 *   aos_sink    per-instruction virtual Sink dispatch over the 64-byte
 *               AoS buffer (the pre-packed pipeline),
 *   aos_block   block delivery over the AoS buffer (devirtualized),
 *   packed      block-decoded replay of the PackedTrace encoding,
 *   multi_nx    N separate packed replays, one per core config,
 *   multi_1pass single-pass multi-config replay (simulateTraceMany),
 *
 * plus the packed encoding's bytes/instr against the AoS baseline.
 * Emits BENCH_trace_replay.json (argv[1] overrides the path) so the
 * perf trajectory is tracked run over run, and fails if the packed
 * pipeline's results drift from the AoS path (byte-identity smoke).
 */

#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>

#include "bench_common.hh"
#include "swan/trace.hh"

using namespace swan;

namespace
{

double
secondsOf(const std::function<void()> &fn, int reps)
{
    // Best-of-N wall time: robust against scheduler noise.
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

bool
sameSim(const sim::SimResult &a, const sim::SimResult &b)
{
    return a.instrs == b.instrs && a.cycles == b.cycles &&
           a.dramReads == b.dramReads && a.dramWrites == b.dramWrites &&
           a.l1Accesses == b.l1Accesses && a.byClass == b.byClass;
}

std::string
fmtJson(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string jsonPath =
        argc > 1 ? argv[1] : "BENCH_trace_replay.json";

    // A realistic mixed trace: compression + memcpy kernels, Neon and
    // Scalar, concatenated — memory ops, vector ops and long
    // dependency chains, like the sweeps replay all day. The capture
    // is tiled until the AoS buffer exceeds any plausible LLC
    // (replay-speed claims are about paper-scale traces that stream
    // from DRAM, not toy traces that sit in cache; SWAN_PERF_SMOKE_MB
    // overrides the target size).
    std::vector<trace::Instr> instrs;
    for (const char *name : {"ZL/adler32", "ZL/crc32", "OR/memcpy"}) {
        const auto *spec = core::Registry::instance().find(name);
        if (!spec) {
            std::cerr << "perf_smoke: unknown kernel " << name << "\n";
            return 1;
        }
        for (auto impl : {core::Impl::Scalar, core::Impl::Neon}) {
            auto w = spec->make(core::Options::fromEnv());
            auto t = core::Runner::capture(*w, impl, 128);
            instrs.insert(instrs.end(), t.begin(), t.end());
        }
    }
    size_t targetMb = 192;
    if (const char *v = std::getenv("SWAN_PERF_SMOKE_MB"))
        if (std::atoi(v) > 0)
            targetMb = size_t(std::atoi(v));
    const size_t targetInstrs =
        targetMb * (size_t(1) << 20) / sizeof(trace::Instr);
    // Tile from a stable copy — self-inserting a vector range is UB
    // once the insert reallocates.
    const std::vector<trace::Instr> seed = instrs;
    instrs.reserve(std::max(targetInstrs, seed.size()));
    while (instrs.size() + seed.size() <= targetInstrs)
        instrs.insert(instrs.end(), seed.begin(), seed.end());
    const size_t n = instrs.size();
    const auto packed = trace::PackedTrace::pack(instrs);

    // Byte-identity smoke: the packed pipeline must reproduce the AoS
    // path exactly, single- and multi-config.
    const auto cfg = sim::primeConfig();
    const std::vector<sim::CoreConfig> cfgs = {
        sim::primeConfig(), sim::goldConfig(), sim::silverConfig()};
    const auto refAos = sim::simulateTrace(instrs, cfg, 1);
    const auto refPacked = sim::simulateTrace(packed, cfg, 1);
    const auto refMany = sim::simulateTraceMany(packed, cfgs, 1);
    bool identical = sameSim(refAos, refPacked);
    for (size_t i = 0; i < cfgs.size(); ++i)
        identical = identical &&
                    sameSim(sim::simulateTrace(instrs, cfgs[i], 1),
                            refMany[i]);
    if (!identical) {
        std::cerr << "perf_smoke: packed replay diverged from AoS "
                     "replay\n";
        return 1;
    }

    const int reps = 3;
    // Each simulateTrace run feeds warmup+measure = 2 passes.
    const double passInstrs = 2.0 * double(n);

    const double tSink = secondsOf(
        [&] {
            sim::CoreModel model(cfg);
            trace::Sink *sink = &model;
            for (const auto &i : instrs)
                sink->onInstr(i);
            model.beginMeasurement();
            for (const auto &i : instrs)
                sink->onInstr(i);
            model.finish();
        },
        reps);
    const double tBlock = secondsOf(
        [&] { sim::simulateTrace(instrs, cfg, 1); }, reps);
    const double tPacked = secondsOf(
        [&] { sim::simulateTrace(packed, cfg, 1); }, reps);
    const double tManyNx = secondsOf(
        [&] {
            for (const auto &c : cfgs)
                sim::simulateTrace(packed, c, 1);
        },
        reps);
    const double tMany1 = secondsOf(
        [&] { sim::simulateTraceMany(packed, cfgs, 1); }, reps);

    const double ipsSink = passInstrs / tSink;
    const double ipsBlock = passInstrs / tBlock;
    const double ipsPacked = passInstrs / tPacked;
    const double ipsManyNx = passInstrs * double(cfgs.size()) / tManyNx;
    const double ipsMany1 = passInstrs * double(cfgs.size()) / tMany1;

    const double aosBytes = double(trace::PackedTrace::aosBytes(n));
    const double packedBytes = double(packed.byteSize());
    const double memReduction = aosBytes / packedBytes;

    core::banner(std::cout, "Trace replay perf smoke");
    core::Table t({"path", "Minstr/s", "vs aos_sink"});
    const auto row = [&](const char *name, double ips) {
        t.addRow({name, core::fmt(ips / 1e6, 1),
                  core::fmtX(ips / ipsSink, 2)});
    };
    row("aos_sink (per-instr virtual)", ipsSink);
    row("aos_block", ipsBlock);
    row("packed", ipsPacked);
    row("multi_nx (3 cores, N passes)", ipsManyNx);
    row("multi_1pass (3 cores)", ipsMany1);
    t.print(std::cout);
    std::cout << "trace: " << n << " instrs; " << aosBytes / n
              << " B/instr AoS vs " << core::fmt(packedBytes / n, 2)
              << " B/instr packed (" << core::fmtX(memReduction, 1)
              << " smaller)\n"
              << "headline: an N-config sweep point costs one packed "
                 "traversal (multi_1pass) instead of N legacy "
                 "per-instr replays — "
              << core::fmtX(ipsMany1 / ipsSink, 2)
              << " end-to-end at N=3, "
              << core::fmtX(ipsMany1 / ipsManyNx, 2)
              << " vs N separate packed passes, at "
              << core::fmtX(memReduction, 1) << " less trace memory\n";

    std::ofstream os(jsonPath, std::ios::trunc);
    os << "{\n"
       << "  \"bench\": \"trace_replay\",\n"
       << "  \"n_instrs\": " << n << ",\n"
       << "  \"aos_bytes_per_instr\": " << fmtJson(aosBytes / n) << ",\n"
       << "  \"packed_bytes_per_instr\": " << fmtJson(packedBytes / n)
       << ",\n"
       << "  \"mem_reduction_x\": " << fmtJson(memReduction) << ",\n"
       << "  \"aos_sink_instrs_per_sec\": " << fmtJson(ipsSink) << ",\n"
       << "  \"aos_block_instrs_per_sec\": " << fmtJson(ipsBlock)
       << ",\n"
       << "  \"packed_instrs_per_sec\": " << fmtJson(ipsPacked) << ",\n"
       << "  \"multi_nx_instrs_per_sec\": " << fmtJson(ipsManyNx)
       << ",\n"
       << "  \"multi_1pass_instrs_per_sec\": " << fmtJson(ipsMany1)
       << ",\n"
       << "  \"speedup_block_vs_sink\": " << fmtJson(ipsBlock / ipsSink)
       << ",\n"
       << "  \"speedup_packed_vs_aos_sink\": "
       << fmtJson(ipsPacked / ipsSink) << ",\n"
       << "  \"speedup_1pass_vs_nx\": " << fmtJson(ipsMany1 / ipsManyNx)
       << ",\n"
       << "  \"speedup_pipeline_vs_legacy\": "
       << fmtJson(ipsMany1 / ipsSink) << ",\n"
       << "  \"byte_identical\": true\n"
       << "}\n";
    if (!os) {
        std::cerr << "perf_smoke: cannot write " << jsonPath << "\n";
        return 1;
    }
    std::cout << "wrote " << jsonPath << "\n";

    // Report-only on speed (machines vary), but the >= 2x memory
    // reduction is a hard acceptance bar.
    if (memReduction < 2.0) {
        std::cerr << "perf_smoke: packed encoding only "
                  << memReduction << "x smaller (< 2x)\n";
        return 1;
    }
    return 0;
}
