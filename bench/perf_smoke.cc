/**
 * @file
 * Replay-pipeline perf smoke: measures simulated instructions per
 * second through the trace replay paths the sweeps spend their
 * wall-clock in, and writes two machine-readable result files so the
 * perf trajectory is tracked run over run.
 *
 * BENCH_trace_replay.json (argv[1] overrides the path) — the packed
 * *encoding* pipeline, as shipped by the packed-trace PR:
 *
 *   aos_sink    per-instruction virtual Sink dispatch over the 64-byte
 *               AoS buffer (the pre-packed pipeline),
 *   aos_block   block delivery over the AoS buffer (devirtualized),
 *   packed      block-decoded replay of the PackedTrace encoding,
 *   multi_nx    N separate packed replays, one per core config,
 *   multi_1pass single-pass multi-config replay (simulateTraceMany,
 *               now the fused engine),
 *
 * plus the packed encoding's bytes/instr against the AoS baseline
 * (>= 2x memory reduction is a hard failure).
 *
 * BENCH_sim_replay.json (argv[2] overrides the path) — the fused
 * *replay engine*: AoS-sink vs block-delivery vs fused decode->step,
 * at 1 config and at N=3 configs, on two corpora: the kernel-capture
 * mix above, and a synthetic *saturation* corpus that holds the ROB at
 * capacity behind DRAM-missing loads while ready bursts oversubscribe
 * the vector FU pool (full per-cycle issue tables — the regime where
 * the fused engine's persistent per-FU issue frontiers matter most).
 * The fused engine must beat block-delivery replay by >= 1.3x at N=3
 * on the capture mix and >= 1.2x on the saturation corpus. The gates
 * are report-only by default (CI machines are noisy); an optimized
 * build run with SWAN_PERF_ENFORCE=1 — which bench/run_all.sh sets —
 * turns them into hard failures. Result divergence between any two
 * paths is always a hard failure.
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.hh"
#include "swan/internal/simd_dispatch.hh"
#include "swan/trace.hh"

using namespace swan;

namespace
{

double
secondsOf(const std::function<void()> &fn, int reps)
{
    // Best-of-N wall time: robust against scheduler noise.
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

bool
sameSim(const sim::SimResult &a, const sim::SimResult &b)
{
    return a.instrs == b.instrs && a.cycles == b.cycles &&
           a.dramReads == b.dramReads && a.dramWrites == b.dramWrites &&
           a.l1Accesses == b.l1Accesses && a.byClass == b.byClass;
}

std::string
fmtJson(double v)
{
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
}

/**
 * The incumbent block-delivery pipeline: decode the packed trace into
 * 256-instruction Instr staging blocks and deliver each block to every
 * model through the Sink interface — one decode per pass, but a
 * staging-buffer round-trip and a per-model Instr walk per block.
 */
void
replayBlockDelivery(const trace::PackedTrace &packed,
                    const std::vector<sim::CoreConfig> &cfgs,
                    std::vector<sim::SimResult> *out)
{
    std::vector<std::unique_ptr<sim::CoreModel>> models;
    models.reserve(cfgs.size());
    for (const auto &c : cfgs)
        models.push_back(std::make_unique<sim::CoreModel>(c));
    const auto pass = [&] {
        trace::Instr block[trace::PackedTrace::kBlockInstrs];
        trace::PackedTrace::Cursor cur(packed);
        size_t n;
        while ((n = cur.next(block, trace::PackedTrace::kBlockInstrs)))
            for (auto &m : models)
                m->onBlock(block, n);
    };
    pass();
    for (auto &m : models)
        m->beginMeasurement();
    pass();
    if (out) {
        out->clear();
        for (auto &m : models)
            out->push_back(m->finish());
    } else {
        for (auto &m : models)
            m->finish();
    }
}

/**
 * Synthetic saturation corpus (full-ROB / full-FU regime). Every 32nd
 * instruction is a vector load striding a fresh page (misses every
 * cache level, streams from DRAM); the 31 vector ops behind it all
 * depend on that outstanding miss, so the window fills while the load
 * is in flight and, the cycle it completes, a 31-op ready burst slams
 * the (2-3 unit) vector pool — per-cycle issue tables run full for
 * long stretches. This is the regime where the legacy issue-slot scan
 * cost O(ROB) per instruction and the fused engine's pass-persistent
 * per-FU frontiers pay off; the capture-mix corpus above barely
 * touches it.
 */
std::vector<trace::Instr>
buildSaturationTrace(size_t n)
{
    std::vector<trace::Instr> t;
    t.reserve(n);
    uint64_t id = 0;
    uint64_t lastLoad = 0;
    constexpr uint64_t kBase = 0x4000'0000;
    while (t.size() < n) {
        trace::Instr ld;
        ld.id = ++id;
        ld.cls = trace::InstrClass::VLoad;
        ld.fu = trace::Fu::Load;
        ld.latency = 4;
        ld.addr = kBase + uint64_t(t.size()) * 4096;
        ld.size = 16;
        ld.vecBytes = 16;
        ld.lanes = 4;
        ld.activeLanes = 4;
        ld.dep0 = lastLoad;
        lastLoad = ld.id;
        t.push_back(ld);
        for (int k = 0; k < 31 && t.size() < n; ++k) {
            trace::Instr v;
            v.id = ++id;
            v.cls = trace::InstrClass::VInt;
            v.fu = trace::Fu::VUnit;
            v.latency = 2;
            v.vecBytes = 16;
            v.lanes = 4;
            v.activeLanes = 4;
            v.dep0 = lastLoad;
            t.push_back(v);
        }
    }
    return t;
}

/** Per-instruction virtual Sink dispatch over the AoS buffer, one
 *  full replay per config (the pre-packed-trace serving path). */
void
replayAosSink(const std::vector<trace::Instr> &instrs,
              const std::vector<sim::CoreConfig> &cfgs)
{
    for (const auto &c : cfgs) {
        sim::CoreModel model(c);
        trace::Sink *sink = &model;
        for (const auto &i : instrs)
            sink->onInstr(i);
        model.beginMeasurement();
        for (const auto &i : instrs)
            sink->onInstr(i);
        model.finish();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string traceJsonPath =
        argc > 1 ? argv[1] : "BENCH_trace_replay.json";
    const std::string simJsonPath =
        argc > 2 ? argv[2] : "BENCH_sim_replay.json";

    // A realistic mixed trace: compression + memcpy kernels, Neon and
    // Scalar, concatenated — memory ops, vector ops and long
    // dependency chains, like the sweeps replay all day. The capture
    // is tiled until the AoS buffer exceeds any plausible LLC
    // (replay-speed claims are about paper-scale traces that stream
    // from DRAM, not toy traces that sit in cache; SWAN_PERF_SMOKE_MB
    // overrides the target size).
    std::vector<trace::Instr> instrs;
    for (const char *name : {"ZL/adler32", "ZL/crc32", "OR/memcpy"}) {
        const auto *spec = core::Registry::instance().find(name);
        if (!spec) {
            std::cerr << "perf_smoke: unknown kernel " << name << "\n";
            return 1;
        }
        for (auto impl : {core::Impl::Scalar, core::Impl::Neon}) {
            auto w = spec->make(core::Options::fromEnv());
            auto t = core::Runner::capture(*w, impl, 128);
            instrs.insert(instrs.end(), t.begin(), t.end());
        }
    }
    size_t targetMb = 192;
    if (const char *v = std::getenv("SWAN_PERF_SMOKE_MB"))
        if (std::atoi(v) > 0)
            targetMb = size_t(std::atoi(v));
    const size_t targetInstrs =
        targetMb * (size_t(1) << 20) / sizeof(trace::Instr);
    // Tile from a stable copy — self-inserting a vector range is UB
    // once the insert reallocates.
    const std::vector<trace::Instr> seed = instrs;
    instrs.reserve(std::max(targetInstrs, seed.size()));
    while (instrs.size() + seed.size() <= targetInstrs)
        instrs.insert(instrs.end(), seed.begin(), seed.end());
    const size_t n = instrs.size();
    const auto packed = trace::PackedTrace::pack(instrs);

    // Byte-identity smoke: fused replay, block delivery and the AoS
    // paths must agree exactly, single- and multi-config.
    const auto cfg = sim::primeConfig();
    const std::vector<sim::CoreConfig> cfgs = {
        sim::primeConfig(), sim::goldConfig(), sim::silverConfig()};
    // Half a lane block: the vectorized config-lane engine's headline
    // width (the 1.5x-over-block gate below is evaluated here). The
    // fourth lane is the paper's Figure-5a wide-vector core — prime's
    // pipeline with 512-bit registers — keeping all four lanes in the
    // same step-cost class so the gate measures how decode+predigest
    // amortization scales with lane count; heavyweight saturated
    // cores are gated separately on the saturation corpus below.
    const std::vector<sim::CoreConfig> cfgs4 = {
        sim::primeConfig(), sim::goldConfig(), sim::silverConfig(),
        sim::widerVectorConfig(512)};
    const auto refAos = sim::simulateTrace(instrs, cfg, 1);
    const auto refPacked = sim::simulateTrace(packed, cfg, 1);
    const auto refMany = sim::simulateTraceMany(packed, cfgs, 1);
    std::vector<sim::SimResult> refBlock;
    replayBlockDelivery(packed, cfgs, &refBlock);
    bool identical = sameSim(refAos, refPacked);
    for (size_t i = 0; i < cfgs.size(); ++i) {
        const auto one = sim::simulateTrace(instrs, cfgs[i], 1);
        identical = identical && sameSim(one, refMany[i]) &&
                    sameSim(one, refBlock[i]);
    }
    {
        const auto refMany4 = sim::simulateTraceMany(packed, cfgs4, 1);
        std::vector<sim::SimResult> refBlock4;
        replayBlockDelivery(packed, cfgs4, &refBlock4);
        for (size_t i = 0; i < cfgs4.size(); ++i)
            identical = identical && sameSim(refMany4[i], refBlock4[i]);
    }
    if (!identical) {
        std::cerr << "perf_smoke: fused/block/AoS replays diverged\n";
        return 1;
    }

    const int reps = 3;
    // Each simulateTrace run feeds warmup+measure = 2 passes.
    const double passInstrs = 2.0 * double(n);

    const std::vector<sim::CoreConfig> one = {cfg};

    const double tSink = secondsOf([&] { replayAosSink(instrs, one); },
                                   reps);
    const double tBlock = secondsOf(
        [&] { sim::simulateTrace(instrs, cfg, 1); }, reps);
    const double tPacked1 = secondsOf(
        [&] { replayBlockDelivery(packed, one, nullptr); }, reps);
    const double tFused1 = secondsOf(
        [&] { sim::simulateTrace(packed, cfg, 1); }, reps);
    const double tManyNx = secondsOf(
        [&] {
            for (const auto &c : cfgs)
                sim::simulateTrace(packed, c, 1);
        },
        reps);
    const double tSinkN = secondsOf([&] { replayAosSink(instrs, cfgs); },
                                    reps);
    const double tBlockN = secondsOf(
        [&] { replayBlockDelivery(packed, cfgs, nullptr); }, reps);
    const double tFusedN = secondsOf(
        [&] { sim::simulateTraceMany(packed, cfgs, 1); }, reps);
    const double tBlock4 = secondsOf(
        [&] { replayBlockDelivery(packed, cfgs4, nullptr); }, reps);
    const double tFused4 = secondsOf(
        [&] { sim::simulateTraceMany(packed, cfgs4, 1); }, reps);

    // Saturation corpus: same block-vs-fused comparison in the
    // full-ROB/full-FU regime (a quarter of the capture-mix length —
    // saturated simulation costs several host ops per stalled cycle).
    const std::vector<trace::Instr> satInstrs =
        buildSaturationTrace(std::max<size_t>(n / 4, 1u << 16));
    const size_t satN = satInstrs.size();
    const auto satPacked = trace::PackedTrace::pack(satInstrs);
    const auto satRefMany = sim::simulateTraceMany(satPacked, cfgs, 1);
    std::vector<sim::SimResult> satRefBlock;
    replayBlockDelivery(satPacked, cfgs, &satRefBlock);
    for (size_t i = 0; i < cfgs.size(); ++i) {
        const auto one = sim::simulateTrace(satInstrs, cfgs[i], 1);
        if (!sameSim(one, satRefMany[i]) ||
            !sameSim(one, satRefBlock[i])) {
            std::cerr << "perf_smoke: saturation-corpus replays "
                         "diverged\n";
            return 1;
        }
    }
    const double tSatBlockN = secondsOf(
        [&] { replayBlockDelivery(satPacked, cfgs, nullptr); }, reps);
    const double tSatFusedN = secondsOf(
        [&] { sim::simulateTraceMany(satPacked, cfgs, 1); }, reps);
    const double satPassInstrs = 2.0 * double(satN);

    const double ipsSink = passInstrs / tSink;
    const double ipsBlock = passInstrs / tBlock;
    const double ipsPacked1 = passInstrs / tPacked1;
    const double ipsFused1 = passInstrs / tFused1;
    const double nConfigs = double(cfgs.size());
    const double ipsManyNx = passInstrs * nConfigs / tManyNx;
    const double ipsSinkN = passInstrs * nConfigs / tSinkN;
    const double ipsBlockN = passInstrs * nConfigs / tBlockN;
    const double ipsFusedN = passInstrs * nConfigs / tFusedN;
    const double ipsSatBlockN = satPassInstrs * nConfigs / tSatBlockN;
    const double ipsSatFusedN = satPassInstrs * nConfigs / tSatFusedN;
    const double nConfigs4 = double(cfgs4.size());
    const double ipsBlock4 = passInstrs * nConfigs4 / tBlock4;
    const double ipsFused4 = passInstrs * nConfigs4 / tFused4;

    const double aosBytes = double(trace::PackedTrace::aosBytes(n));
    const double packedBytes = double(packed.byteSize());
    const double memReduction = aosBytes / packedBytes;

    core::banner(std::cout, "Trace replay perf smoke");
    core::Table t({"path", "Minstr/s", "vs aos_sink"});
    const auto row = [&](const char *name, double ips) {
        t.addRow({name, core::fmt(ips / 1e6, 1),
                  core::fmtX(ips / ipsSink, 2)});
    };
    row("aos_sink (per-instr virtual)", ipsSink);
    row("aos_block", ipsBlock);
    row("packed (block delivery)", ipsPacked1);
    row("multi_nx (3 cores, N passes)", ipsManyNx);
    row("multi_1pass (3 cores, fused)", ipsFusedN);
    t.print(std::cout);
    std::cout << "trace: " << n << " instrs; " << aosBytes / n
              << " B/instr AoS vs " << core::fmt(packedBytes / n, 2)
              << " B/instr packed (" << core::fmtX(memReduction, 1)
              << " smaller)\n";

    core::banner(std::cout, "Fused replay engine (decode->step fusion)");
    core::Table t2({"path", "1 config", "3 configs", "unit"});
    t2.addRow({"aos_sink", core::fmt(ipsSink / 1e6, 1),
               core::fmt(ipsSinkN / 1e6, 1), "Minstr/s"});
    t2.addRow({"block", core::fmt(ipsPacked1 / 1e6, 1),
               core::fmt(ipsBlockN / 1e6, 1), "Minstr/s"});
    t2.addRow({"fused", core::fmt(ipsFused1 / 1e6, 1),
               core::fmt(ipsFusedN / 1e6, 1), "Minstr/s"});
    t2.print(std::cout);
    const double fusedVsBlockN = ipsFusedN / ipsBlockN;
    const double fusedVsBlock1 = ipsFused1 / ipsPacked1;
    const double fusedVsBlock4 = ipsFused4 / ipsBlock4;
    const double satFusedVsBlockN = ipsSatFusedN / ipsSatBlockN;
    std::cout << "config lanes at N=4 (half a lane block): block "
              << core::fmt(ipsBlock4 / 1e6, 1) << " vs fused "
              << core::fmt(ipsFused4 / 1e6, 1) << " Minstr/s ("
              << core::fmtX(fusedVsBlock4, 2) << ")\n";
    std::cout << "saturation corpus (" << satN
              << " instrs, full ROB / full vector pool): block "
              << core::fmt(ipsSatBlockN / 1e6, 1) << " vs fused "
              << core::fmt(ipsSatFusedN / 1e6, 1) << " Minstr/s ("
              << core::fmtX(satFusedVsBlockN, 2) << ") at N="
              << cfgs.size() << "\n";
    std::cout << "headline: fused replay advances all " << cfgs.size()
              << " configs inside a single decode pass — "
              << core::fmtX(fusedVsBlockN, 2)
              << " vs block-delivery replay and "
              << core::fmtX(ipsFusedN / ipsSinkN, 2)
              << " vs the per-instr legacy path at N=" << cfgs.size()
              << ", at " << core::fmtX(memReduction, 1)
              << " less trace memory\n";

    {
        std::ofstream os(traceJsonPath, std::ios::trunc);
        os << "{\n"
           << "  \"bench\": \"trace_replay\",\n"
           << "  \"n_instrs\": " << n << ",\n"
           << "  \"aos_bytes_per_instr\": " << fmtJson(aosBytes / n)
           << ",\n"
           << "  \"packed_bytes_per_instr\": "
           << fmtJson(packedBytes / n) << ",\n"
           << "  \"mem_reduction_x\": " << fmtJson(memReduction) << ",\n"
           << "  \"aos_sink_instrs_per_sec\": " << fmtJson(ipsSink)
           << ",\n"
           << "  \"aos_block_instrs_per_sec\": " << fmtJson(ipsBlock)
           << ",\n"
           << "  \"packed_instrs_per_sec\": " << fmtJson(ipsPacked1)
           << ",\n"
           << "  \"multi_nx_instrs_per_sec\": " << fmtJson(ipsManyNx)
           << ",\n"
           << "  \"multi_1pass_instrs_per_sec\": " << fmtJson(ipsFusedN)
           << ",\n"
           << "  \"speedup_block_vs_sink\": "
           << fmtJson(ipsBlock / ipsSink) << ",\n"
           << "  \"speedup_packed_vs_aos_sink\": "
           << fmtJson(ipsPacked1 / ipsSink) << ",\n"
           << "  \"speedup_1pass_vs_nx\": "
           << fmtJson(ipsFusedN / ipsManyNx) << ",\n"
           << "  \"speedup_pipeline_vs_legacy\": "
           << fmtJson(ipsFusedN / ipsSink) << ",\n"
           << "  \"byte_identical\": true\n"
           << "}\n";
        if (!os) {
            std::cerr << "perf_smoke: cannot write " << traceJsonPath
                      << "\n";
            return 1;
        }
        std::cout << "wrote " << traceJsonPath << "\n";
    }

    // The fused-engine gates: >= 1.3x over block-delivery replay at
    // N=3 and >= 1.5x at N=4 on the capture mix (the vectorized
    // config-lane width), >= 1.2x on the saturation corpus, and no
    // regression below block delivery at N=1 (batch decode staging
    // must never cost more than it saves). Enforced only in an
    // optimized build when the caller opts in (bench/run_all.sh does);
    // CI publishes the JSON report-only.
    constexpr double kFusedGate = 1.3;
    constexpr double kFusedGate4 = 1.5;
    constexpr double kFusedGate1 = 1.0;
    constexpr double kSatFusedGate = 1.2;
#ifdef NDEBUG
    const char *enf = std::getenv("SWAN_PERF_ENFORCE");
    const bool gateEnforced = enf && enf[0] == '1';
#else
    const bool gateEnforced = false;
#endif
    // Which decode/step kernels the runtime dispatch actually ran, so
    // a published BENCH json is attributable to an ISA level.
    const auto &simd = swan::detail::simdDispatch();
    {
        std::ofstream os(simJsonPath, std::ios::trunc);
        os << "{\n"
           << "  \"bench\": \"sim_replay\",\n"
           << "  \"n_instrs\": " << n << ",\n"
           << "  \"n_configs\": " << cfgs.size() << ",\n"
           << "  \"aos_sink_1_instrs_per_sec\": " << fmtJson(ipsSink)
           << ",\n"
           << "  \"block_1_instrs_per_sec\": " << fmtJson(ipsPacked1)
           << ",\n"
           << "  \"fused_1_instrs_per_sec\": " << fmtJson(ipsFused1)
           << ",\n"
           << "  \"aos_sink_n_instrs_per_sec\": " << fmtJson(ipsSinkN)
           << ",\n"
           << "  \"block_n_instrs_per_sec\": " << fmtJson(ipsBlockN)
           << ",\n"
           << "  \"fused_n_instrs_per_sec\": " << fmtJson(ipsFusedN)
           << ",\n"
           << "  \"block_4_instrs_per_sec\": " << fmtJson(ipsBlock4)
           << ",\n"
           << "  \"fused_4_instrs_per_sec\": " << fmtJson(ipsFused4)
           << ",\n"
           << "  \"speedup_fused_vs_block_n1\": "
           << fmtJson(fusedVsBlock1) << ",\n"
           << "  \"speedup_fused_vs_block_n3\": "
           << fmtJson(fusedVsBlockN) << ",\n"
           << "  \"speedup_fused_vs_block_n4\": "
           << fmtJson(fusedVsBlock4) << ",\n"
           << "  \"speedup_fused_vs_aos_sink_n3\": "
           << fmtJson(ipsFusedN / ipsSinkN) << ",\n"
           << "  \"sat_n_instrs\": " << satN << ",\n"
           << "  \"sat_block_n_instrs_per_sec\": "
           << fmtJson(ipsSatBlockN) << ",\n"
           << "  \"sat_fused_n_instrs_per_sec\": "
           << fmtJson(ipsSatFusedN) << ",\n"
           << "  \"speedup_fused_vs_block_sat_n3\": "
           << fmtJson(satFusedVsBlockN) << ",\n"
           << "  \"gate_fused_vs_block_n1_min\": " << fmtJson(kFusedGate1)
           << ",\n"
           << "  \"gate_fused_vs_block_n3_min\": " << fmtJson(kFusedGate)
           << ",\n"
           << "  \"gate_fused_vs_block_n4_min\": " << fmtJson(kFusedGate4)
           << ",\n"
           << "  \"gate_fused_vs_block_sat_n3_min\": "
           << fmtJson(kSatFusedGate) << ",\n"
           << "  \"gate_enforced\": "
           << (gateEnforced ? "true" : "false") << ",\n"
           << "  \"simd_isa\": \"" << simd.isa << "\",\n"
           << "  \"decode_kernel\": \"" << simd.decodeKernel << "\",\n"
           << "  \"step_kernel\": \"" << simd.stepKernel << "\",\n"
           << "  \"byte_identical\": true\n"
           << "}\n";
        if (!os) {
            std::cerr << "perf_smoke: cannot write " << simJsonPath
                      << "\n";
            return 1;
        }
        std::cout << "wrote " << simJsonPath << "\n";
    }

    // Hard acceptance bars: the >= 2x packed memory reduction always;
    // the fused >= 1.3x block gate when enforcement is on.
    if (memReduction < 2.0) {
        std::cerr << "perf_smoke: packed encoding only " << memReduction
                  << "x smaller (< 2x)\n";
        return 1;
    }
    if (gateEnforced && fusedVsBlockN < kFusedGate) {
        std::cerr << "perf_smoke: fused replay only "
                  << core::fmtX(fusedVsBlockN, 3)
                  << " vs block delivery at N=" << cfgs.size() << " (< "
                  << kFusedGate << "x)\n";
        return 1;
    }
    if (gateEnforced && satFusedVsBlockN < kSatFusedGate) {
        std::cerr << "perf_smoke: fused replay only "
                  << core::fmtX(satFusedVsBlockN, 3)
                  << " vs block delivery on the saturation corpus (< "
                  << kSatFusedGate << "x)\n";
        return 1;
    }
    if (gateEnforced && fusedVsBlock4 < kFusedGate4) {
        std::cerr << "perf_smoke: fused replay only "
                  << core::fmtX(fusedVsBlock4, 3)
                  << " vs block delivery at N=4 (< " << kFusedGate4
                  << "x)\n";
        return 1;
    }
    if (gateEnforced && fusedVsBlock1 < kFusedGate1) {
        std::cerr << "perf_smoke: fused replay regressed to "
                  << core::fmtX(fusedVsBlock1, 3)
                  << " vs block delivery at N=1 (< " << kFusedGate1
                  << "x)\n";
        return 1;
    }
    return 0;
}
