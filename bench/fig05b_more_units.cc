/**
 * @file
 * Figure 5(b) reproduction: Neon performance scalability with more
 * 128-bit ASIMD execution units (V) and wider decode/commit (W) on the
 * eight representative kernels: 4W-2V (baseline) through 8W-8V.
 * Speedups are relative to the 4W-2V Cortex-A76 baseline.
 *
 * The kernel x core-config grid runs through the sweep engine, which
 * captures each kernel's trace once and replays it per configuration
 * (the trace memo), parallelizes over SWAN_JOBS, and shares results
 * through the sweep cache.
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    const std::vector<std::string> configs = {"4W-2V", "4W-4V", "4W-6V",
                                              "6W-6V", "4W-8V", "8W-8V"};

    Session session = Session::fromEnv();
    const Results results = bench::runExperiment(
        Experiment(session)
            .widerOnly()
            .impl(core::Impl::Neon)
            .vecBits({128})
            .configs(configs)
            .workingSet("scalability"),
        "fig05b");

    core::banner(std::cout,
                 "Figure 5(b): speedup vs 4W-2V with more ASIMD units "
                 "and wider decode");
    std::vector<std::string> headers = {"Kernel"};
    for (const auto &c : configs)
        headers.push_back(c);
    core::Table t(headers);

    for (const auto *k : bench::headlineKernels()) {
        if (!k->info.widerWidths)
            continue;
        const auto qn = k->info.qualifiedName();
        const auto *base =
            results.find(qn, core::Impl::Neon, 128, configs.front());
        std::vector<std::string> row = {qn};
        for (const auto &c : configs) {
            const auto *r = results.find(qn, core::Impl::Neon, 128, c);
            row.push_back(core::fmtX(double(base->run.sim.cycles) /
                                     double(r->run.sim.cycles)));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors: more ASIMD units than decode ways "
                 "(4W-6V, 4W-8V) barely help; with enough ways, the "
                 "manually-unrolled high-ILP kernels (XP gemm, LV sad) "
                 "reach ~1.9x at 8W-8V while the register-pressure-"
                 "limited ones (LJ rgb_to_ycbcr) stay near ~1.2x.\n";
    return 0;
}
