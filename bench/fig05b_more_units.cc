/**
 * @file
 * Figure 5(b) reproduction: Neon performance scalability with more
 * 128-bit ASIMD execution units (V) and wider decode/commit (W) on the
 * eight representative kernels: 4W-2V (baseline) through 8W-8V.
 * Speedups are relative to the 4W-2V Cortex-A76 baseline.
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    core::Runner runner(bench::scalabilityOptions());
    const std::pair<int, int> configs[] = {{4, 2}, {4, 4}, {4, 6},
                                           {6, 6}, {4, 8}, {8, 8}};

    core::banner(std::cout,
                 "Figure 5(b): speedup vs 4W-2V with more ASIMD units "
                 "and wider decode");
    std::vector<std::string> headers = {"Kernel"};
    for (auto [w, v] : configs)
        headers.push_back(std::to_string(w) + "W-" + std::to_string(v) +
                          "V");
    core::Table t(headers);

    for (const auto *spec : bench::headlineKernels()) {
        if (!spec->info.widerWidths)
            continue;
        auto w = spec->make(runner.options());
        auto instrs = core::Runner::capture(*w, core::Impl::Neon, 128);
        std::vector<std::string> row = {spec->info.qualifiedName()};
        uint64_t base_cycles = 0;
        for (auto [ways, vunits] : configs) {
            auto cfg = sim::scalabilityConfig(ways, vunits);
            auto res = sim::simulateTrace(instrs, cfg);
            if (base_cycles == 0)
                base_cycles = res.cycles;
            row.push_back(core::fmtX(double(base_cycles) /
                                     double(res.cycles)));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors: more ASIMD units than decode ways "
                 "(4W-6V, 4W-8V) barely help; with enough ways, the "
                 "manually-unrolled high-ILP kernels (XP gemm, LV sad) "
                 "reach ~1.9x at 8W-8V while the register-pressure-"
                 "limited ones (LJ rgb_to_ycbcr) stay near ~1.2x.\n";
    return 0;
}
