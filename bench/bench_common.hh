/**
 * @file
 * Shared helpers for the per-table/per-figure bench binaries, written
 * against the public swan API only (include/swan/): a bench is a
 * Session (policy from the SWAN_* environment), one or more fluent
 * Experiments, and report formatting over the Results.
 */

#ifndef SWAN_BENCH_BENCH_COMMON_HH
#define SWAN_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "swan/swan.hh"

namespace swan::bench
{

/**
 * Run one experiment grid for a bench binary: results come through the
 * shared engine and the session's result cache (SWAN_SWEEP_CACHE_DIR
 * enables the on-disk tier, so identical points are shared across
 * bench binaries and reruns). Prints the cache summary to stderr,
 * keeping stdout byte-comparable between cold and warm runs. Exits on
 * a bad grid.
 */
inline Results
runExperiment(const Experiment &experiment, const char *who)
{
    std::string err;
    Results results = experiment.run(&err);
    if (results.empty()) {
        std::cerr << who << ": " << err << "\n";
        std::exit(1);
    }
    std::cerr << who << ": " << results.cacheSummary() << "\n";
    return results;
}

/** Headline kernels (the paper's 59; DES-style study kernels excluded). */
inline std::vector<const core::KernelSpec *>
headlineKernels()
{
    std::vector<const core::KernelSpec *> out;
    for (const auto &k : core::Registry::instance().kernels())
        if (!k.info.excluded)
            out.push_back(&k);
    return out;
}

/** Library symbols in Table 2 order of registration. */
inline std::vector<std::string>
librarySymbols()
{
    return core::Registry::instance().symbols();
}

} // namespace swan::bench

#endif // SWAN_BENCH_BENCH_COMMON_HH
