/**
 * @file
 * Shared helpers for the per-table/per-figure bench binaries.
 */

#ifndef SWAN_BENCH_BENCH_COMMON_HH
#define SWAN_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/metrics.hh"
#include "core/registry.hh"
#include "core/report.hh"
#include "core/runner.hh"
#include "sim/configs.hh"

namespace swan::bench
{

/** Headline kernels (the paper's 59; DES-style study kernels excluded). */
inline std::vector<const core::KernelSpec *>
headlineKernels()
{
    std::vector<const core::KernelSpec *> out;
    for (const auto &k : core::Registry::instance().kernels())
        if (!k.info.excluded)
            out.push_back(&k);
    return out;
}

/**
 * Input sizes for the Section 7 scalability studies (Figure 5). The
 * paper minimizes memory stalls (Section 4.3 warms caches before each
 * iteration) so that register-width and issue-width effects are not
 * masked by DRAM bandwidth; the equivalent here is clamping the swept
 * kernels' working sets to stay LLC-resident.
 */
inline core::Options
scalabilityOptions()
{
    core::Options o = core::Options::fromEnv();
    // Image kernels use up to 8 B/px across input+output, so 96x48
    // stays inside the 64 KiB L1 once warmed.
    o.imageWidth = std::min(o.imageWidth, 96);
    o.imageHeight = std::min(o.imageHeight, 48);
    o.bufferBytes = std::min(o.bufferBytes, 16 * 1024);
    o.audioSamples = std::min(o.audioSamples, 4096);
    o.videoBlocks = std::min(o.videoBlocks, 16);
    return o;
}

/** Library symbols in Table 2 order of registration. */
inline std::vector<std::string>
librarySymbols()
{
    return core::Registry::instance().symbols();
}

} // namespace swan::bench

#endif // SWAN_BENCH_BENCH_COMMON_HH
