/**
 * @file
 * Shared helpers for the per-table/per-figure bench binaries.
 */

#ifndef SWAN_BENCH_BENCH_COMMON_HH
#define SWAN_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/metrics.hh"
#include "core/registry.hh"
#include "core/report.hh"
#include "core/runner.hh"
#include "sim/configs.hh"
#include "sweep/emit.hh"
#include "sweep/scheduler.hh"

namespace swan::bench
{

/** Sweep worker threads: SWAN_JOBS, defaulting to 1 (deterministic
 *  output either way; see sweep/scheduler.hh). */
inline int
jobsFromEnv()
{
    const char *v = std::getenv("SWAN_JOBS");
    if (!v || !*v)
        return 1;
    const int n = std::atoi(v);
    return n > 0 ? n : 1;
}

/**
 * Run a sweep grid for a bench binary: results come through the shared
 * engine and result cache (SWAN_SWEEP_CACHE_DIR enables the on-disk
 * tier, so identical points are shared across bench binaries and
 * reruns). Prints the cache summary to stderr, keeping stdout
 * byte-comparable between cold and warm runs. Exits on a bad grid.
 */
inline std::vector<sweep::SweepResult>
runBenchSweep(const sweep::SweepSpec &spec, const char *who)
{
    sweep::ResultCache cache = sweep::ResultCache::fromEnv();
    sweep::SchedulerConfig sc;
    sc.jobs = jobsFromEnv();
    sc.cache = &cache;
    std::string err;
    std::vector<sweep::SweepResult> results;
    try {
        results = sweep::runSweep(spec, sc, &err);
    } catch (const std::exception &e) {
        err = e.what();
    }
    if (results.empty()) {
        std::cerr << who << ": " << err << "\n";
        std::exit(1);
    }
    std::cerr << who << ": " << sweep::cacheSummary(cache.stats())
              << "\n";
    return results;
}

/** Headline kernels (the paper's 59; DES-style study kernels excluded). */
inline std::vector<const core::KernelSpec *>
headlineKernels()
{
    std::vector<const core::KernelSpec *> out;
    for (const auto &k : core::Registry::instance().kernels())
        if (!k.info.excluded)
            out.push_back(&k);
    return out;
}

/**
 * Input sizes for the Section 7 scalability studies (Figure 5). The
 * paper minimizes memory stalls (Section 4.3 warms caches before each
 * iteration) so that register-width and issue-width effects are not
 * masked by DRAM bandwidth; the equivalent here is clamping the swept
 * kernels' working sets to stay LLC-resident.
 */
inline core::Options
scalabilityOptions()
{
    core::Options o = core::Options::fromEnv();
    // Image kernels use up to 8 B/px across input+output, so 96x48
    // stays inside the 64 KiB L1 once warmed.
    o.imageWidth = std::min(o.imageWidth, 96);
    o.imageHeight = std::min(o.imageHeight, 48);
    o.bufferBytes = std::min(o.bufferBytes, 16 * 1024);
    o.audioSamples = std::min(o.audioSamples, 4096);
    o.videoBlocks = std::min(o.videoBlocks, 16);
    return o;
}

/** Library symbols in Table 2 order of registration. */
inline std::vector<std::string>
librarySymbols()
{
    return core::Registry::instance().symbols();
}

} // namespace swan::bench

#endif // SWAN_BENCH_BENCH_COMMON_HH
