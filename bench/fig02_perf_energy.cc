/**
 * @file
 * Figure 2 reproduction: performance and energy improvement of Auto
 * (compiler auto-vectorization) and Neon (explicit intrinsics) over the
 * Scalar implementation, geomean per library, on the Prime core.
 *
 * The kernel x implementation grid runs through the sweep engine
 * (src/sweep/): each kernel's Scalar/Auto/Neon traces are captured once
 * and replayed through the shared scheduler, SWAN_JOBS parallelizes the
 * points, and SWAN_SWEEP_CACHE_DIR shares results with other benches
 * and reruns. Output verification (the paper validates Neon against
 * Scalar outputs) runs untraced at full host speed.
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    Session session = Session::fromEnv();
    const Results results = bench::runExperiment(
        Experiment(session)
            .impls({core::Impl::Scalar, core::Impl::Auto,
                    core::Impl::Neon})
            .config("prime"),
        "fig02");

    // Assemble per-kernel comparisons from the flat result stream.
    std::vector<core::Comparison> comparisons;
    bool all_verified = true;
    for (const auto *k : bench::headlineKernels()) {
        const auto qn = k->info.qualifiedName();
        const auto *s = results.find(qn, core::Impl::Scalar, 128);
        const auto *a = results.find(qn, core::Impl::Auto, 128);
        const auto *n = results.find(qn, core::Impl::Neon, 128);
        if (!s || !a || !n)
            continue;
        core::Comparison c;
        c.info = k->info;
        c.scalar = s->run;
        c.autovec = a->run;
        c.neon = n->run;
        // The paper's correctness check, untraced (full host speed).
        auto w = k->make(core::Options::fromEnv());
        w->runScalar();
        w->runNeon(128);
        c.verified = w->verify();
        all_verified = all_verified && c.verified;
        comparisons.push_back(std::move(c));
    }

    core::banner(std::cout,
                 "Figure 2: Auto / Neon performance and energy "
                 "improvement vs Scalar (geomean per library, Prime "
                 "core)");
    core::Table t({"Lib", "Auto speedup", "Neon speedup", "Auto energy",
                   "Neon energy"});
    for (const auto &s : core::summarizeByLibrary(comparisons)) {
        t.addRow({s.symbol, core::fmtX(s.autoSpeedup),
                  core::fmtX(s.neonSpeedup),
                  core::fmtX(s.autoEnergyImprovement),
                  core::fmtX(s.neonEnergyImprovement)});
    }
    t.print(std::cout);

    std::cout << "\nOutput verification (Scalar vs Neon): "
              << (all_verified ? "all kernels match" : "MISMATCH")
              << "\nPaper anchors: non-crypto Neon speedups fall in "
                 "[1.9x, 4.8x]; ZL/BS exceed them via crypto "
                 "instructions; WA/PF/LO (FP32 audio) sit lowest; Auto "
                 "helps only a minority of kernels.\n";
    return all_verified ? 0 : 1;
}
