/**
 * @file
 * Figure 2 reproduction: performance and energy improvement of Auto
 * (compiler auto-vectorization) and Neon (explicit intrinsics) over the
 * Scalar implementation, geomean per library, on the Prime core.
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    core::Runner runner;
    const auto cfg = sim::primeConfig();

    std::vector<core::Comparison> comparisons;
    bool all_verified = true;
    for (const auto *spec : bench::headlineKernels()) {
        auto c = runner.compare(*spec, cfg);
        all_verified = all_verified && c.verified;
        comparisons.push_back(std::move(c));
    }

    core::banner(std::cout,
                 "Figure 2: Auto / Neon performance and energy "
                 "improvement vs Scalar (geomean per library, Prime "
                 "core)");
    core::Table t({"Lib", "Auto speedup", "Neon speedup", "Auto energy",
                   "Neon energy"});
    for (const auto &s : core::summarizeByLibrary(comparisons)) {
        t.addRow({s.symbol, core::fmtX(s.autoSpeedup),
                  core::fmtX(s.neonSpeedup),
                  core::fmtX(s.autoEnergyImprovement),
                  core::fmtX(s.neonEnergyImprovement)});
    }
    t.print(std::cout);

    std::cout << "\nOutput verification (Scalar vs Neon): "
              << (all_verified ? "all kernels match" : "MISMATCH")
              << "\nPaper anchors: non-crypto Neon speedups fall in "
                 "[1.9x, 4.8x]; ZL/BS exceed them via crypto "
                 "instructions; WA/PF/LO (FP32 audio) sit lowest; Auto "
                 "helps only a minority of kernels.\n";
    return all_verified ? 0 : 1;
}
