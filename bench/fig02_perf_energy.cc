/**
 * @file
 * Figure 2 reproduction: performance and energy improvement of Auto
 * (compiler auto-vectorization) and Neon (explicit intrinsics) over the
 * Scalar implementation, geomean per library, on the Prime core.
 *
 * The kernel x implementation grid runs through the sweep engine
 * (src/sweep/): each kernel's Scalar/Auto/Neon traces are captured once
 * and replayed through the shared scheduler, SWAN_JOBS parallelizes the
 * points, and SWAN_SWEEP_CACHE_DIR shares results with other benches
 * and reruns. Output verification (the paper validates Neon against
 * Scalar outputs) runs untraced at full host speed.
 */

#include "bench_common.hh"

using namespace swan;

int
main()
{
    Session session = Session::fromEnv();
    const Results results = bench::runExperiment(
        Experiment(session)
            .impls({core::Impl::Scalar, core::Impl::Auto,
                    core::Impl::Neon})
            .config("prime"),
        "fig02");

    // The paper's correctness check, untraced (full host speed).
    bool all_verified = true;
    for (const auto *k : bench::headlineKernels()) {
        auto w = k->make(core::Options::fromEnv());
        w->runScalar();
        w->runNeon(128);
        all_verified = all_verified && w->verify();
    }

    // Per-library aggregation straight off the result stream: every
    // Auto/Neon point pairs with its Scalar baseline, geomeans group
    // by library symbol in registry order.
    const auto rows = results.speedupVs(core::Impl::Scalar);
    const auto only = [&](core::Impl impl) {
        std::vector<Speedup> v;
        for (const auto &r : rows)
            if (r.point->point.impl == impl)
                v.push_back(r);
        return v;
    };
    const auto bySymbol = [](const Speedup &s) {
        return s.point->point.spec->info.symbol;
    };
    const auto speed = [](const Speedup &s) { return s.speedup(); };
    const auto energy = [](const Speedup &s) {
        return s.energyImprovement();
    };
    const auto autoRows = only(core::Impl::Auto);
    const auto neonRows = only(core::Impl::Neon);
    const auto autoSpeed = geomeanBy(autoRows, bySymbol, speed);
    const auto neonSpeed = geomeanBy(neonRows, bySymbol, speed);
    const auto autoEnergy = geomeanBy(autoRows, bySymbol, energy);
    const auto neonEnergy = geomeanBy(neonRows, bySymbol, energy);

    core::banner(std::cout,
                 "Figure 2: Auto / Neon performance and energy "
                 "improvement vs Scalar (geomean per library, Prime "
                 "core)");
    core::Table t({"Lib", "Auto speedup", "Neon speedup", "Auto energy",
                   "Neon energy"});
    for (const auto &[sym, v] : neonSpeed) {
        t.addRow({sym, core::fmtX(valueFor(autoSpeed, sym)),
                  core::fmtX(v), core::fmtX(valueFor(autoEnergy, sym)),
                  core::fmtX(valueFor(neonEnergy, sym))});
    }
    t.print(std::cout);

    std::cout << "\nOutput verification (Scalar vs Neon): "
              << (all_verified ? "all kernels match" : "MISMATCH")
              << "\nPaper anchors: non-crypto Neon speedups fall in "
                 "[1.9x, 4.8x]; ZL/BS exceed them via crypto "
                 "instructions; WA/PF/LO (FP32 audio) sit lowest; Auto "
                 "helps only a minority of kernels.\n";
    return all_verified ? 0 : 1;
}
