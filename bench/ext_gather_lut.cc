/**
 * @file
 * Extension study (Section 9 future work x Section 6.2): what gather
 * intrinsics buy the seven look-up-table kernels. The paper shows Neon's
 * lane-export workaround makes the DES kernel 11% slower than scalar
 * (73% of its instructions are look-up traffic) and forces four kernels
 * to abandon their look-up tables. SVE/RVV gathers (one indexed vector
 * load) remove that traffic; this bench measures the generic LU_TBL
 * kernel and the DES cipher with both strategies on the simulated Prime
 * core.
 */

#include "bench_common.hh"

#include "swan/trace.hh"
#include "swan/workloads.hh"

using namespace swan;
using workloads::ext::LutImpl;

namespace
{

struct Row
{
    core::KernelRun scalar;
    core::KernelRun lane;
    core::KernelRun gather;
    bool ok = false;
};

Row
measure(const core::Runner &runner, const sim::CoreConfig &cfg,
        bool des)
{
    auto make = [&](LutImpl impl) {
        return des ? workloads::ext::makeDesGather(runner.options(), impl)
                   : workloads::ext::makeLutTransform(runner.options(),
                                                      impl);
    };
    Row row;
    auto lane = make(LutImpl::LaneExport);
    row.scalar = runner.run(*lane, core::Impl::Scalar, cfg);
    row.lane = runner.run(*lane, core::Impl::Neon, cfg);
    const bool ok1 = lane->verify();
    auto gather = make(LutImpl::Gather);
    gather->runScalar();
    row.gather = runner.run(*gather, core::Impl::Neon, cfg);
    row.ok = ok1 && gather->verify();
    return row;
}

double
lutShare(const core::KernelRun &run)
{
    return 100.0 *
           double(run.mix.count(trace::InstrClass::VMisc) +
                  run.mix.count(trace::InstrClass::SLoad)) /
           double(run.mix.total());
}

} // namespace

int
main()
{
    core::Runner runner;
    const auto cfg = sim::primeConfig();

    const Row lut = measure(runner, cfg, /*des=*/false);
    const Row des = measure(runner, cfg, /*des=*/true);

    core::banner(std::cout,
                 "Extension: gather intrinsics for look-up-table kernels "
                 "(Sections 6.2 and 9)");

    core::Table t({"Kernel", "Impl", "Speedup vs Scalar", "Instr reduction",
                   "LUT traffic"});
    auto add = [&](const char *name, const Row &row) {
        const double laneSpeed = double(row.scalar.sim.cycles) /
                                 double(row.lane.sim.cycles);
        const double gatherSpeed = double(row.scalar.sim.cycles) /
                                   double(row.gather.sim.cycles);
        t.addRow({name, "Neon lane-export", core::fmtX(laneSpeed),
                  core::fmtX(double(row.scalar.mix.total()) /
                             double(row.lane.mix.total())),
                  core::fmtPct(lutShare(row.lane), 0)});
        t.addRow({name, "Gather (SVE/RVV)", core::fmtX(gatherSpeed),
                  core::fmtX(double(row.scalar.mix.total()) /
                             double(row.gather.mix.total())),
                  core::fmtPct(lutShare(row.gather), 0)});
    };
    add("LU_TBL (1024-entry table)", lut);
    add("DES Feistel (8 S-boxes)", des);
    t.print(std::cout);

    std::cout
        << "\nPaper anchors (Section 6.2): without gathers the Neon DES "
           "runs 0.89x of Scalar\nand spends 73% of its instructions on "
           "look-up traffic; gathers restore the\nvector speedup, which "
           "would benefit all seven random-access kernels.\n"
        << "Outputs verified: " << (lut.ok && des.ok ? "yes" : "NO")
        << "\n";

    // Ablation: the conclusion must not hinge on the modelled LSU crack
    // rate. Sweep elements-per-cycle over the range real SVE parts ship.
    core::banner(std::cout,
                 "Ablation: gather LSU crack rate (elements/cycle)");
    core::Table a({"Crack rate", "LU_TBL gather vs Scalar",
                   "DES gather vs Scalar"});
    for (int crack : {1, 2, 4, 8}) {
        auto cfgc = sim::primeConfig();
        cfgc.lsuCrackPerCycle = crack;
        auto lutW = workloads::ext::makeLutTransform(runner.options(),
                                                     LutImpl::Gather);
        auto desW = workloads::ext::makeDesGather(runner.options(),
                                                  LutImpl::Gather);
        auto ls = runner.run(*lutW, core::Impl::Scalar, cfgc);
        auto lg = runner.run(*lutW, core::Impl::Neon, cfgc);
        auto ds = runner.run(*desW, core::Impl::Scalar, cfgc);
        auto dg = runner.run(*desW, core::Impl::Neon, cfgc);
        a.addRow({std::to_string(crack) + "/cycle",
                  core::fmtX(double(ls.sim.cycles) /
                             double(lg.sim.cycles)),
                  core::fmtX(double(ds.sim.cycles) /
                             double(dg.sim.cycles))});
    }
    a.print(std::cout);
    std::cout << "\nEven a one-element-per-cycle gather (the slowest "
                 "plausible LSU) preserves the\nwin over the lane-export "
                 "workaround; faster cracking widens it.\n";
    return lut.ok && des.ok ? 0 : 1;
}
