/**
 * @file
 * Tests for the cache model and memory hierarchy: hit/miss behavior,
 * LRU replacement, write-back traffic, hierarchy fill, MSHR-bounded
 * overlap and DRAM bandwidth queueing.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"
#include "sim/configs.hh"

using namespace swan::sim;

namespace
{

CacheConfig
tinyCache(int size, int ways)
{
    return {size, ways, 64, 4, false};
}

} // namespace

TEST(Cache, FirstAccessMissesThenHits)
{
    Cache c(tinyCache(1024, 2));
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103f, false).hit); // same 64B line
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsOldest)
{
    // 1 KiB, 2-way, 64B lines -> 8 sets; same set = addresses 512 apart.
    Cache c(tinyCache(1024, 2));
    c.access(0x0000, false);
    c.access(0x0200, false);
    c.access(0x0000, false);  // touch A so B is LRU
    c.access(0x0400, false);  // evicts B
    EXPECT_TRUE(c.access(0x0000, false).hit);
    EXPECT_FALSE(c.access(0x0200, false).hit);
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c(tinyCache(1024, 1)); // direct-mapped, 16 sets
    c.access(0x0000, true);      // dirty
    auto r = c.access(0x0000 + 1024, false); // same set, evicts
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.wbLineAddr, 0x0000u);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(tinyCache(1024, 2));
    EXPECT_FALSE(c.probe(0x2000));
    c.access(0x2000, false);
    const uint64_t misses = c.misses();
    EXPECT_TRUE(c.probe(0x2000));
    EXPECT_EQ(c.misses(), misses);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(tinyCache(1024, 2));
    c.access(0x0, false);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.probe(0x0));
}

TEST(MemHierarchy, LatencyGrowsDownTheHierarchy)
{
    auto cfg = primeConfig();
    cfg.l1d.nextLinePrefetch = false;
    cfg.l2.nextLinePrefetch = false;
    MemHierarchy mem(cfg);

    auto first = mem.load(0x10000, 4, 0);
    EXPECT_EQ(first.level, MemHierarchy::Level::Dram);
    EXPECT_GT(first.latency, uint64_t(cfg.llc.latency));

    auto hit = mem.load(0x10000, 4, 1000);
    EXPECT_EQ(hit.level, MemHierarchy::Level::L1);
    EXPECT_EQ(hit.latency, uint64_t(cfg.l1d.latency));
}

TEST(MemHierarchy, L2HitAfterL1Eviction)
{
    auto cfg = primeConfig();
    cfg.l1d = {1024, 1, 64, 4, false};
    cfg.l2 = {64 * 1024, 8, 64, 9, false};
    MemHierarchy mem(cfg);
    mem.load(0x0000, 4, 0);
    // Conflict in L1 (direct-mapped 1 KiB) but fits easily in L2.
    mem.load(0x0000 + 1024, 4, 100);
    auto r = mem.load(0x0000, 4, 200);
    EXPECT_EQ(r.level, MemHierarchy::Level::L2);
    EXPECT_EQ(r.latency, uint64_t(cfg.l2.latency));
}

TEST(MemHierarchy, MshrsBoundOverlap)
{
    auto cfg = primeConfig();
    cfg.mshrs = 1;
    cfg.l1d.nextLinePrefetch = false;
    MemHierarchy one(cfg);
    cfg.mshrs = 16;
    MemHierarchy many(cfg);

    // Two concurrent misses at cycle 0: with one MSHR the second must
    // wait for the first to complete.
    uint64_t lat_one =
        std::max(one.load(0x0000, 4, 0).latency,
                 one.load(0x4000, 4, 0).latency);
    uint64_t lat_many =
        std::max(many.load(0x0000, 4, 0).latency,
                 many.load(0x4000, 4, 0).latency);
    EXPECT_GT(lat_one, lat_many);
}

TEST(MemHierarchy, StoreTrafficCountsDramWrites)
{
    auto cfg = primeConfig();
    cfg.l1d = {1024, 1, 64, 4, false};
    cfg.l2 = {2048, 1, 64, 9, false};
    cfg.llc = {4096, 1, 64, 31, false};
    MemHierarchy mem(cfg);
    // Write a long stream: dirty lines must eventually reach DRAM.
    for (uint64_t a = 0; a < 64 * 1024; a += 64)
        mem.store(a, 4, a);
    EXPECT_GT(mem.dramWrites(), 0u);
    EXPECT_GT(mem.dramReads(), 0u); // write-allocate fills
}

TEST(MemHierarchy, SpanningAccessTouchesBothLines)
{
    auto cfg = primeConfig();
    cfg.l1d.nextLinePrefetch = false;
    MemHierarchy mem(cfg);
    mem.load(0x1000 - 8, 16, 0); // spans two lines
    EXPECT_EQ(mem.l1().misses(), 2u);
}

TEST(Dram, BandwidthQueueDelaysBursts)
{
    Dram d(100, 10.0);
    uint64_t t0 = d.access(0);
    uint64_t t1 = d.access(0);
    uint64_t t2 = d.access(0);
    EXPECT_EQ(t0, 100u);
    EXPECT_EQ(t1, 110u);
    EXPECT_EQ(t2, 120u);
    // After the queue drains, latency returns to the idle value.
    EXPECT_EQ(d.access(10000), 10100u);
}

TEST(Configs, Table3Baseline)
{
    auto c = primeConfig();
    EXPECT_EQ(c.robSize, 128);
    EXPECT_EQ(c.decodeWidth, 4);
    EXPECT_EQ(c.vunits(), 2);
    EXPECT_EQ(c.vecBits, 128);
    EXPECT_EQ(c.l1d.sizeBytes, 64 * 1024);
    EXPECT_EQ(c.l2.sizeBytes, 512 * 1024);
    EXPECT_EQ(c.llc.sizeBytes, 2 * 1024 * 1024);
    EXPECT_EQ(c.l1d.latency, 4);
    EXPECT_EQ(c.l2.latency, 9);
    EXPECT_EQ(c.llc.latency, 31);
    EXPECT_DOUBLE_EQ(c.freqGHz, 2.8);
}

TEST(Configs, ScalabilityFactory)
{
    auto c = scalabilityConfig(8, 8);
    EXPECT_EQ(c.decodeWidth, 8);
    EXPECT_EQ(c.vunits(), 8);
    EXPECT_EQ(c.name, "8W-8V");
    auto base = scalabilityConfig(4, 2);
    EXPECT_EQ(base.decodeWidth, primeConfig().decodeWidth);
    EXPECT_EQ(base.vunits(), primeConfig().vunits());
}

TEST(Configs, SilverIsInOrder)
{
    auto c = silverConfig();
    EXPECT_FALSE(c.outOfOrder);
    EXPECT_EQ(c.vunits(), 1);
    EXPECT_LT(c.freqGHz, goldConfig().freqGHz);
}
