/**
 * @file
 * Tests for the ACLE-style compatibility layer: a kernel written with
 * real Neon names must behave identically to the width-generic API and
 * emit the same trace.
 */

#include <gtest/gtest.h>

#include "simd/neon_compat.hh"
#include "trace/recorder.hh"

using namespace swan;
using namespace swan::simd::neon;

TEST(NeonCompat, TypesHaveNeonShapes)
{
    static_assert(uint8x16_t::kLanes == 16);
    static_assert(int16x8_t::kLanes == 8);
    static_assert(float32x4_t::kLanes == 4);
    static_assert(float16x8_t::kLanes == 8);
    SUCCEED();
}

TEST(NeonCompat, SaxpyWrittenInAcleStyle)
{
    float x[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    float y[8] = {10, 20, 30, 40, 50, 60, 70, 80};
    const float a = 2.0f;
    for (int i = 0; i < 8; i += 4) {
        float32x4_t xv = vld1q_f32(x + i);
        float32x4_t yv = vld1q_f32(y + i);
        vst1q_f32(y + i, vmlaq_f32(yv, xv, vdupq_n_f32(a)));
    }
    for (int i = 0; i < 8; ++i)
        EXPECT_FLOAT_EQ(y[i], 10.0f * float(i + 1) + 2.0f * float(i + 1));
}

TEST(NeonCompat, SadWrittenInAcleStyle)
{
    uint8_t a[16], b[16];
    uint32_t ref = 0;
    for (int i = 0; i < 16; ++i) {
        a[i] = uint8_t(3 * i);
        b[i] = uint8_t(40 - i);
        ref += uint32_t(std::abs(int(a[i]) - int(b[i])));
    }
    uint8x16_t av = vld1q_u8(a);
    uint8x16_t bv = vld1q_u8(b);
    uint16x8_t zero{};
    uint16x8_t acc = vpadalq_u8(zero, vabdq_u8(av, bv));
    EXPECT_EQ(vaddlvq_u16(acc).v, ref);
}

TEST(NeonCompat, AliasesEmitSameTraceAsGenericApi)
{
    uint8_t buf[32];
    for (int i = 0; i < 32; ++i)
        buf[i] = uint8_t(i);

    trace::Recorder rec_alias;
    {
        trace::ScopedRecorder scoped(&rec_alias);
        auto v = vld1q_u8(buf);
        auto w = vld1q_u8(buf + 16);
        vst1q_u8(buf, vaddq_u8(v, w));
    }
    trace::Recorder rec_generic;
    {
        trace::ScopedRecorder scoped(&rec_generic);
        auto v = simd::vld1<128>(buf);
        auto w = simd::vld1<128>(buf + 16);
        simd::vst1(buf, simd::vadd(v, w));
    }
    ASSERT_EQ(rec_alias.instrs().size(), rec_generic.instrs().size());
    for (size_t i = 0; i < rec_alias.instrs().size(); ++i) {
        EXPECT_EQ(int(rec_alias.instrs()[i].cls),
                  int(rec_generic.instrs()[i].cls));
        EXPECT_EQ(rec_alias.instrs()[i].latency,
                  rec_generic.instrs()[i].latency);
    }
}

TEST(NeonCompat, DeinterleaveAes)
{
    uint8_t px[64];
    for (int i = 0; i < 64; ++i)
        px[i] = uint8_t(i);
    uint8x16x4_t rgba = vld4q_u8(px);
    EXPECT_EQ(rgba[0][1], 4);
    auto s = vaesmcq_u8(vaeseq_u8(rgba[0], vdupq_n_u8(0)));
    (void)s;
    uint8_t out[64] = {};
    vst4q_u8(out, rgba);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(out[i], px[i]);
}
