/**
 * @file
 * Unit and property tests for the arithmetic/logic/compare families of
 * the Neon emulation layer, across element types and register widths.
 */

#include <gtest/gtest.h>

#include "simd/simd.hh"
#include "trace/recorder.hh"

using namespace swan;
using namespace swan::simd;

namespace
{

template <typename T, int B>
Vec<T, B>
iota(T start, T step = T(1))
{
    Vec<T, B> v;
    T x = start;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        v.lane[size_t(i)] = x;
        x = detail::wrapAdd(x, step);
    }
    return v;
}

} // namespace

TEST(SimdArith, AddSubLanewise)
{
    auto a = iota<int32_t, 128>(1);
    auto b = iota<int32_t, 128>(10, 10);
    auto sum = vadd(a, b);
    auto diff = vsub(b, a);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(sum[i], (i + 1) + 10 * (i + 1));
        EXPECT_EQ(diff[i], 10 * (i + 1) - (i + 1));
    }
}

TEST(SimdArith, AddWrapsU8)
{
    auto a = vdup<uint8_t, 128>(uint8_t(200));
    auto b = vdup<uint8_t, 128>(uint8_t(100));
    auto s = vadd(a, b);
    EXPECT_EQ(s[0], uint8_t(44)); // 300 mod 256
}

TEST(SimdArith, MulAndMla)
{
    auto a = iota<int16_t, 128>(1);
    auto b = vdup<int16_t, 128>(int16_t(3));
    auto acc = vdup<int16_t, 128>(int16_t(100));
    auto r = vmla(acc, a, b);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(r[i], int16_t(100 + 3 * (i + 1)));
}

TEST(SimdArith, MinMaxAbsNeg)
{
    auto a = iota<int32_t, 128>(-2); // -2,-1,0,1
    auto z = vdup<int32_t, 128>(0);
    auto mn = vmin(a, z);
    auto mx = vmax(a, z);
    auto ab = vabs(a);
    auto ng = vneg(a);
    for (int i = 0; i < 4; ++i) {
        const int32_t x = -2 + i;
        EXPECT_EQ(mn[i], std::min(x, 0));
        EXPECT_EQ(mx[i], std::max(x, 0));
        EXPECT_EQ(ab[i], std::abs(x));
        EXPECT_EQ(ng[i], -x);
    }
}

TEST(SimdArith, AbdAndAba)
{
    auto a = vdup<uint8_t, 128>(uint8_t(10));
    auto b = vdup<uint8_t, 128>(uint8_t(14));
    EXPECT_EQ(vabd(a, b)[0], 4);
    EXPECT_EQ(vabd(b, a)[0], 4);
    auto acc = vdup<uint8_t, 128>(uint8_t(1));
    EXPECT_EQ(vaba(acc, a, b)[0], 5);
}

TEST(SimdArith, HalvingAdds)
{
    auto a = vdup<uint8_t, 128>(uint8_t(255));
    auto b = vdup<uint8_t, 128>(uint8_t(254));
    EXPECT_EQ(vhadd(a, b)[0], uint8_t((255 + 254) >> 1));
    EXPECT_EQ(vrhadd(a, b)[0], uint8_t((255 + 254 + 1) >> 1));
}

TEST(SimdArith, SaturatingAddSub)
{
    auto big = vdup<int16_t, 128>(int16_t(32000));
    auto r = vqadd(big, big);
    EXPECT_EQ(r[0], 32767);
    auto small = vdup<int16_t, 128>(int16_t(-32000));
    EXPECT_EQ(vqsub(small, big)[0], -32768);
    auto u = vdup<uint8_t, 128>(uint8_t(3));
    auto v = vdup<uint8_t, 128>(uint8_t(5));
    EXPECT_EQ(vqsub(u, v)[0], 0); // unsigned floor
}

TEST(SimdArith, QdmulhMatchesReference)
{
    auto a = vdup<int16_t, 128>(int16_t(12345));
    auto b = vdup<int16_t, 128>(int16_t(-23456));
    const int64_t p = int64_t(12345) * -23456 * 2;
    EXPECT_EQ(vqdmulh(a, b)[0], int16_t(p >> 16));
    const int64_t pr = p + (1 << 15);
    EXPECT_EQ(vqrdmulh(a, b)[0], int16_t(pr >> 16));
}

TEST(SimdArith, LogicOps)
{
    auto a = vdup<uint32_t, 128>(0xf0f0f0f0u);
    auto b = vdup<uint32_t, 128>(0x0ff00ff0u);
    EXPECT_EQ(vand(a, b)[0], 0xf0f0f0f0u & 0x0ff00ff0u);
    EXPECT_EQ(vorr(a, b)[0], 0xf0f0f0f0u | 0x0ff00ff0u);
    EXPECT_EQ(veor(a, b)[0], 0xf0f0f0f0u ^ 0x0ff00ff0u);
    EXPECT_EQ(vbic(a, b)[0], 0xf0f0f0f0u & ~0x0ff00ff0u);
    EXPECT_EQ(vmvn(a)[0], ~0xf0f0f0f0u);
}

TEST(SimdArith, Shifts)
{
    auto a = vdup<int32_t, 128>(-256);
    EXPECT_EQ(vshl(a, 2)[0], -1024);
    EXPECT_EQ(vshr(a, 4)[0], -16); // arithmetic
    EXPECT_EQ(vrshr(a, 3)[0], (-256 + 4) >> 3);
    auto acc = vdup<int32_t, 128>(100);
    EXPECT_EQ(vsra(acc, a, 4)[0], 100 - 16);
}

TEST(SimdArith, CompareProducesAllOnesMask)
{
    auto a = iota<int32_t, 128>(0); // 0,1,2,3
    auto b = vdup<int32_t, 128>(2);
    auto gt = vcgt(a, b);
    EXPECT_EQ(gt[0], 0u);
    EXPECT_EQ(gt[3], 0xffffffffu);
    auto le = vcle(a, b);
    EXPECT_EQ(le[0], 0xffffffffu);
    EXPECT_EQ(le[3], 0u);
}

TEST(SimdArith, BslSelectsBitwise)
{
    auto m = vdup<uint32_t, 128>(0x00ff00ffu);
    auto a = vdup<uint32_t, 128>(0xaaaaaaaau);
    auto b = vdup<uint32_t, 128>(0x55555555u);
    EXPECT_EQ(vbsl(m, a, b)[0],
              (0xaaaaaaaau & 0x00ff00ffu) | (0x55555555u & ~0x00ff00ffu));
}

TEST(SimdArith, FloatCompareAndBsl)
{
    auto a = vdup<float, 128>(1.5f);
    auto b = vdup<float, 128>(2.5f);
    auto m = vclt(a, b);
    EXPECT_EQ(m[0], 0xffffffffu);
    auto sel = vbsl(m, a, b);
    EXPECT_FLOAT_EQ(sel[0], 1.5f);
}

TEST(SimdArith, FmaFloat)
{
    auto acc = vdup<float, 128>(1.0f);
    auto a = vdup<float, 128>(2.0f);
    auto b = vdup<float, 128>(3.0f);
    EXPECT_FLOAT_EQ(vmla(acc, a, b)[0], 7.0f);
    EXPECT_FLOAT_EQ(vmls(acc, a, b)[0], -5.0f);
    EXPECT_FLOAT_EQ(vdiv(a, b)[0], 2.0f / 3.0f);
}

// --- Property-style sweeps over widths -------------------------------

template <typename P>
class SimdWidthTest : public ::testing::Test
{
};

struct W128 { static constexpr int kBits = 128; };
struct W256 { static constexpr int kBits = 256; };
struct W512 { static constexpr int kBits = 512; };
struct W1024 { static constexpr int kBits = 1024; };
using Widths = ::testing::Types<W128, W256, W512, W1024>;
TYPED_TEST_SUITE(SimdWidthTest, Widths);

TYPED_TEST(SimdWidthTest, LaneCountsScaleWithWidth)
{
    constexpr int b = TypeParam::kBits;
    EXPECT_EQ((Vec<uint8_t, b>::kLanes), b / 8);
    EXPECT_EQ((Vec<int16_t, b>::kLanes), b / 16);
    EXPECT_EQ((Vec<float, b>::kLanes), b / 32);
    EXPECT_EQ((Vec<Half, b>::kLanes), b / 16);
}

TYPED_TEST(SimdWidthTest, AddIsLanewiseAtEveryWidth)
{
    constexpr int b = TypeParam::kBits;
    auto a = iota<uint16_t, b>(uint16_t(1));
    auto s = vadd(a, a);
    for (int i = 0; i < Vec<uint16_t, b>::kLanes; ++i)
        EXPECT_EQ(s[i], uint16_t(2 * (i + 1)));
}

TYPED_TEST(SimdWidthTest, DupFillsAllLanes)
{
    constexpr int b = TypeParam::kBits;
    auto v = vdup<int32_t, b>(42);
    for (int i = 0; i < Vec<int32_t, b>::kLanes; ++i)
        EXPECT_EQ(v[i], 42);
}

TEST(SimdArith, TracingAssignsMonotonicIds)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    auto a = vdup<int32_t, 128>(1);
    auto b = vdup<int32_t, 128>(2);
    auto c = vadd(a, b);
    EXPECT_GT(a.src, 0u);
    EXPECT_GT(b.src, a.src);
    EXPECT_GT(c.src, b.src);
    const auto &instr = rec.instrs().back();
    EXPECT_EQ(instr.dep0, a.src);
    EXPECT_EQ(instr.dep1, b.src);
    EXPECT_EQ(instr.cls, trace::InstrClass::VInt);
}

TEST(SimdArith, NoTracingMeansNoIds)
{
    auto a = vdup<int32_t, 128>(1);
    EXPECT_EQ(a.src, 0u);
}
