/**
 * @file
 * Integration tests of the measurement harness: trace capture through
 * the Workload interface, end-to-end comparisons, and sanity of the
 * derived metrics (speedups, instruction reduction, energy) on real
 * kernels at tiny input sizes.
 */

#include <gtest/gtest.h>

#include "core/metrics.hh"
#include "core/registry.hh"
#include "core/runner.hh"
#include "sim/configs.hh"

using namespace swan;

namespace
{

core::Options
tinyOptions()
{
    core::Options o;
    o.imageWidth = 64;
    o.imageHeight = 32;
    o.audioSamples = 512;
    o.bufferBytes = 2048;
    o.gemmM = 8;
    o.gemmN = 12;
    o.gemmK = 16;
    o.videoBlocks = 2;
    return o;
}

} // namespace

TEST(Runner, CaptureProducesNonEmptyTraces)
{
    const auto *spec = core::Registry::instance().find("ZL/adler32");
    ASSERT_NE(spec, nullptr);
    auto w = spec->make(tinyOptions());
    auto scalar = core::Runner::capture(*w, core::Impl::Scalar);
    auto neon = core::Runner::capture(*w, core::Impl::Neon);
    EXPECT_GT(scalar.size(), 0u);
    EXPECT_GT(neon.size(), 0u);
    EXPECT_LT(neon.size(), scalar.size()); // vector reduces instructions
    EXPECT_TRUE(w->verify());
}

TEST(Runner, TraceIdsAreProgramOrder)
{
    const auto *spec = core::Registry::instance().find("OR/memcpy");
    ASSERT_NE(spec, nullptr);
    auto w = spec->make(tinyOptions());
    auto instrs = core::Runner::capture(*w, core::Impl::Neon);
    for (size_t i = 0; i < instrs.size(); ++i) {
        EXPECT_EQ(instrs[i].id, i + 1);
        EXPECT_LE(instrs[i].dep0, instrs[i].id);
        EXPECT_LE(instrs[i].dep1, instrs[i].id);
        EXPECT_LE(instrs[i].dep2, instrs[i].id);
    }
}

TEST(Runner, ComparisonMetricsSane)
{
    core::Runner runner(tinyOptions());
    const auto *spec = core::Registry::instance().find("ZL/crc32");
    ASSERT_NE(spec, nullptr);
    auto c = runner.compare(*spec, sim::primeConfig());
    EXPECT_TRUE(c.verified);
    EXPECT_GT(c.neonSpeedup(), 1.0);
    EXPECT_GT(c.instrReduction(), 1.0);
    EXPECT_GT(c.neonEnergyImprovement(), 1.0);
    EXPECT_GT(c.scalar.sim.powerW, 0.1);
    EXPECT_LT(c.scalar.sim.powerW, 10.0);
}

TEST(Runner, AutoDefaultsToScalarWhenVectorizationFails)
{
    core::Runner runner(tinyOptions());
    // adler32's verdict is "does not vectorize" with no dedicated Auto
    // implementation, so Auto == Scalar instruction-for-instruction.
    const auto *spec = core::Registry::instance().find("ZL/adler32");
    auto c = runner.compare(*spec, sim::primeConfig());
    EXPECT_EQ(c.autovec.mix.total(), c.scalar.mix.total());
    EXPECT_NEAR(c.autoSpeedup(), 1.0, 0.02);
}

TEST(Runner, VectorizedAutoBeatsScalar)
{
    core::Runner runner(tinyOptions());
    const auto *spec = core::Registry::instance().find("LP/defilter_up");
    ASSERT_NE(spec, nullptr);
    ASSERT_TRUE(spec->info.autovec.vectorizes);
    auto c = runner.compare(*spec, sim::primeConfig());
    EXPECT_GT(c.autoSpeedup(), 1.05);
}

TEST(Runner, GeomeanHelpers)
{
    EXPECT_DOUBLE_EQ(core::geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(core::geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(core::mean({1.0, 3.0}), 2.0);
}

TEST(Runner, SummaryGroupsByLibrary)
{
    core::Runner runner(tinyOptions());
    std::vector<core::Comparison> comps;
    for (const char *name : {"ZL/adler32", "ZL/crc32", "OR/memcpy"}) {
        const auto *spec = core::Registry::instance().find(name);
        ASSERT_NE(spec, nullptr) << name;
        comps.push_back(runner.compareScalarNeon(*spec,
                                                 sim::primeConfig()));
    }
    auto summary = core::summarizeByLibrary(comps);
    ASSERT_EQ(summary.size(), 2u);
    EXPECT_EQ(summary[0].symbol, "ZL");
    EXPECT_EQ(summary[0].kernels, 2);
    EXPECT_EQ(summary[1].symbol, "OR");
    EXPECT_GT(summary[0].neonSpeedup, 1.0);
}

TEST(Runner, SilverVsPrimeEnergy)
{
    core::Runner runner(tinyOptions());
    const auto *spec = core::Registry::instance().find("WA/gain_node");
    auto prime = runner.compareScalarNeon(*spec, sim::primeConfig());
    auto silver = runner.compareScalarNeon(*spec, sim::silverConfig());
    // Both cores should show Neon gains; Prime runs are faster in
    // absolute time.
    EXPECT_GT(prime.neonSpeedup(), 1.2);
    EXPECT_GT(silver.neonSpeedup(), 1.0);
    EXPECT_LT(prime.neon.sim.timeSec, silver.neon.sim.timeSec);
}
