/**
 * @file
 * Tests of the scheduler's packed-trace memo (sweep/scheduler.hh):
 * SWAN_TRACE_MEMO_BYTES parsing, byte-identical sweep results whatever
 * the memo byte budget (tiny = every trace spills to disk and is
 * reloaded for simulation, huge / unset = nothing spills) at several
 * job counts, and the on-disk packed-trace cache tier serving
 * captures to later sweeps.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "sweep/cache.hh"
#include "sweep/emit.hh"
#include "sweep/scheduler.hh"

using namespace swan;

namespace
{

sweep::SweepSpec
memoGrid()
{
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32", "ZL/crc32", "OR/memcpy"};
    spec.impls = {core::Impl::Scalar, core::Impl::Neon};
    spec.configs = {"prime", "silver"};
    spec.workingSets = {"tiny"};
    return spec;
}

std::string
render(const std::vector<sweep::SweepResult> &results)
{
    std::ostringstream os;
    sweep::emitResults(os, results, sweep::Format::JsonLines);
    return os.str();
}

std::string
runWith(const std::vector<sweep::SweepPoint> &points, int jobs,
        uint64_t memo_bytes, sweep::ResultCache *cache = nullptr,
        int warmup_passes = 1)
{
    sweep::SchedulerConfig sc;
    sc.jobs = jobs;
    sc.traceMemoBytes = memo_bytes;
    sc.cache = cache;
    sc.warmupPasses = warmup_passes;
    return render(sweep::runSweep(points, sc));
}

std::string
tempDir(const char *tag)
{
    const auto d = std::filesystem::temp_directory_path() /
                   (std::string("swan_sweep_memo_") + tag + "_" +
                    std::to_string(::getpid()));
    std::filesystem::remove_all(d);
    return d.string();
}

} // namespace

TEST(TraceMemo, EnvBudgetParsing)
{
    ::unsetenv("SWAN_TRACE_MEMO_BYTES");
    EXPECT_EQ(sweep::SchedulerConfig::envTraceMemoBytes(), 0u);
    ::setenv("SWAN_TRACE_MEMO_BYTES", "1048576", 1);
    EXPECT_EQ(sweep::SchedulerConfig::envTraceMemoBytes(), 1048576u);
    EXPECT_EQ(sweep::SchedulerConfig().traceMemoBytes, 1048576u);
    ::setenv("SWAN_TRACE_MEMO_BYTES", "not-a-number", 1);
    EXPECT_EQ(sweep::SchedulerConfig::envTraceMemoBytes(), 0u);
    ::unsetenv("SWAN_TRACE_MEMO_BYTES");
}

TEST(TraceMemo, EvictionIsDeterministicAcrossBudgets)
{
    std::string err;
    auto points = sweep::expand(memoGrid(), &err);
    ASSERT_FALSE(points.empty()) << err;

    // A 1-byte budget spills every captured trace to disk (the
    // simulation phase reloads them); a huge budget and an unset
    // (unlimited) budget never evict. All must produce byte-identical
    // reports at every job count.
    //
    // The budget runs replay traces served from the on-disk trace tier
    // (primed once below, with a different warm-up-pass count so the
    // RESULT cache never hits and every run actually simulates): with
    // the instruction streams pinned on disk, any output difference
    // can only come from the spill/eviction machinery itself, which is
    // exactly the property under test. Fresh captures are covered by
    // the scheduler determinism tests; their absolute cycle counts are
    // additionally sensitive to the process's allocator history (see
    // docs/sweep.md), which a budget comparison must not conflate.
    const auto dir = tempDir("budgets");
    {
        sweep::ResultCache prime(dir);
        runWith(points, 2, 0, &prime, /*warmup_passes=*/2);
        ASSERT_EQ(prime.stats().traceStores, 6u);
    }

    std::string base;
    for (int jobs : {1, 2, 4}) {
        for (uint64_t budget :
             {uint64_t(0), uint64_t(1), uint64_t(1) << 40}) {
            // Drop stored results (keep the traces) so every run
            // simulates instead of replaying the result cache.
            for (const auto &e :
                 std::filesystem::directory_iterator(dir))
                if (e.path().extension() == ".swr")
                    std::filesystem::remove(e.path());
            sweep::ResultCache cache(dir); // fresh: no in-memory hits
            const auto out =
                runWith(points, jobs, budget, &cache);
            EXPECT_EQ(cache.stats().traceHits, 6u)
                << "jobs=" << jobs << " budget=" << budget;
            if (base.empty())
                base = out;
            else
                EXPECT_EQ(base, out)
                    << "jobs=" << jobs << " budget=" << budget;
        }
    }
    std::filesystem::remove_all(dir);
}

TEST(TraceMemo, TinyBudgetStillServesEveryPoint)
{
    std::string err;
    auto points = sweep::expand(memoGrid(), &err);
    ASSERT_FALSE(points.empty()) << err;

    sweep::SchedulerConfig sc;
    sc.jobs = 4;
    sc.traceMemoBytes = 1;
    auto results = sweep::runSweep(points, sc);
    ASSERT_EQ(results.size(), points.size());
    for (const auto &r : results) {
        EXPECT_GT(r.run.sim.cycles, 0u);
        EXPECT_GT(r.run.mix.total(), 0u);
    }
}

TEST(TraceTier, ServesCapturesAcrossSweeps)
{
    const auto dir = tempDir("tier");
    std::string err;

    // Sweep 1: prime only — captures stored to the trace tier.
    sweep::SweepSpec first = memoGrid();
    first.configs = {"prime"};
    auto firstPoints = sweep::expand(first, &err);
    ASSERT_FALSE(firstPoints.empty()) << err;
    {
        sweep::ResultCache cache(dir);
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        sweep::runSweep(firstPoints, sc);
        const auto stats = cache.stats();
        EXPECT_EQ(stats.traceHits, 0u);
        EXPECT_EQ(stats.traceMisses, 6u); // one per (kernel, impl)
        EXPECT_EQ(stats.traceStores, 6u);
    }

    // Sweep 2, fresh process-side caches: silver only. Every result is
    // a result-cache miss, but every capture comes off the trace tier.
    sweep::SweepSpec second = memoGrid();
    second.configs = {"silver"};
    auto secondPoints = sweep::expand(second, &err);
    ASSERT_FALSE(secondPoints.empty()) << err;
    {
        sweep::ResultCache cache(dir);
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        auto results = sweep::runSweep(secondPoints, sc);
        const auto stats = cache.stats();
        EXPECT_EQ(stats.misses, secondPoints.size());
        EXPECT_EQ(stats.traceHits, 6u);
        EXPECT_EQ(stats.traceMisses, 0u);
        for (const auto &r : results) {
            EXPECT_GT(r.run.sim.cycles, 0u);
            EXPECT_GT(r.run.mix.total(), 0u);
        }
    }
    std::filesystem::remove_all(dir);
}

TEST(TraceTier, CorruptEntryDegradesToCapture)
{
    const auto dir = tempDir("corrupt");
    std::string err;
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32"};
    spec.workingSets = {"tiny"};
    auto points = sweep::expand(spec, &err);
    ASSERT_EQ(points.size(), 1u) << err;

    {
        sweep::ResultCache cache(dir);
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        sweep::runSweep(points, sc);
        EXPECT_EQ(cache.stats().traceStores, 1u);
    }

    // Truncate the stored trace: the next sweep must fall back to a
    // fresh capture (trace miss), not fail or mis-simulate. Sweep a
    // different core config so the result cache misses and the trace
    // tier is actually consulted.
    const auto key = sweep::traceKeyFor(points[0]);
    const auto path = std::filesystem::path(dir) / (key.hex() + ".swtp");
    ASSERT_TRUE(std::filesystem::exists(path));
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << "SWTPgarbage";
    }
    spec.configs = {"silver"};
    auto silverPoints = sweep::expand(spec, &err);
    ASSERT_EQ(silverPoints.size(), 1u) << err;
    sweep::ResultCache cache(dir);
    sweep::SchedulerConfig sc;
    sc.cache = &cache;
    auto results = sweep::runSweep(silverPoints, sc);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].run.sim.cycles, 0u);
    EXPECT_EQ(cache.stats().traceHits, 0u);
    EXPECT_EQ(cache.stats().traceMisses, 1u);
    std::filesystem::remove_all(dir);
}

TEST(TraceTier, TraceKeyIdentity)
{
    std::string err;
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32"};
    spec.workingSets = {"tiny"};
    auto points = sweep::expand(spec, &err);
    ASSERT_EQ(points.size(), 1u) << err;

    const auto k1 = sweep::traceKeyFor(points[0]);
    const auto k2 = sweep::traceKeyFor(points[0]);
    EXPECT_TRUE(k1 == k2);
    EXPECT_EQ(k1.hash(), k2.hash());
    EXPECT_EQ(k1.hex().size(), 16u);

    auto other = k1;
    other.vecBits = 256;
    EXPECT_FALSE(k1 == other);
    EXPECT_NE(k1.hash(), other.hash());
    // Trace keys and result keys must never collide on disk.
    EXPECT_NE(k1.hex(), sweep::keyFor(points[0], 1).hex());
}
