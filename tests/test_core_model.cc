/**
 * @file
 * Tests for the trace-driven core models: IPC limits, dataflow
 * serialization, functional-unit contention, ASIMD-unit scaling,
 * in-order vs out-of-order behavior, warm-up measurement windows and
 * branch-misprediction front-end stalls.
 */

#include <gtest/gtest.h>

#include "sim/core_model.hh"
#include "simd/emit.hh"

using namespace swan;
using namespace swan::sim;
using trace::Fu;
using trace::Instr;
using trace::InstrClass;

namespace
{

Instr
alu(uint64_t id, uint64_t dep = 0)
{
    Instr i;
    i.id = id;
    i.cls = InstrClass::SInt;
    i.fu = Fu::SAlu;
    i.latency = 1;
    i.dep0 = dep;
    return i;
}

Instr
vecOp(uint64_t id, uint64_t dep = 0, int lat = 2)
{
    Instr i;
    i.id = id;
    i.cls = InstrClass::VInt;
    i.fu = Fu::VUnit;
    i.latency = uint8_t(lat);
    i.dep0 = dep;
    return i;
}

std::vector<Instr>
independentAlus(int n)
{
    std::vector<Instr> v;
    for (int i = 1; i <= n; ++i)
        v.push_back(alu(uint64_t(i)));
    return v;
}

} // namespace

TEST(CoreModel, IpcBoundedByDecodeWidth)
{
    auto cfg = primeConfig();
    auto res = simulateTrace(independentAlus(10000), cfg, 0);
    EXPECT_LE(res.ipc, double(cfg.decodeWidth) + 0.01);
    // Independent 1-cycle ALUs on 3 units, 4-wide decode -> IPC ~3.
    EXPECT_GT(res.ipc, 2.5);
}

TEST(CoreModel, DependencyChainSerializes)
{
    std::vector<Instr> chain;
    for (int i = 1; i <= 5000; ++i)
        chain.push_back(vecOp(uint64_t(i), uint64_t(i - 1), 4));
    auto res = simulateTrace(chain, primeConfig(), 0);
    // Each op waits 4 cycles for its producer.
    EXPECT_GT(double(res.cycles), 4.0 * 5000 * 0.9);
}

TEST(CoreModel, IndependentOpsOverlapDespiteStalledElders)
{
    // One long-latency chain interleaved with independent work: the
    // independent ops must not be blocked (out-of-order issue).
    std::vector<Instr> mix;
    uint64_t id = 0;
    uint64_t prev_chain = 0;
    for (int i = 0; i < 2000; ++i) {
        Instr c = vecOp(++id, prev_chain, 4);
        prev_chain = c.id;
        mix.push_back(c);
        for (int j = 0; j < 3; ++j)
            mix.push_back(alu(++id));
    }
    auto res = simulateTrace(mix, primeConfig(), 0);
    // Chain alone needs 4 cycles per link; the 3 ALUs fit inside.
    EXPECT_GT(res.ipc, 0.9);
}

TEST(CoreModel, MoreVectorUnitsHelpOnlyParallelWork)
{
    // 8 independent vector streams (ILP 4 with latency-2 ops).
    std::vector<Instr> par;
    uint64_t id = 0;
    uint64_t last[8] = {};
    for (int i = 0; i < 8000; ++i) {
        const int s = i % 8;
        Instr v = vecOp(++id, last[s], 2);
        last[s] = v.id;
        par.push_back(v);
    }
    auto two = simulateTrace(par, scalabilityConfig(4, 2), 0);
    auto eight = simulateTrace(par, scalabilityConfig(8, 8), 0);
    EXPECT_GT(double(two.cycles) / double(eight.cycles), 1.5);

    // A single serial chain gains nothing from more units.
    std::vector<Instr> chain;
    for (int i = 1; i <= 4000; ++i)
        chain.push_back(vecOp(uint64_t(i), uint64_t(i - 1), 2));
    auto c2 = simulateTrace(chain, scalabilityConfig(4, 2), 0);
    auto c8 = simulateTrace(chain, scalabilityConfig(8, 8), 0);
    EXPECT_NEAR(double(c2.cycles) / double(c8.cycles), 1.0, 0.05);
}

TEST(CoreModel, InOrderSlowerThanOutOfOrder)
{
    // Loads followed by dependent work, then independent work: the
    // in-order core stalls on use.
    std::vector<Instr> prog;
    uint64_t id = 0;
    for (int i = 0; i < 1000; ++i) {
        Instr ld;
        ld.id = ++id;
        ld.cls = InstrClass::SLoad;
        ld.fu = Fu::Load;
        ld.latency = 4;
        ld.addr = 0x100000 + uint64_t(i) * 64;
        ld.size = 4;
        prog.push_back(ld);
        prog.push_back(alu(++id, ld.id));
        prog.push_back(alu(++id));
        prog.push_back(alu(++id));
    }
    auto ooo = simulateTrace(prog, primeConfig(), 1);
    auto io = simulateTrace(prog, silverConfig(), 1);
    EXPECT_LT(ooo.cycles, io.cycles);
}

TEST(CoreModel, WarmupRemovesColdMisses)
{
    std::vector<Instr> loads;
    uint64_t id = 0;
    for (int i = 0; i < 256; ++i) {
        Instr ld;
        ld.id = ++id;
        ld.cls = InstrClass::SLoad;
        ld.fu = Fu::Load;
        ld.latency = 4;
        ld.addr = 0x200000 + uint64_t(i) * 64;
        ld.size = 4;
        loads.push_back(ld);
    }
    auto cold = simulateTrace(loads, primeConfig(), 0);
    auto warm = simulateTrace(loads, primeConfig(), 1);
    EXPECT_LT(warm.l1Mpki, cold.l1Mpki);
    EXPECT_LE(warm.cycles, cold.cycles);
}

TEST(CoreModel, BranchMispredictionsCauseFrontEndStalls)
{
    std::vector<Instr> prog;
    uint64_t id = 0;
    for (int i = 0; i < 20000; ++i) {
        prog.push_back(alu(++id));
        Instr br;
        br.id = ++id;
        br.cls = InstrClass::Branch;
        br.fu = Fu::Branch;
        br.latency = 1;
        prog.push_back(br);
    }
    auto res = simulateTrace(prog, primeConfig(), 0);
    EXPECT_GT(res.feStallPct, 0.0);
    EXPECT_LE(res.feStallPct, 100.0);
    // With mispredictions disabled the front-end never stalls.
    auto perfect = primeConfig();
    perfect.branchMispredictRate = 0.0;
    auto res2 = simulateTrace(prog, perfect, 0);
    EXPECT_DOUBLE_EQ(res2.feStallPct, 0.0);
    EXPECT_LT(res2.cycles, res.cycles);
}

TEST(CoreModel, StallPercentagesWellFormed)
{
    auto res = simulateTrace(independentAlus(5000), primeConfig(), 0);
    EXPECT_GE(res.feStallPct, 0.0);
    EXPECT_GE(res.beStallPct, 0.0);
    EXPECT_LE(res.feStallPct + res.beStallPct, 100.0 + 1e-6);
}

TEST(CoreModel, MeasurementWindowExcludesWarmupCounts)
{
    auto trace = independentAlus(1000);
    CoreModel model(primeConfig());
    for (const auto &i : trace)
        model.onInstr(i);
    model.beginMeasurement();
    for (const auto &i : trace)
        model.onInstr(i);
    auto res = model.finish();
    EXPECT_EQ(res.instrs, 1000u);
    EXPECT_EQ(res.byClass[size_t(InstrClass::SInt)], 1000u);
}

TEST(CoreModel, UnpipelinedDivideOccupiesUnit)
{
    // Back-to-back independent divides on the single SMul unit.
    std::vector<Instr> divs;
    for (int i = 1; i <= 500; ++i) {
        Instr d;
        d.id = uint64_t(i);
        d.cls = InstrClass::SInt;
        d.fu = Fu::SMul;
        d.latency = 12;
        divs.push_back(d);
    }
    auto res = simulateTrace(divs, primeConfig(), 0);
    EXPECT_GT(res.cycles, 500u * 11);
}

TEST(CoreModel, TimeScalesWithFrequency)
{
    auto trace = independentAlus(10000);
    auto prime = simulateTrace(trace, primeConfig(), 0);
    auto gold = simulateTrace(trace, goldConfig(), 0);
    EXPECT_EQ(prime.cycles, gold.cycles); // same microarchitecture
    EXPECT_LT(prime.timeSec, gold.timeSec);
}
