/**
 * @file
 * Tests for the on-disk trace format (trace/serialize.hh): lossless
 * round-trips over randomized records, streaming TraceFileSink with
 * header patching, and rejection of malformed files (bad magic, wrong
 * version, truncation, corrupt enums).
 */

#include <cstdio>
#include <unistd.h>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/serialize.hh"

using namespace swan;
using trace::Instr;

namespace
{

/** Unique temp path per test; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_((std::filesystem::temp_directory_path() /
                 ("swan_trace_" + tag + "_" +
                  std::to_string(::getpid()) + ".swt"))
                    .string())
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Deterministic pseudo-random instruction record. */
Instr
randomInstr(uint64_t seed)
{
    auto next = [&seed]() {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        return seed;
    };
    Instr i;
    i.id = next() % 100000;
    i.dep0 = next() % 1000;
    i.dep1 = next() % 1000;
    i.dep2 = next() % 1000;
    i.addr = next();
    i.addr2 = next();
    i.size = uint32_t(next() % 256);
    i.elemStride = int32_t(next() % 64) - 32;
    i.cls = trace::InstrClass(next() %
                              uint64_t(trace::InstrClass::NumClasses));
    i.fu = trace::Fu(next() % uint64_t(trace::Fu::NumFus));
    i.latency = uint8_t(next() % 32);
    i.vecBytes = uint8_t(next() % 129);
    i.lanes = uint8_t(next() % 65);
    i.activeLanes = uint8_t(next() % 65);
    i.stride = trace::StrideKind(next() %
                                 uint64_t(trace::StrideKind::NumKinds));
    return i;
}

bool
sameInstr(const Instr &a, const Instr &b)
{
    return a.id == b.id && a.dep0 == b.dep0 && a.dep1 == b.dep1 &&
           a.dep2 == b.dep2 && a.addr == b.addr && a.addr2 == b.addr2 &&
           a.size == b.size && a.elemStride == b.elemStride &&
           a.cls == b.cls && a.fu == b.fu && a.latency == b.latency &&
           a.vecBytes == b.vecBytes && a.lanes == b.lanes &&
           a.activeLanes == b.activeLanes && a.stride == b.stride;
}

} // namespace

// ---------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------

TEST(TraceSerialize, EmptyTraceRoundTrips)
{
    TempFile tmp("empty");
    ASSERT_TRUE(trace::writeTrace(tmp.path(), {}));
    auto back = trace::readTrace(tmp.path());
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->empty());
}

TEST(TraceSerialize, SingleRecordRoundTrips)
{
    TempFile tmp("one");
    std::vector<Instr> t{randomInstr(42)};
    ASSERT_TRUE(trace::writeTrace(tmp.path(), t));
    auto back = trace::readTrace(tmp.path());
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), 1u);
    EXPECT_TRUE(sameInstr(t[0], (*back)[0]));
}

class TraceRoundTrip : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(TraceRoundTrip, RandomTraceIsLossless)
{
    TempFile tmp("rt" + std::to_string(GetParam()));
    std::vector<Instr> t;
    for (uint64_t i = 0; i < 100 + GetParam() * 37; ++i)
        t.push_back(randomInstr(GetParam() * 1000 + i));
    ASSERT_TRUE(trace::writeTrace(tmp.path(), t));
    auto back = trace::readTrace(tmp.path());
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), t.size());
    for (size_t i = 0; i < t.size(); ++i)
        ASSERT_TRUE(sameInstr(t[i], (*back)[i])) << "record " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 7u, 19u));

// ---------------------------------------------------------------------
// Streaming sink.
// ---------------------------------------------------------------------

TEST(TraceFileSink, StreamsAndPatchesCount)
{
    TempFile tmp("sink");
    std::vector<Instr> t;
    for (int i = 0; i < 257; ++i)
        t.push_back(randomInstr(uint64_t(i)));
    {
        trace::TraceFileSink sink(tmp.path());
        ASSERT_TRUE(sink.ok());
        for (const auto &i : t)
            sink.onInstr(i);
        EXPECT_EQ(sink.count(), 257u);
        EXPECT_TRUE(sink.close());
    }
    auto back = trace::readTrace(tmp.path());
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), t.size());
    for (size_t i = 0; i < t.size(); ++i)
        ASSERT_TRUE(sameInstr(t[i], (*back)[i]));
}

TEST(TraceFileSink, UnopenableePathReportsNotOk)
{
    trace::TraceFileSink sink("/nonexistent_dir_xyz/trace.swt");
    EXPECT_FALSE(sink.ok());
    sink.onInstr(randomInstr(1)); // must not crash
    EXPECT_EQ(sink.count(), 0u);
}

// ---------------------------------------------------------------------
// Malformed inputs.
// ---------------------------------------------------------------------

TEST(TraceSerializeErrors, MissingFile)
{
    std::string err;
    auto r = trace::readTrace("/no/such/file.swt", &err);
    EXPECT_FALSE(r.has_value());
    EXPECT_NE(err.find("cannot open"), std::string::npos);
}

TEST(TraceSerializeErrors, BadMagicRejected)
{
    TempFile tmp("magic");
    std::ofstream(tmp.path(), std::ios::binary)
        << "NOPE this is not a trace file at all................";
    std::string err;
    auto r = trace::readTrace(tmp.path(), &err);
    EXPECT_FALSE(r.has_value());
    EXPECT_NE(err.find("bad magic"), std::string::npos);
}

TEST(TraceSerializeErrors, TruncatedHeaderRejected)
{
    TempFile tmp("hdr");
    std::ofstream(tmp.path(), std::ios::binary) << "SWT";
    std::string err;
    auto r = trace::readTrace(tmp.path(), &err);
    EXPECT_FALSE(r.has_value());
    EXPECT_NE(err.find("truncated header"), std::string::npos);
}

TEST(TraceSerializeErrors, TruncatedBodyRejected)
{
    TempFile tmp("body");
    std::vector<Instr> t{randomInstr(1), randomInstr(2), randomInstr(3)};
    ASSERT_TRUE(trace::writeTrace(tmp.path(), t));
    // Chop the last record in half.
    std::filesystem::resize_file(
        tmp.path(), std::filesystem::file_size(tmp.path()) - 32);
    std::string err;
    auto r = trace::readTrace(tmp.path(), &err);
    EXPECT_FALSE(r.has_value());
    EXPECT_NE(err.find("truncated body"), std::string::npos);
}

TEST(TraceSerializeErrors, WrongVersionRejected)
{
    TempFile tmp("ver");
    ASSERT_TRUE(trace::writeTrace(tmp.path(), {randomInstr(1)}));
    // Bump the version field (offset 4).
    std::fstream f(tmp.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4);
    uint32_t v = trace::kTraceFormatVersion + 1;
    f.write(reinterpret_cast<const char *>(&v), 4);
    f.close();
    std::string err;
    auto r = trace::readTrace(tmp.path(), &err);
    EXPECT_FALSE(r.has_value());
    EXPECT_NE(err.find("unsupported trace version"), std::string::npos);
}

TEST(TraceSerializeErrors, CorruptEnumRejected)
{
    TempFile tmp("enum");
    ASSERT_TRUE(trace::writeTrace(tmp.path(), {randomInstr(1)}));
    // The InstrClass byte lives at header(16) + offset 56 in the record.
    std::fstream f(tmp.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(16 + 56);
    char bad = 127;
    f.write(&bad, 1);
    f.close();
    std::string err;
    auto r = trace::readTrace(tmp.path(), &err);
    EXPECT_FALSE(r.has_value());
    EXPECT_NE(err.find("corrupt record"), std::string::npos);
}
