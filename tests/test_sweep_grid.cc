/**
 * @file
 * Tests of the declarative sweep grid (sweep/grid.hh): preset
 * resolution, filter semantics, expansion counts and ordering, and the
 * width/impl normalization rules.
 */

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "sweep/grid.hh"

using namespace swan;

namespace
{

size_t
headlineCount()
{
    size_t n = 0;
    for (const auto &k : core::Registry::instance().kernels())
        if (!k.info.excluded)
            ++n;
    return n;
}

size_t
widerCount()
{
    size_t n = 0;
    for (const auto &k : core::Registry::instance().kernels())
        if (!k.info.excluded && k.info.widerWidths)
            ++n;
    return n;
}

} // namespace

TEST(SweepGrid, ConfigPresets)
{
    sim::CoreConfig cfg;
    ASSERT_TRUE(sweep::configForName("prime", 128, &cfg));
    EXPECT_EQ(cfg.name, "prime");
    ASSERT_TRUE(sweep::configForName("silver", 128, &cfg));
    EXPECT_FALSE(cfg.outOfOrder);
    ASSERT_TRUE(sweep::configForName("wider", 512, &cfg));
    EXPECT_EQ(cfg.vecBits, 512);
    ASSERT_TRUE(sweep::configForName("4W-2V", 128, &cfg));
    EXPECT_EQ(cfg.decodeWidth, 4);
    EXPECT_EQ(cfg.vunits(), 2);
    ASSERT_TRUE(sweep::configForName("8W-8V", 128, &cfg));
    EXPECT_EQ(cfg.decodeWidth, 8);
    EXPECT_EQ(cfg.vunits(), 8);

    EXPECT_FALSE(sweep::configForName("copper", 128, &cfg));
    EXPECT_FALSE(sweep::configForName("W-V", 128, &cfg));
    EXPECT_FALSE(sweep::configForName("4W-2X", 128, &cfg));
    EXPECT_FALSE(sweep::configForName("4W-2V2", 128, &cfg));
}

TEST(SweepGrid, WorkingSetPresets)
{
    core::Options o;
    ASSERT_TRUE(sweep::workingSetForName("full", &o));
    EXPECT_EQ(o.imageWidth, 1280);
    ASSERT_TRUE(sweep::workingSetForName("tiny", &o));
    EXPECT_EQ(o.imageWidth, 96);
    ASSERT_TRUE(sweep::workingSetForName("scalability", &o));
    EXPECT_LE(o.imageWidth, 96);
    EXPECT_LE(o.bufferBytes, 16 * 1024);
    ASSERT_TRUE(sweep::workingSetForName("default", &o));
    EXPECT_FALSE(sweep::workingSetForName("huge", &o));
}

TEST(SweepGrid, DefaultSpecCoversHeadlineKernelsOnce)
{
    sweep::SweepSpec spec; // all headline kernels, Neon, 128, prime
    std::string err;
    auto points = sweep::expand(spec, &err);
    ASSERT_FALSE(points.empty()) << err;
    EXPECT_EQ(points.size(), headlineCount());
    for (size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].index, i);
        EXPECT_EQ(points[i].impl, core::Impl::Neon);
        EXPECT_EQ(points[i].vecBits, 128);
        EXPECT_EQ(points[i].configName, "prime");
        EXPECT_FALSE(points[i].spec->info.excluded);
    }
}

TEST(SweepGrid, WiderFilterAndWidthAxis)
{
    sweep::SweepSpec spec;
    spec.kernels.widerOnly = true;
    spec.vecBits = {128, 256, 512, 1024};
    spec.configs = {"wider"};
    std::string err;
    auto points = sweep::expand(spec, &err);
    ASSERT_FALSE(points.empty()) << err;
    EXPECT_EQ(points.size(), 4 * widerCount());
    // The "wider" preset follows the point's width.
    for (const auto &p : points)
        EXPECT_EQ(p.config.vecBits, p.vecBits);
}

TEST(SweepGrid, WideWidthsDroppedForNarrowKernels)
{
    // All headline kernels at two widths: narrow kernels contribute one
    // point, the Figure-5 kernels two.
    sweep::SweepSpec spec;
    spec.vecBits = {128, 256};
    std::string err;
    auto points = sweep::expand(spec, &err);
    ASSERT_FALSE(points.empty()) << err;
    EXPECT_EQ(points.size(), headlineCount() + widerCount());
}

TEST(SweepGrid, ScalarHasNoWidthAxis)
{
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32"};
    spec.impls = {core::Impl::Scalar, core::Impl::Neon};
    spec.vecBits = {128, 256, 512, 1024};
    spec.configs = {"wider"};
    std::string err;
    auto points = sweep::expand(spec, &err);
    ASSERT_FALSE(points.empty()) << err;
    // One scalar point (normalized to 128) + four Neon widths.
    EXPECT_EQ(points.size(), 5u);
    size_t scalar = 0;
    for (const auto &p : points)
        if (p.impl == core::Impl::Scalar) {
            ++scalar;
            EXPECT_EQ(p.vecBits, 128);
        }
    EXPECT_EQ(scalar, 1u);
}

TEST(SweepGrid, LibraryFilter)
{
    sweep::SweepSpec spec;
    spec.kernels.library = "ZL";
    std::string err;
    auto points = sweep::expand(spec, &err);
    ASSERT_FALSE(points.empty()) << err;
    for (const auto &p : points)
        EXPECT_EQ(p.spec->info.symbol, "ZL");
    EXPECT_EQ(points.size(),
              core::Registry::instance().bySymbol("ZL").size());
}

TEST(SweepGrid, ExplicitNamesBypassExcludedFlag)
{
    const core::KernelSpec *excluded = nullptr;
    for (const auto &k : core::Registry::instance().kernels())
        if (k.info.excluded)
            excluded = &k;
    ASSERT_NE(excluded, nullptr);

    sweep::SweepSpec spec;
    spec.kernels.names = {excluded->info.qualifiedName()};
    std::string err;
    auto points = sweep::expand(spec, &err);
    EXPECT_EQ(points.size(), 1u) << err;
}

TEST(SweepGrid, ErrorsAreReported)
{
    std::string err;
    sweep::SweepSpec spec;
    spec.kernels.names = {"no/such_kernel"};
    EXPECT_TRUE(sweep::expand(spec, &err).empty());
    EXPECT_NE(err.find("unknown kernel"), std::string::npos);

    spec = sweep::SweepSpec{};
    spec.configs = {"copper"};
    EXPECT_TRUE(sweep::expand(spec, &err).empty());
    EXPECT_NE(err.find("unknown core config"), std::string::npos);

    spec = sweep::SweepSpec{};
    spec.workingSets = {"huge"};
    EXPECT_TRUE(sweep::expand(spec, &err).empty());
    EXPECT_NE(err.find("unknown working set"), std::string::npos);

    spec = sweep::SweepSpec{};
    spec.vecBits = {192};
    EXPECT_TRUE(sweep::expand(spec, &err).empty());

    spec = sweep::SweepSpec{};
    spec.impls.clear();
    EXPECT_TRUE(sweep::expand(spec, &err).empty());

    spec = sweep::SweepSpec{};
    spec.kernels.library = "ZZ";
    EXPECT_TRUE(sweep::expand(spec, &err).empty());
    EXPECT_NE(err.find("matches no kernels"), std::string::npos);
}

TEST(SweepGrid, OrderingIsKernelMajorThenAxes)
{
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32", "ZL/crc32"};
    spec.configs = {"silver", "prime"};
    std::string err;
    auto points = sweep::expand(spec, &err);
    ASSERT_EQ(points.size(), 4u) << err;
    EXPECT_EQ(points[0].spec->info.name, "adler32");
    EXPECT_EQ(points[0].configName, "silver");
    EXPECT_EQ(points[1].spec->info.name, "adler32");
    EXPECT_EQ(points[1].configName, "prime");
    EXPECT_EQ(points[2].spec->info.name, "crc32");
    EXPECT_EQ(points[2].configName, "silver");
    EXPECT_EQ(points[3].spec->info.name, "crc32");
    EXPECT_EQ(points[3].configName, "prime");
}
