/**
 * @file
 * Tests for the emulated cryptography extension. AES round primitives
 * are checked against the FIPS-197 AES-128 known-answer vector by
 * composing them into a full encryption; CRC32 against known zlib
 * values; PMULL against carry-less multiplication identities; SHA-256
 * helpers against the NIST "abc" digest via the kernel-style round loop.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "simd/simd.hh"

using namespace swan;
using namespace swan::simd;

namespace
{

/** AES-128 key expansion (host-side reference). */
void
expandKey(const uint8_t key[16], uint8_t rk[11][16])
{
    static const uint8_t rcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                     0x20, 0x40, 0x80, 0x1b, 0x36};
    std::memcpy(rk[0], key, 16);
    for (int r = 1; r <= 10; ++r) {
        uint8_t t[4] = {rk[r - 1][13], rk[r - 1][14], rk[r - 1][15],
                        rk[r - 1][12]};
        for (int i = 0; i < 4; ++i)
            t[i] = crypto::kAesSbox[t[i]];
        t[0] ^= rcon[r - 1];
        for (int i = 0; i < 4; ++i)
            rk[r][i] = uint8_t(rk[r - 1][i] ^ t[i]);
        for (int i = 4; i < 16; ++i)
            rk[r][i] = uint8_t(rk[r - 1][i] ^ rk[r][i - 4]);
    }
}

Vec<uint8_t, 128>
loadBytes(const uint8_t *p)
{
    Vec<uint8_t, 128> v;
    for (int i = 0; i < 16; ++i)
        v.lane[size_t(i)] = p[i];
    return v;
}

} // namespace

TEST(SimdCrypto, Aes128Fips197KnownAnswer)
{
    // FIPS-197 Appendix B.
    const uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                             0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                             0x4f, 0x3c};
    const uint8_t plain[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                               0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                               0x07, 0x34};
    const uint8_t expect[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09,
                                0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                                0x0b, 0x32};
    uint8_t rk[11][16];
    expandKey(key, rk);

    auto state = loadBytes(plain);
    for (int r = 0; r < 9; ++r)
        state = vaesmc(vaese(state, loadBytes(rk[r])));
    state = vaese(state, loadBytes(rk[9]));
    state = veor(state, loadBytes(rk[10]));

    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(state[i], expect[i]) << "byte " << i;
}

TEST(SimdCrypto, Crc32KnownValues)
{
    // CRC32("123456789") = 0xCBF43926 (IEEE 802.3 / zlib).
    const char *msg = "123456789";
    Sc<uint32_t> crc(0xffffffffu);
    for (int i = 0; i < 9; ++i)
        crc = vcrc32b(crc, Sc<uint8_t>(uint8_t(msg[i])));
    EXPECT_EQ(~crc.v, 0xCBF43926u);
}

TEST(SimdCrypto, Crc32WidthsCompose)
{
    // Processing 4 bytes with crc32w equals 4x crc32b.
    const uint8_t bytes[4] = {0xde, 0xad, 0xbe, 0xef};
    Sc<uint32_t> c1(0x12345678u);
    for (auto b : bytes)
        c1 = vcrc32b(c1, Sc<uint8_t>(b));
    uint32_t word;
    std::memcpy(&word, bytes, 4);
    Sc<uint32_t> c2 = vcrc32w(Sc<uint32_t>(0x12345678u),
                              Sc<uint32_t>(word));
    EXPECT_EQ(c1.v, c2.v);
}

TEST(SimdCrypto, PmullLinearity)
{
    // clmul(a, b) ^ clmul(a, c) == clmul(a, b ^ c).
    auto a = vdup<uint64_t, 128>(uint64_t(0x123456789abcdef1ull));
    auto b = vdup<uint64_t, 128>(uint64_t(0x0fedcba987654321ull));
    auto c = vdup<uint64_t, 128>(uint64_t(0x1111222233334444ull));
    auto bc = veor(b, c);
    auto ab = vpmull_lo(a, b);
    auto ac = vpmull_lo(a, c);
    auto abc = vpmull_lo(a, bc);
    EXPECT_EQ(veor(ab, ac)[0], abc[0]);
    EXPECT_EQ(veor(ab, ac)[1], abc[1]);
}

TEST(SimdCrypto, PmullByOneIsIdentity)
{
    auto a = vdup<uint64_t, 128>(uint64_t(0xa5a5a5a5deadbeefull));
    auto one = vdup<uint64_t, 128>(uint64_t(1));
    auto p = vpmull_lo(a, one);
    EXPECT_EQ(p[0], 0xa5a5a5a5deadbeefull);
    EXPECT_EQ(p[1], 0u);
}

TEST(SimdCrypto, Sha256AbcDigest)
{
    // One padded block of "abc"; NIST FIPS 180-2 test vector.
    uint8_t block[64] = {};
    block[0] = 'a';
    block[1] = 'b';
    block[2] = 'c';
    block[3] = 0x80;
    block[63] = 24; // bit length

    extern const uint32_t kTestSha256K[64];
    uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                     0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

    Vec<uint32_t, 128> abcd, efgh;
    for (int i = 0; i < 4; ++i) {
        abcd.lane[size_t(i)] = h[i];
        efgh.lane[size_t(i)] = h[4 + i];
    }
    std::array<Vec<uint32_t, 128>, 4> w;
    for (int i = 0; i < 4; ++i) {
        auto bytes = loadBytes(block + 16 * i);
        w[size_t(i)] = vreinterpret<uint32_t>(vrev32(bytes));
    }
    auto a0 = abcd, e0 = efgh;
    for (int r = 0; r < 16; ++r) {
        Vec<uint32_t, 128> k;
        for (int i = 0; i < 4; ++i)
            k.lane[size_t(i)] = kTestSha256K[4 * r + i];
        auto wk = vadd(w[0], k);
        auto na = vsha256h(abcd, efgh, wk);
        efgh = vsha256h2(efgh, abcd, wk);
        abcd = na;
        if (r < 15) {
            swan::simd::Vec<uint32_t, 128> next{};
            if (r < 12) {
                auto part = vsha256su0(w[0], w[1]);
                next = vsha256su1(part, w[2], w[3]);
            }
            w[0] = w[1];
            w[1] = w[2];
            w[2] = w[3];
            if (r < 12)
                w[3] = next;
        }
    }
    abcd = vadd(abcd, a0);
    efgh = vadd(efgh, e0);

    const uint32_t expect[8] = {0xba7816bf, 0x8f01cfea, 0x414140de,
                                0x5dae2223, 0xb00361a3, 0x96177a9c,
                                0xb410ff61, 0xf20015ad};
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(abcd[i], expect[i]) << "word " << i;
        EXPECT_EQ(efgh[i], expect[4 + i]) << "word " << (4 + i);
    }
}

const uint32_t kTestSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

TEST(SimdCrypto, CryptoInstructionsClassified)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    auto s = vdup<uint8_t, 128>(uint8_t(1));
    (void)vaese(s, s);
    (void)vaesmc(s);
    for (const auto &i : rec.instrs())
        if (i.cls != trace::InstrClass::VMisc)
            EXPECT_EQ(i.cls, trace::InstrClass::VCrypto);
}
