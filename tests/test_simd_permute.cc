/**
 * @file
 * Tests for the permutation family: ZIP/UZP/TRN/EXT/REV/TBL/COMBINE.
 * Includes the algebraic properties the kernels rely on (UZP inverts
 * interleaving, TRN-based 8x8 transpose is an involution).
 */

#include <gtest/gtest.h>

#include "simd/simd.hh"

using namespace swan;
using namespace swan::simd;

namespace
{

template <typename T, int B = 128>
Vec<T, B>
iota(T start = T(0))
{
    Vec<T, B> v;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i)
        v.lane[size_t(i)] = T(start + T(i));
    return v;
}

} // namespace

TEST(SimdPermute, Zip1Zip2)
{
    auto a = iota<uint8_t>(0);   // 0..15
    auto b = iota<uint8_t>(100); // 100..115
    auto lo = vzip1(a, b);
    auto hi = vzip2(a, b);
    EXPECT_EQ(lo[0], 0);
    EXPECT_EQ(lo[1], 100);
    EXPECT_EQ(lo[14], 7);
    EXPECT_EQ(lo[15], 107);
    EXPECT_EQ(hi[0], 8);
    EXPECT_EQ(hi[1], 108);
}

TEST(SimdPermute, UzpInvertsZip)
{
    auto a = iota<uint16_t>(0);
    auto b = iota<uint16_t>(50);
    auto z1 = vzip1(a, b);
    auto z2 = vzip2(a, b);
    auto back_a = vuzp1(z1, z2);
    auto back_b = vuzp2(z1, z2);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(back_a[i], a[i]);
        EXPECT_EQ(back_b[i], b[i]);
    }
}

TEST(SimdPermute, TrnPairs)
{
    auto a = iota<uint32_t>(0); // 0 1 2 3
    auto b = iota<uint32_t>(10);
    auto t1 = vtrn1(a, b);
    auto t2 = vtrn2(a, b);
    EXPECT_EQ(t1[0], 0u);
    EXPECT_EQ(t1[1], 10u);
    EXPECT_EQ(t1[2], 2u);
    EXPECT_EQ(t1[3], 12u);
    EXPECT_EQ(t2[0], 1u);
    EXPECT_EQ(t2[1], 11u);
}

TEST(SimdPermute, ExtConcatenates)
{
    auto a = iota<uint8_t>(0);
    auto b = iota<uint8_t>(100);
    auto r = vext(a, b, 4);
    EXPECT_EQ(r[0], 4);
    EXPECT_EQ(r[11], 15);
    EXPECT_EQ(r[12], 100);
    EXPECT_EQ(r[15], 103);
}

TEST(SimdPermute, Rev64)
{
    auto a = iota<uint16_t>(0); // 0..7
    auto r = vrev64(a);
    // groups of 4 u16 reversed
    EXPECT_EQ(r[0], 3);
    EXPECT_EQ(r[3], 0);
    EXPECT_EQ(r[4], 7);
    EXPECT_EQ(r[7], 4);
}

TEST(SimdPermute, Rev32OnU16RotatesWords)
{
    auto a = iota<uint16_t>(0);
    auto r = vrev32(a);
    EXPECT_EQ(r[0], 1);
    EXPECT_EQ(r[1], 0);
    EXPECT_EQ(r[2], 3);
    EXPECT_EQ(r[3], 2);
}

TEST(SimdPermute, Tbl1LooksUpAndZeroesOutOfRange)
{
    auto table = iota<uint8_t>(100); // table[i] = 100+i
    Vec<uint8_t, 128> idx;
    for (int i = 0; i < 16; ++i)
        idx.lane[size_t(i)] = uint8_t(i < 8 ? 15 - i : 200);
    auto r = vqtbl1(table, idx);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(r[i], 100 + 15 - i);
    for (int i = 8; i < 16; ++i)
        EXPECT_EQ(r[i], 0); // out of range
}

TEST(SimdPermute, Tbl2SpansTwoRegisters)
{
    auto t0 = iota<uint8_t>(0);
    auto t1 = iota<uint8_t>(16);
    Vec<uint8_t, 128> idx;
    for (int i = 0; i < 16; ++i)
        idx.lane[size_t(i)] = uint8_t(31 - i);
    auto r = vqtbl2({t0, t1}, idx);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(r[i], 31 - i);
}

TEST(SimdPermute, CombineDoublesWidth)
{
    auto lo = iota<uint8_t, 128>(0);
    auto hi = iota<uint8_t, 128>(16);
    auto w = vcombine(lo, hi);
    static_assert(decltype(w)::kBytes == 32);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(w[i], i);
}

TEST(SimdPermute, AddHalvesReduces)
{
    auto w = iota<uint32_t, 256>(0); // 0..7
    auto h = vadd_halves(w);
    static_assert(decltype(h)::kBytes == 16);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(h[i], uint32_t(i + (i + 4)));
}

TEST(SimdPermute, LaneAccess)
{
    auto v = iota<int32_t>(5);
    Sc<int32_t> x = vget_lane(v, 2);
    EXPECT_EQ(x.v, 7);
    auto w = vset_lane(v, 0, Sc<int32_t>(99));
    EXPECT_EQ(w[0], 99);
    EXPECT_EQ(w[1], 6);
    auto d = vdup_lane(v, 3);
    EXPECT_EQ(d[0], 8);
    EXPECT_EQ(d[3], 8);
}

TEST(SimdPermute, ReinterpretIsFree)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    auto v = vdup<uint32_t, 128>(0x01020304u);
    const uint64_t count = rec.count();
    auto b = vreinterpret<uint8_t>(v);
    EXPECT_EQ(rec.count(), count); // no instruction emitted
    EXPECT_EQ(b[0], 0x04);
    EXPECT_EQ(b[3], 0x01);
}

TEST(SimdPermute, ZipTaggedForStrideCensus)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    auto a = vdup<uint8_t, 128>(uint8_t(1));
    (void)vzip1(a, a);
    (void)vuzp1(a, a);
    (void)vtrn1(a, a);
    const auto &instrs = rec.instrs();
    const size_t n = instrs.size();
    EXPECT_EQ(instrs[n - 3].stride, trace::StrideKind::Zip);
    EXPECT_EQ(instrs[n - 2].stride, trace::StrideKind::Uzp);
    EXPECT_EQ(instrs[n - 1].stride, trace::StrideKind::Trn);
}
