/**
 * @file
 * Tests of the parallel sweep executor (sweep/scheduler.hh): result
 * ordering, 1-thread vs N-thread equality (the determinism contract),
 * trace memoization across core configs, cache interplay and the
 * registration-closed invariant.
 */

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "sweep/cache.hh"
#include "sweep/emit.hh"
#include "sweep/scheduler.hh"

using namespace swan;

namespace
{

/** A small but multi-kernel, multi-config grid. */
sweep::SweepSpec
smallGrid()
{
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32", "ZL/crc32", "OR/memcpy"};
    spec.impls = {core::Impl::Scalar, core::Impl::Neon};
    spec.configs = {"prime", "silver"};
    spec.workingSets = {"tiny"};
    return spec;
}

std::string
render(const std::vector<sweep::SweepResult> &results)
{
    std::ostringstream os;
    sweep::emitResults(os, results, sweep::Format::JsonLines);
    return os.str();
}

} // namespace

TEST(SweepScheduler, ResultsLandInPointOrder)
{
    std::string err;
    auto points = sweep::expand(smallGrid(), &err);
    ASSERT_EQ(points.size(), 12u) << err;
    sweep::SchedulerConfig sc;
    sc.jobs = 4;
    auto results = sweep::runSweep(points, sc);
    ASSERT_EQ(results.size(), points.size());
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].point.index, i);
        EXPECT_EQ(results[i].point.spec, points[i].spec);
        EXPECT_GT(results[i].run.sim.cycles, 0u);
        EXPECT_GT(results[i].run.mix.total(), 0u);
    }
}

TEST(SweepScheduler, OneThreadAndManyThreadsAgreeByteForByte)
{
    std::string err;
    auto points = sweep::expand(smallGrid(), &err);
    ASSERT_FALSE(points.empty()) << err;

    // The compared sweeps replay traces pinned on disk (primed once
    // with a different warm-up-pass count so the RESULT cache never
    // hits and every run actually schedules and simulates): with the
    // instruction streams fixed, any cross-jobs difference can only
    // come from the scheduler itself — grouping, work stealing,
    // result placement, the power pass. Fresh-capture identity across
    // --jobs is additionally enforced end-to-end by the CI smoke
    // (separate `swan sweep --jobs 1` / `--jobs 8` processes):
    // in-process byte-compares of fresh captures are hostage to the
    // test harness's own allocations, because captured traces carry
    // real buffer addresses and the cache model is address-sensitive
    // (see the determinism notes in sweep/scheduler.cc).
    const auto dir = std::filesystem::temp_directory_path() /
                     ("swan_sched_jobs_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    {
        sweep::ResultCache prime(dir.string());
        sweep::SchedulerConfig sc;
        sc.jobs = 1;
        sc.cache = &prime;
        sc.warmupPasses = 2;
        sweep::runSweep(points, sc);
    }

    std::string serial;
    for (int jobs : {1, 2, 4, 8}) {
        // Drop stored results (keep the traces) so every run
        // simulates instead of replaying the result cache.
        for (const auto &e : std::filesystem::directory_iterator(dir))
            if (e.path().extension() == ".swr")
                std::filesystem::remove(e.path());
        sweep::ResultCache cache(dir.string());
        sweep::SchedulerConfig sc;
        sc.jobs = jobs;
        sc.cache = &cache;
        const auto out = render(sweep::runSweep(points, sc));
        EXPECT_EQ(cache.stats().traceHits, 6u) << "jobs=" << jobs;
        if (jobs == 1)
            serial = out;
        else
            EXPECT_EQ(serial, out) << "jobs=" << jobs;
    }
    std::filesystem::remove_all(dir);
}

TEST(SweepScheduler, SchedulerMatchesDirectRunnerSimulation)
{
    // The engine's (capture once, simulate per config) pipeline must
    // reproduce what a hand-rolled capture+simulate of the same trace
    // yields: same instruction counts, same non-zero cycles.
    std::string err;
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32"};
    spec.workingSets = {"tiny"};
    auto points = sweep::expand(spec, &err);
    ASSERT_EQ(points.size(), 1u) << err;

    auto results = sweep::runSweep(points, {});
    ASSERT_EQ(results.size(), 1u);

    auto w = points[0].spec->make(points[0].options);
    auto instrs =
        core::Runner::capture(*w, core::Impl::Neon, 128);
    EXPECT_EQ(results[0].run.mix.total(), instrs.size());
}

TEST(SweepScheduler, SharedCacheServesRepeatedPointsWithoutRerun)
{
    std::string err;
    auto points = sweep::expand(smallGrid(), &err);
    ASSERT_FALSE(points.empty()) << err;

    sweep::ResultCache cache;
    sweep::SchedulerConfig sc;
    sc.jobs = 4;
    sc.cache = &cache;
    const auto cold = render(sweep::runSweep(points, sc));
    const auto coldStats = cache.stats();
    EXPECT_EQ(coldStats.misses, points.size());

    const auto warm = render(sweep::runSweep(points, sc));
    const auto warmStats = cache.stats();
    EXPECT_EQ(warmStats.misses, coldStats.misses); // nothing re-simulated
    EXPECT_EQ(warmStats.hits, points.size());
    EXPECT_EQ(cold, warm);
}

TEST(SweepScheduler, FindResultSelectsOnAxes)
{
    std::string err;
    auto points = sweep::expand(smallGrid(), &err);
    ASSERT_FALSE(points.empty()) << err;
    auto results = sweep::runSweep(points, {});

    const auto *r = sweep::findResult(results, "ZL/crc32",
                                      core::Impl::Neon, 128, "silver");
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->point.spec->info.name, "crc32");
    EXPECT_EQ(r->point.configName, "silver");
    EXPECT_EQ(r->point.impl, core::Impl::Neon);

    EXPECT_EQ(sweep::findResult(results, "ZL/crc32", core::Impl::Neon,
                                512),
              nullptr);
    EXPECT_EQ(sweep::findResult(results, "XX/nope", core::Impl::Neon,
                                128),
              nullptr);
}

TEST(SweepScheduler, RunningASweepClosesRegistration)
{
    std::string err;
    sweep::SweepSpec spec;
    spec.kernels.names = {"OR/memcpy"};
    spec.workingSets = {"tiny"};
    auto points = sweep::expand(spec, &err);
    ASSERT_EQ(points.size(), 1u) << err;
    sweep::runSweep(points, {});
    EXPECT_TRUE(core::Registry::instance().registrationClosed());
}

TEST(SweepScheduler, EmittersShareOneSchema)
{
    std::string err;
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32"};
    spec.workingSets = {"tiny"};
    auto points = sweep::expand(spec, &err);
    ASSERT_EQ(points.size(), 1u) << err;
    auto results = sweep::runSweep(points, {});

    std::ostringstream table, csv, jsonl;
    sweep::emitResults(table, results, sweep::Format::Table);
    sweep::emitResults(csv, results, sweep::Format::Csv);
    sweep::emitResults(jsonl, results, sweep::Format::JsonLines);

    const std::string t = table.str(), c = csv.str(), j = jsonl.str();
    for (const char *needle : {"kernel", "cycles", "energy_mj"}) {
        EXPECT_NE(t.find(needle), std::string::npos) << needle;
        EXPECT_NE(c.find(needle), std::string::npos) << needle;
        EXPECT_NE(j.find(needle), std::string::npos) << needle;
    }
    EXPECT_NE(c.find("ZL/adler32"), std::string::npos);
    EXPECT_NE(j.find("\"kernel\":\"ZL/adler32\""), std::string::npos);

    // CSV: header + one row; JSONL: one object per point.
    EXPECT_EQ(std::count(c.begin(), c.end(), '\n'), 2);
    EXPECT_EQ(std::count(j.begin(), j.end(), '\n'), 1);
}
