/**
 * @file
 * Tests for the report formatting helpers and the Options presets.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/options.hh"
#include "core/report.hh"

using namespace swan::core;

TEST(Report, TableAlignsColumns)
{
    Table t({"A", "LongHeader"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| A      | LongHeader |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 2          |"), std::string::npos);
}

TEST(Report, ShortRowsArePadded)
{
    Table t({"A", "B", "C"});
    t.addRow({"only"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Report, Formatters)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmtX(2.5, 1), "2.5x");
    EXPECT_EQ(fmtPct(41.87, 1), "41.9%");
}

TEST(Options, FullRestoresPaperSizes)
{
    auto full = Options::full();
    EXPECT_EQ(full.imageWidth, 1280);
    EXPECT_EQ(full.imageHeight, 720);
    EXPECT_EQ(full.audioSamples, 44100);
    EXPECT_EQ(full.bufferBytes, 128 * 1024);
}

TEST(Options, DefaultsPreserveShapeProperties)
{
    Options o;
    // Image working sets must exceed L1 so the cache-pressure story
    // survives scaling (DESIGN.md).
    EXPECT_GT(o.imageWidth * o.imageHeight * 4, 64 * 1024);
    // GEMM N stays indivisible by the wide lane counts (Figure 5a).
    EXPECT_NE(o.gemmN % 32, 0);
    EXPECT_NE(o.gemmN % 16, 0);
}

TEST(Options, EnvSelectsPresets)
{
    setenv("SWAN_FULL", "1", 1);
    unsetenv("SWAN_FAST");
    EXPECT_EQ(Options::fromEnv().imageWidth, 1280);
    unsetenv("SWAN_FULL");
    setenv("SWAN_FAST", "1", 1);
    EXPECT_LT(Options::fromEnv().imageWidth, 320);
    unsetenv("SWAN_FAST");
    EXPECT_EQ(Options::fromEnv().imageWidth, Options{}.imageWidth);
}
