/**
 * @file
 * Unit and property tests for the future-ISA extension layer
 * (simd/vec_sve.hh): SVE-style predicates and merging arithmetic,
 * gather/scatter, arbitrary-stride loads/stores, and the Armv8.3
 * FCMLA/FCADD complex arithmetic — semantics, provenance, and the trace
 * records the timing model depends on.
 */

#include <complex>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "simd/simd.hh"
#include "trace/recorder.hh"

using namespace swan;
using namespace swan::simd;

namespace
{

template <typename T, int B>
Vec<T, B>
iota(T start, T step = T(1))
{
    Vec<T, B> v;
    T x = start;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        v.lane[size_t(i)] = x;
        x = detail::wrapAdd(x, step);
    }
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// Predicates.
// ---------------------------------------------------------------------

TEST(SvePred, PtrueActivatesAllLanes)
{
    auto p = ptrue<float, 128>();
    EXPECT_EQ(p.count(), 4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(p[i]);
}

TEST(SvePred, WhileltFullIteration)
{
    auto p = whilelt<float, 128>(0, 100);
    EXPECT_EQ(p.count(), 4);
}

TEST(SvePred, WhileltTailIteration)
{
    auto p = whilelt<float, 128>(8, 10);
    EXPECT_EQ(p.count(), 2);
    EXPECT_TRUE(p[0]);
    EXPECT_TRUE(p[1]);
    EXPECT_FALSE(p[2]);
    EXPECT_FALSE(p[3]);
}

TEST(SvePred, WhileltPastEndIsEmpty)
{
    auto p = whilelt<float, 128>(12, 10);
    EXPECT_EQ(p.count(), 0);
}

TEST(SvePred, WhileltNegativeBaseActivatesAll)
{
    auto p = whilelt<uint8_t, 128>(-4, 4);
    EXPECT_EQ(p.count(), 8); // i+k < 4 for k in [0,8)
}

TEST(SvePred, PandPorLanewise)
{
    auto a = whilelt<int32_t, 128>(0, 3); // 1110
    auto b = whilelt<int32_t, 128>(0, 1); // 1000
    EXPECT_EQ(pand(a, b).count(), 1);
    EXPECT_EQ(por(a, b).count(), 3);
}

TEST(SvePred, PcountReturnsScalarWithProvenance)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    auto p = whilelt<int32_t, 128>(0, 2);
    auto n = pcount(p);
    EXPECT_EQ(n.v, 2);
    EXPECT_NE(n.src, 0u);
}

TEST(SvePred, PtestEmitsBranchAndReportsAnyActive)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    EXPECT_TRUE(ptest(whilelt<int32_t, 128>(0, 1)));
    EXPECT_FALSE(ptest(whilelt<int32_t, 128>(5, 1)));
    auto instrs = rec.take();
    int branches = 0;
    for (const auto &i : instrs)
        branches += i.cls == trace::InstrClass::Branch ? 1 : 0;
    EXPECT_EQ(branches, 2);
}

TEST(SvePred, WiderWidthsScaleLaneCount)
{
    EXPECT_EQ((ptrue<float, 256>().count()), 8);
    EXPECT_EQ((ptrue<float, 512>().count()), 16);
    EXPECT_EQ((ptrue<float, 1024>().count()), 32);
    EXPECT_EQ((whilelt<float, 1024>(0, 20).count()), 20);
}

// ---------------------------------------------------------------------
// Masked memory.
// ---------------------------------------------------------------------

TEST(SveMaskedMem, LoadZeroesInactiveLanes)
{
    const float src[4] = {1, 2, 3, 4};
    auto pg = whilelt<float, 128>(0, 2);
    auto v = vld1_m<128>(src, pg);
    EXPECT_EQ(v[0], 1.0f);
    EXPECT_EQ(v[1], 2.0f);
    EXPECT_EQ(v[2], 0.0f);
    EXPECT_EQ(v[3], 0.0f);
    EXPECT_EQ(v.active, 2);
}

TEST(SveMaskedMem, StoreWritesOnlyActiveLanes)
{
    float dst[4] = {-1, -1, -1, -1};
    auto pg = whilelt<float, 128>(0, 3);
    vst1_m(dst, vdup<float, 128>(7.0f), pg);
    EXPECT_EQ(dst[0], 7.0f);
    EXPECT_EQ(dst[1], 7.0f);
    EXPECT_EQ(dst[2], 7.0f);
    EXPECT_EQ(dst[3], -1.0f);
}

TEST(SveMaskedMem, TraceRecordsActiveByteCount)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    const float src[4] = {1, 2, 3, 4};
    auto pg = whilelt<float, 128>(0, 3);
    (void)vld1_m<128>(src, pg);
    auto instrs = rec.take();
    ASSERT_GE(instrs.size(), 2u);
    const auto &ld = instrs.back();
    EXPECT_EQ(ld.cls, trace::InstrClass::VLoad);
    EXPECT_EQ(ld.size, 12u);
    EXPECT_EQ(ld.activeLanes, 3);
}

// ---------------------------------------------------------------------
// Merging arithmetic.
// ---------------------------------------------------------------------

TEST(SveMerging, AddPassesInactiveThrough)
{
    auto a = iota<int32_t, 128>(10, 10);
    auto b = vdup<int32_t, 128>(1);
    auto pg = whilelt<int32_t, 128>(0, 2);
    auto r = vadd_m(pg, a, b);
    EXPECT_EQ(r[0], 11);
    EXPECT_EQ(r[1], 21);
    EXPECT_EQ(r[2], 30); // untouched
    EXPECT_EQ(r[3], 40);
}

TEST(SveMerging, MlaMatchesUnmaskedOnFullPredicate)
{
    auto acc = iota<float, 128>(1);
    auto a = iota<float, 128>(2);
    auto b = iota<float, 128>(3);
    auto full = ptrue<float, 128>();
    auto masked = vmla_m(full, acc, a, b);
    auto plain = vmla(acc, a, b);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(masked[i], plain[i]);
}

TEST(SveMerging, SubMulRespectMask)
{
    auto a = vdup<int32_t, 128>(100);
    auto b = vdup<int32_t, 128>(3);
    auto pg = whilelt<int32_t, 128>(0, 1);
    EXPECT_EQ(vsub_m(pg, a, b)[0], 97);
    EXPECT_EQ(vsub_m(pg, a, b)[1], 100);
    EXPECT_EQ(vmul_m(pg, a, b)[0], 300);
    EXPECT_EQ(vmul_m(pg, a, b)[3], 100);
}

TEST(SveMerging, SelPicksPerLane)
{
    auto a = vdup<int32_t, 128>(1);
    auto b = vdup<int32_t, 128>(2);
    auto pg = whilelt<int32_t, 128>(0, 2);
    auto r = vsel(pg, a, b);
    EXPECT_EQ(r[0], 1);
    EXPECT_EQ(r[1], 1);
    EXPECT_EQ(r[2], 2);
    EXPECT_EQ(r[3], 2);
}

// ---------------------------------------------------------------------
// Gather / scatter.
// ---------------------------------------------------------------------

TEST(SveGather, GatherReadsTableAtIndices)
{
    std::vector<uint32_t> table(64);
    std::iota(table.begin(), table.end(), 100u);
    Vec<uint32_t, 128> idx;
    idx.lane = {63, 0, 7, 32};
    auto v = vgather(table.data(), idx);
    EXPECT_EQ(v[0], 163u);
    EXPECT_EQ(v[1], 100u);
    EXPECT_EQ(v[2], 107u);
    EXPECT_EQ(v[3], 132u);
}

TEST(SveGather, TraceRecordBoundsTouchedRegion)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    std::vector<uint32_t> table(64, 5u);
    Vec<uint32_t, 128> idx;
    idx.lane = {8, 2, 40, 13};
    (void)vgather(table.data(), idx);
    auto instrs = rec.take();
    ASSERT_EQ(instrs.size(), 1u);
    const auto &g = instrs.front();
    EXPECT_EQ(g.stride, trace::StrideKind::Gather);
    EXPECT_EQ(g.cls, trace::InstrClass::VLoad);
    EXPECT_EQ(g.addr, reinterpret_cast<uint64_t>(&table[2]));
    EXPECT_EQ(g.addr2, reinterpret_cast<uint64_t>(&table[40]));
    EXPECT_EQ(g.size, 16u);
    EXPECT_TRUE(g.isMultiAddress());
}

TEST(SveGather, GatherDependsOnIndexProducer)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    std::vector<uint32_t> table(16, 1u);
    auto idx = vdup<uint32_t, 128>(3u);
    auto v = vgather(table.data(), idx);
    auto instrs = rec.take();
    ASSERT_EQ(instrs.size(), 2u);
    EXPECT_EQ(instrs[1].dep0, instrs[0].id);
    EXPECT_EQ(v.src, instrs[1].id);
}

TEST(SveGather, PartialIndexVectorGathersActiveLanesOnly)
{
    std::vector<uint32_t> table(16);
    std::iota(table.begin(), table.end(), 0u);
    const uint32_t keys[2] = {5, 9};
    auto idx = vld1_partial<128>(keys, 2);
    auto v = vgather(table.data(), idx);
    EXPECT_EQ(v[0], 5u);
    EXPECT_EQ(v[1], 9u);
    EXPECT_EQ(v.active, 2);
}

TEST(SveScatter, ScatterWritesTableAtIndices)
{
    std::vector<uint32_t> table(16, 0u);
    Vec<uint32_t, 128> idx;
    idx.lane = {1, 5, 9, 13};
    auto vals = iota<uint32_t, 128>(100u);
    vscatter(table.data(), idx, vals);
    EXPECT_EQ(table[1], 100u);
    EXPECT_EQ(table[5], 101u);
    EXPECT_EQ(table[9], 102u);
    EXPECT_EQ(table[13], 103u);
    EXPECT_EQ(table[0], 0u);
}

TEST(SveScatter, OverlappingIndicesWriteInLaneOrder)
{
    std::vector<uint32_t> table(4, 0u);
    Vec<uint32_t, 128> idx;
    idx.lane = {2, 2, 2, 2};
    auto vals = iota<uint32_t, 128>(1u);
    vscatter(table.data(), idx, vals);
    EXPECT_EQ(table[2], 4u); // last lane wins
}

TEST(SveScatter, TraceRecordTagsScatter)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    std::vector<uint32_t> table(8, 0u);
    Vec<uint32_t, 128> idx;
    idx.lane = {7, 0, 3, 1};
    Vec<uint32_t, 128> vals;
    vals.lane = {1, 2, 3, 4};
    vscatter(table.data(), idx, vals);
    auto instrs = rec.take();
    ASSERT_EQ(instrs.size(), 1u);
    EXPECT_EQ(instrs[0].stride, trace::StrideKind::Scatter);
    EXPECT_EQ(instrs[0].cls, trace::InstrClass::VStore);
    EXPECT_EQ(instrs[0].addr, reinterpret_cast<uint64_t>(&table[0]));
    EXPECT_EQ(instrs[0].addr2, reinterpret_cast<uint64_t>(&table[7]));
}

TEST(SveGather, GatherScatterRoundTripProperty)
{
    // scatter(gather(x)) with a permutation index is a permutation:
    // gathering back with the inverse recovers the original.
    std::vector<uint32_t> src(4), dst(4, 0u);
    src = {11, 22, 33, 44};
    Vec<uint32_t, 128> perm;
    perm.lane = {2, 0, 3, 1};
    auto g = vgather(src.data(), perm);
    vscatter(dst.data(), perm, g);
    EXPECT_EQ(src, dst);
}

TEST(SveGather, WideGatherCoversAllLanes)
{
    std::vector<uint32_t> table(256);
    std::iota(table.begin(), table.end(), 0u);
    Vec<uint32_t, 1024> idx;
    for (int i = 0; i < 32; ++i)
        idx.lane[size_t(i)] = uint32_t(7 * i % 256);
    auto v = vgather(table.data(), idx);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(v[i], uint32_t(7 * i % 256));
}

// ---------------------------------------------------------------------
// Arbitrary-stride load/store.
// ---------------------------------------------------------------------

TEST(SveStrided, LoadPicksEveryNth)
{
    std::vector<int16_t> buf(64);
    std::iota(buf.begin(), buf.end(), int16_t(0));
    auto v = vlds<128>(buf.data(), 8); // 8 lanes of s16
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(v[i], int16_t(8 * i));
}

TEST(SveStrided, StoreScattersEveryNth)
{
    std::vector<int16_t> buf(64, -1);
    auto v = iota<int16_t, 128>(int16_t(0));
    vsts(buf.data(), 8, v);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(buf[size_t(i)], i % 8 == 0 ? int16_t(i / 8)
                                             : int16_t(-1));
}

TEST(SveStrided, RoundTripIsIdentity)
{
    std::vector<float> src(32), dst(32, 0.0f);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = float(i) * 0.5f;
    auto v = vlds<128>(src.data(), 7);
    vsts(dst.data(), 7, v);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(dst[size_t(7 * i)], src[size_t(7 * i)]);
}

TEST(SveStrided, TraceRecordCarriesExactStride)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    std::vector<float> buf(64, 1.0f);
    (void)vlds<128>(buf.data(), 8);
    vsts(buf.data(), 5, vdup<float, 128>(2.0f));
    auto instrs = rec.take();
    ASSERT_EQ(instrs.size(), 3u); // dup + lds + sts
    EXPECT_EQ(instrs[0].stride, trace::StrideKind::LdS);
    EXPECT_EQ(instrs[0].elemStride, 32);
    EXPECT_EQ(instrs[0].addr2,
              reinterpret_cast<uint64_t>(&buf[3 * 8]));
    EXPECT_EQ(instrs[2].stride, trace::StrideKind::StS);
    EXPECT_EQ(instrs[2].elemStride, 20);
}

TEST(SveStrided, UnitStrideDegeneratesToContiguous)
{
    std::vector<int32_t> buf(4);
    std::iota(buf.begin(), buf.end(), 0);
    auto a = vlds<128>(buf.data(), 1);
    auto b = vld1<128>(buf.data());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(SveStrided, MatchesNeonLd2ForStride2)
{
    // Property: two stride-2 loads reproduce VLD2's de-interleave.
    std::vector<uint8_t> buf(32);
    std::iota(buf.begin(), buf.end(), uint8_t(0));
    auto pair = vld2<128>(buf.data());
    auto even = vlds<128>(buf.data(), 2);
    auto odd = vlds<128>(buf.data() + 1, 2);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(even[i], pair[0][i]);
        EXPECT_EQ(odd[i], pair[1][i]);
    }
}

// ---------------------------------------------------------------------
// Complex arithmetic (FCMLA / FCADD).
// ---------------------------------------------------------------------

namespace
{

/** Reference complex MAC acc + a*b via std::complex. */
void
refCmac(const float *a, const float *b, const float *acc, float *out,
        int pairs)
{
    for (int i = 0; i < pairs; ++i) {
        std::complex<float> av(a[2 * i], a[2 * i + 1]);
        std::complex<float> bv(b[2 * i], b[2 * i + 1]);
        std::complex<float> cv(acc[2 * i], acc[2 * i + 1]);
        auto r = cv + av * bv;
        out[2 * i] = r.real();
        out[2 * i + 1] = r.imag();
    }
}

} // namespace

TEST(SveCmla, Rot0PlusRot90IsComplexMac)
{
    const float a[4] = {1.5f, -2.0f, 0.25f, 3.0f};
    const float b[4] = {-1.0f, 0.5f, 2.0f, -0.75f};
    const float c[4] = {10.0f, 20.0f, 30.0f, 40.0f};
    auto av = vld1<128>(a);
    auto bv = vld1<128>(b);
    auto acc = vld1<128>(c);
    acc = vcmla<0>(acc, av, bv);
    acc = vcmla<90>(acc, av, bv);
    float expect[4];
    refCmac(a, b, c, expect, 2);
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(acc[i], expect[i]);
}

TEST(SveCmla, Rot180PlusRot270IsComplexConjMsub)
{
    // FCMLA #180 + #270 accumulates -a*b.
    const float a[4] = {2.0f, 1.0f, -1.0f, 0.5f};
    const float b[4] = {3.0f, -2.0f, 0.5f, 4.0f};
    const float c[4] = {0.0f, 0.0f, 0.0f, 0.0f};
    auto acc = vld1<128>(c);
    acc = vcmla<180>(acc, vld1<128>(a), vld1<128>(b));
    acc = vcmla<270>(acc, vld1<128>(a), vld1<128>(b));
    for (int i = 0; i < 2; ++i) {
        std::complex<float> av(a[2 * i], a[2 * i + 1]);
        std::complex<float> bv(b[2 * i], b[2 * i + 1]);
        auto r = -av * bv;
        EXPECT_FLOAT_EQ(acc[2 * i], r.real());
        EXPECT_FLOAT_EQ(acc[2 * i + 1], r.imag());
    }
}

TEST(SveCmla, FcaddRotatesBy90And270)
{
    // FCADD #90: a + i*b; FCADD #270: a - i*b.
    const float a[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    const float b[4] = {10.0f, 20.0f, 30.0f, 40.0f};
    auto r90 = vcadd<90>(vld1<128>(a), vld1<128>(b));
    auto r270 = vcadd<270>(vld1<128>(a), vld1<128>(b));
    EXPECT_FLOAT_EQ(r90[0], 1.0f - 20.0f);
    EXPECT_FLOAT_EQ(r90[1], 2.0f + 10.0f);
    EXPECT_FLOAT_EQ(r270[0], 1.0f + 20.0f);
    EXPECT_FLOAT_EQ(r270[1], 2.0f - 10.0f);
    EXPECT_FLOAT_EQ(r90[2], 3.0f - 40.0f);
    EXPECT_FLOAT_EQ(r270[3], 4.0f - 30.0f);
}

TEST(SveCmla, EmitsSingleVFloatPerRotation)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    auto a = vdup<float, 128>(1.0f);
    auto b = vdup<float, 128>(2.0f);
    auto acc = vdup<float, 128>(0.0f);
    rec.clear();
    acc = vcmla<0>(acc, a, b);
    acc = vcmla<90>(acc, a, b);
    auto instrs = rec.take();
    ASSERT_EQ(instrs.size(), 2u);
    for (const auto &i : instrs) {
        EXPECT_EQ(i.cls, trace::InstrClass::VFloat);
        EXPECT_EQ(i.latency, simd::Lat::vCmla);
    }
}

TEST(SveCmla, WideWidthsProcessAllPairs)
{
    constexpr int kPairs = 16; // 1024-bit f32
    float a[2 * kPairs], b[2 * kPairs], c[2 * kPairs], expect[2 * kPairs];
    for (int i = 0; i < 2 * kPairs; ++i) {
        a[i] = float(i) * 0.25f - 3.0f;
        b[i] = 1.0f - float(i) * 0.125f;
        c[i] = float(i);
    }
    auto acc = vld1<1024>(c);
    acc = vcmla<0>(acc, vld1<1024>(a), vld1<1024>(b));
    acc = vcmla<90>(acc, vld1<1024>(a), vld1<1024>(b));
    refCmac(a, b, c, expect, kPairs);
    for (int i = 0; i < 2 * kPairs; ++i)
        EXPECT_FLOAT_EQ(acc[i], expect[i]);
}

// ---------------------------------------------------------------------
// First-faulting loads.
// ---------------------------------------------------------------------

TEST(SveFirstFault, FullyValidWhenFarFromLimit)
{
    const uint8_t buf[32] = {1, 2, 3};
    auto ff = vldff1<128>(buf, buf + 32);
    EXPECT_EQ(ff.valid.count(), 16);
    EXPECT_EQ(ff.data[0], 1);
    EXPECT_EQ(ff.data[2], 3);
    EXPECT_EQ(ff.data[3], 0);
}

TEST(SveFirstFault, ClampsAtFaultBoundary)
{
    const uint8_t buf[32] = {};
    auto ff = vldff1<128>(buf + 8, buf + 13);
    EXPECT_EQ(ff.valid.count(), 5);
    EXPECT_TRUE(ff.valid[4]);
    EXPECT_FALSE(ff.valid[5]);
    EXPECT_EQ(ff.data.active, 5);
}

TEST(SveFirstFault, EmitsLoadPlusFfrRead)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    const uint8_t buf[32] = {};
    (void)vldff1<128>(buf, buf + 32);
    auto instrs = rec.take();
    ASSERT_EQ(instrs.size(), 2u);
    EXPECT_EQ(instrs[0].cls, trace::InstrClass::VLoad);
    EXPECT_EQ(instrs[1].cls, trace::InstrClass::VInt);
    EXPECT_EQ(instrs[1].dep0, instrs[0].id);
}

TEST(SveFirstFault, CmpeqPRespectsGoverningPredicate)
{
    Vec<uint8_t, 128> v;
    v.lane.fill(0);
    v.lane[3] = 7;
    auto pg = whilelt<uint8_t, 128>(0, 3); // lanes 0..2 only
    auto m = cmpeq_p(pg, v, uint8_t(0));
    EXPECT_EQ(m.count(), 3);   // lanes 0..2 are zero and governed
    EXPECT_FALSE(m[3]);        // lane 3 is 7 anyway
    auto m2 = cmpeq_p(pg, v, uint8_t(7));
    EXPECT_EQ(m2.count(), 0);  // the 7 sits outside the predicate
}

TEST(SveFirstFault, PfirstIdxFindsFirstActiveLane)
{
    Vec<uint8_t, 128> v;
    v.lane.fill(1);
    v.lane[5] = 0;
    v.lane[11] = 0;
    auto m = cmpeq_p(ptrue<uint8_t, 128>(), v, uint8_t(0));
    EXPECT_EQ(pfirstIdx(m).v, 5);
    auto none = cmpeq_p(ptrue<uint8_t, 128>(), v, uint8_t(9));
    EXPECT_EQ(pfirstIdx(none).v, -1);
}
