/**
 * @file
 * Fused replay engine equivalence (sim::replay, sim/core_model.cc):
 * the fused decode->step path must produce SimResults byte-identical
 * to block (onBlock) and per-instruction (onInstr) Sink delivery, for
 * in-order and out-of-order configurations, any warm-up pass count,
 * config groups of 1..4, and streams with mid-trace id restarts (the
 * concatenated traces the perf smoke replays). Also covers the
 * corrupt-trace rejection path.
 */

#include <memory>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "core/runner.hh"
#include "sim/core_model.hh"
#include "trace/packed.hh"

using namespace swan;
using trace::Instr;
using trace::PackedTrace;

namespace
{

/** Recorder-shaped randomized trace (sequential 1-based ids, producer
 *  deps behind the consumer, occasional multi-address records). */
std::vector<Instr>
randomTrace(size_t n, uint32_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<Instr> out;
    out.reserve(n);
    uint64_t addr = 0x7f0000001000ull + (seed % 7) * 4096;
    for (size_t i = 0; i < n; ++i) {
        Instr ins;
        ins.id = i + 1;
        const auto dep = [&]() -> uint64_t {
            if (i == 0 || rng() % 3 == 0)
                return 0;
            return 1 + rng() % i;
        };
        ins.dep0 = dep();
        ins.dep1 = dep();
        ins.cls = trace::InstrClass(
            rng() % uint64_t(trace::InstrClass::NumClasses));
        ins.fu = trace::Fu(rng() % uint64_t(trace::Fu::NumFus));
        ins.latency = uint8_t(1 + rng() % 20);
        if (ins.isVector()) {
            ins.vecBytes = uint8_t(16 << (rng() % 3));
            ins.lanes = uint8_t(1 + rng() % 16);
            ins.activeLanes = uint8_t(1 + rng() % ins.lanes);
        }
        if (ins.isMem()) {
            addr += rng() % 16 == 0 ? (rng() % (1 << 20)) : (rng() % 256);
            ins.addr = addr;
            ins.size = uint32_t(1 << (rng() % 7));
            if (rng() % 8 == 0) {
                static const trace::StrideKind kinds[] = {
                    trace::StrideKind::Gather, trace::StrideKind::Scatter,
                    trace::StrideKind::LdS, trace::StrideKind::StS};
                ins.stride = kinds[rng() % 4];
                ins.activeLanes = uint8_t(1 + rng() % 8);
                ins.lanes = std::max(ins.lanes, ins.activeLanes);
                if (ins.stride == trace::StrideKind::LdS ||
                    ins.stride == trace::StrideKind::StS)
                    ins.elemStride = int32_t(rng() % 4096) - 2048;
                ins.addr2 = ins.addr + rng() % (1 << 16);
            }
        }
        out.push_back(ins);
    }
    return out;
}

void
expectSameResult(const sim::SimResult &a, const sim::SimResult &b)
{
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.l1Mpki, b.l1Mpki);
    EXPECT_EQ(a.l2Mpki, b.l2Mpki);
    EXPECT_EQ(a.llcMpki, b.llcMpki);
    EXPECT_EQ(a.feStallPct, b.feStallPct);
    EXPECT_EQ(a.beStallPct, b.beStallPct);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.byClass, b.byClass);
    EXPECT_EQ(a.vecBytes, b.vecBytes);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
}

/** Warmup + measured pass through the fused engine. */
std::vector<sim::SimResult>
runFused(const PackedTrace &packed,
         const std::vector<sim::CoreConfig> &cfgs, int warmup)
{
    std::vector<std::unique_ptr<sim::CoreModel>> models;
    std::vector<sim::CoreModel *> ptrs;
    for (const auto &c : cfgs) {
        models.push_back(std::make_unique<sim::CoreModel>(c));
        ptrs.push_back(models.back().get());
    }
    const std::span<sim::CoreModel *const> span(ptrs.data(), ptrs.size());
    for (int p = 0; p < warmup; ++p)
        sim::replay(packed, span);
    for (auto &m : models)
        m->beginMeasurement();
    sim::replay(packed, span);
    std::vector<sim::SimResult> out;
    for (auto &m : models)
        out.push_back(m->finish());
    return out;
}

/** Same protocol through per-instruction virtual Sink delivery. */
sim::SimResult
runOnInstr(const std::vector<Instr> &instrs, const sim::CoreConfig &cfg,
           int warmup)
{
    sim::CoreModel model(cfg);
    trace::Sink *sink = &model;
    for (int p = 0; p < warmup; ++p)
        for (const auto &i : instrs)
            sink->onInstr(i);
    model.beginMeasurement();
    for (const auto &i : instrs)
        sink->onInstr(i);
    return model.finish();
}

/** Same protocol through block (deliver/onBlock) delivery. */
sim::SimResult
runOnBlock(const PackedTrace &packed, const sim::CoreConfig &cfg,
           int warmup)
{
    sim::CoreModel model(cfg);
    for (int p = 0; p < warmup; ++p)
        packed.deliver(model);
    model.beginMeasurement();
    packed.deliver(model);
    return model.finish();
}

std::vector<sim::CoreConfig>
fourCores()
{
    return {sim::primeConfig(), sim::goldConfig(), sim::silverConfig(),
            sim::scalabilityConfig(6, 4)};
}

} // namespace

TEST(FusedReplay, MatchesOnBlockAndOnInstrForInOrderAndOoO)
{
    const auto instrs = randomTrace(4000, 101);
    const auto packed = PackedTrace::pack(instrs);
    // Prime is out of order, silver in order: both step-function
    // table entries are exercised.
    for (const auto &cfg : {sim::primeConfig(), sim::silverConfig()}) {
        const auto fused = runFused(packed, {cfg}, 1);
        ASSERT_EQ(fused.size(), 1u);
        expectSameResult(fused[0], runOnBlock(packed, cfg, 1));
        expectSameResult(fused[0], runOnInstr(instrs, cfg, 1));
    }
}

TEST(FusedReplay, MatchesAcrossWarmupPasses)
{
    const auto instrs = randomTrace(2500, 103);
    const auto packed = PackedTrace::pack(instrs);
    for (int warmup : {0, 1, 2, 3}) {
        for (const auto &cfg :
             {sim::primeConfig(), sim::silverConfig()}) {
            const auto fused = runFused(packed, {cfg}, warmup);
            expectSameResult(fused[0], runOnInstr(instrs, cfg, warmup));
        }
    }
}

TEST(FusedReplay, ConfigGroupsOneToFour)
{
    const auto instrs = randomTrace(3000, 107);
    const auto packed = PackedTrace::pack(instrs);
    const auto all = fourCores();
    for (size_t n = 1; n <= all.size(); ++n) {
        const std::vector<sim::CoreConfig> cfgs(all.begin(),
                                                all.begin() + long(n));
        const auto fused = runFused(packed, cfgs, 1);
        const auto many = sim::simulateTraceMany(packed, cfgs, 1);
        ASSERT_EQ(fused.size(), n);
        ASSERT_EQ(many.size(), n);
        for (size_t i = 0; i < n; ++i) {
            // Each model only sees the instruction stream, so the
            // group result is the single-config result, bit for bit —
            // whichever entry point ran it.
            expectSameResult(fused[i], many[i]);
            expectSameResult(fused[i], runOnBlock(packed, cfgs[i], 1));
            expectSameResult(fused[i], runOnInstr(instrs, cfgs[i], 1));
        }
    }
}

TEST(FusedReplay, HandlesMidStreamIdRestarts)
{
    // Concatenated captures restart ids at 1 mid-stream (the perf
    // smoke's trace shape); the fused engine's monotone-batch fast
    // path must fall back to the checked step for those batches.
    auto instrs = randomTrace(1500, 109);
    const auto b = randomTrace(700, 110);
    const auto c = randomTrace(900, 111);
    instrs.insert(instrs.end(), b.begin(), b.end());
    instrs.insert(instrs.end(), c.begin(), c.end());
    const auto packed = PackedTrace::pack(instrs);
    for (const auto &cfg : {sim::primeConfig(), sim::silverConfig()}) {
        const auto fused = runFused(packed, {cfg}, 1);
        expectSameResult(fused[0], runOnInstr(instrs, cfg, 1));
    }
}

TEST(FusedReplay, MatchesOnARealKernelTrace)
{
    const auto *spec = core::Registry::instance().find("ZL/adler32");
    ASSERT_NE(spec, nullptr);
    auto w = spec->make(core::Options());
    const auto instrs = core::Runner::capture(*w, core::Impl::Neon, 128);
    ASSERT_FALSE(instrs.empty());
    const auto packed = PackedTrace::pack(instrs);
    const auto fused =
        runFused(packed, {sim::primeConfig(), sim::silverConfig()}, 1);
    expectSameResult(fused[0],
                     runOnInstr(instrs, sim::primeConfig(), 1));
    expectSameResult(fused[1],
                     runOnInstr(instrs, sim::silverConfig(), 1));
}

TEST(FusedReplay, ConfigGroupsCrossTheLaneBlockBoundary)
{
    // The lane-block engine packs up to 8 configurations per SoA block
    // (CoreModel::kLaneBlockBytes) and heap-allocates a block array
    // beyond that: N = 1..8 exercises every partial-block width, 9 and
    // 12 the multi-block path. Every width must reproduce the
    // single-config result bit for bit.
    const auto instrs = randomTrace(2500, 131);
    const auto packed = PackedTrace::pack(instrs);
    std::vector<sim::CoreConfig> all = fourCores();
    for (int w = 2; w <= 9; ++w)
        all.push_back(sim::scalabilityConfig(w, 2 + w % 3));
    ASSERT_EQ(all.size(), 12u);

    std::vector<sim::SimResult> singles;
    for (const auto &cfg : all)
        singles.push_back(runOnInstr(instrs, cfg, 1));

    for (size_t n : {size_t(1), size_t(2), size_t(5), size_t(7),
                     size_t(8), size_t(9), size_t(12)}) {
        const std::vector<sim::CoreConfig> cfgs(all.begin(),
                                                all.begin() + long(n));
        const auto fused = runFused(packed, cfgs, 1);
        ASSERT_EQ(fused.size(), n);
        for (size_t i = 0; i < n; ++i)
            expectSameResult(fused[i], singles[i]);
    }
}

TEST(FusedReplay, MidStreamRestartsAcrossLaneCounts)
{
    // Id restarts force the checked (non-monotone) step function for
    // the affected batches; the selection is per decode batch and must
    // not leak between lanes or widths.
    auto instrs = randomTrace(1200, 137);
    const auto b = randomTrace(800, 138);
    instrs.insert(instrs.end(), b.begin(), b.end());
    const auto c = randomTrace(400, 139);
    instrs.insert(instrs.end(), c.begin(), c.end());
    const auto packed = PackedTrace::pack(instrs);

    std::vector<sim::CoreConfig> all = fourCores();
    for (int w = 2; w <= 5; ++w)
        all.push_back(sim::scalabilityConfig(w, 4));
    for (size_t n : {size_t(1), size_t(3), size_t(8)}) {
        const std::vector<sim::CoreConfig> cfgs(all.begin(),
                                                all.begin() + long(n));
        const auto fused = runFused(packed, cfgs, 1);
        for (size_t i = 0; i < n; ++i)
            expectSameResult(fused[i], runOnInstr(instrs, cfgs[i], 1));
    }
}

namespace
{

/**
 * A perturbing payload: control every `stride` instructions, rotating
 * DRAM latency at each boundary and clamping multi-element progress on
 * alternating batches. Deterministic in the traversal position only,
 * so two traversals of one trace perturb identically no matter how
 * many models ride along.
 */
struct PulsePayload final : sim::ReplayObserver
{
    uint64_t stride;
    uint64_t boundaries = 0;

    explicit PulsePayload(uint64_t s) : stride(s) {}

    uint64_t
    nextBoundary(uint64_t pos) override
    {
        return pos + stride;
    }

    void
    atBoundary(uint64_t pos,
               std::span<sim::CoreModel *const> models) override
    {
        ++boundaries;
        for (auto *m : models)
            setDramLatency(*m, 120 + (pos / stride) % 7 * 30);
    }

    uint32_t
    elemClamp() const override
    {
        return boundaries % 2 ? 2 : 0;
    }
};

/** Warmup observer-free, then one measured pass with a fresh payload. */
std::vector<sim::SimResult>
runFusedObserved(const PackedTrace &packed,
                 const std::vector<sim::CoreConfig> &cfgs,
                 uint64_t stride)
{
    std::vector<std::unique_ptr<sim::CoreModel>> models;
    std::vector<sim::CoreModel *> ptrs;
    for (const auto &c : cfgs) {
        models.push_back(std::make_unique<sim::CoreModel>(c));
        ptrs.push_back(models.back().get());
    }
    const std::span<sim::CoreModel *const> span(ptrs.data(), ptrs.size());
    sim::replay(packed, span);
    for (auto &m : models)
        m->beginMeasurement();
    PulsePayload payload(stride);
    sim::replay(packed, span, payload);
    std::vector<sim::SimResult> out;
    for (auto &m : models)
        out.push_back(m->finish());
    return out;
}

} // namespace

TEST(FusedReplay, ObserverSeamIsLaneCountInvariant)
{
    // A perturbing payload is a function of traversal position only:
    // replaying N models together under one payload must equal N
    // single-model replays under N fresh payloads, for any lane count
    // (batches never cross a payload boundary, whatever the width).
    const auto instrs = randomTrace(3000, 149);
    const auto packed = PackedTrace::pack(instrs);
    std::vector<sim::CoreConfig> all = fourCores();
    for (int w = 2; w <= 6; ++w)
        all.push_back(sim::scalabilityConfig(w, 2));

    for (const uint64_t stride : {uint64_t(257), uint64_t(1000)}) {
        std::vector<sim::SimResult> singles;
        for (const auto &cfg : all)
            singles.push_back(
                runFusedObserved(packed, {cfg}, stride)[0]);
        for (size_t n : {size_t(3), size_t(8), size_t(9)}) {
            const std::vector<sim::CoreConfig> cfgs(
                all.begin(), all.begin() + long(n));
            const auto got = runFusedObserved(packed, cfgs, stride);
            ASSERT_EQ(got.size(), n);
            for (size_t i = 0; i < n; ++i)
                expectSameResult(got[i], singles[i]);
        }
    }
}

TEST(FusedReplay, PassiveObserverChangesNothing)
{
    // A payload that only watches must leave results bit-identical to
    // the observer-free engine.
    struct Watcher final : sim::ReplayObserver
    {
        uint64_t seen = 0;
        uint64_t
        nextBoundary(uint64_t pos) override
        {
            return pos + 100;
        }
        void
        atBoundary(uint64_t, std::span<sim::CoreModel *const>) override
        {
            ++seen;
        }
    };
    const auto instrs = randomTrace(2000, 151);
    const auto packed = PackedTrace::pack(instrs);
    const auto cfgs = fourCores();
    const auto plain = runFused(packed, cfgs, 1);

    std::vector<std::unique_ptr<sim::CoreModel>> models;
    std::vector<sim::CoreModel *> ptrs;
    for (const auto &c : cfgs) {
        models.push_back(std::make_unique<sim::CoreModel>(c));
        ptrs.push_back(models.back().get());
    }
    const std::span<sim::CoreModel *const> span(ptrs.data(), ptrs.size());
    sim::replay(packed, span);
    for (auto &m : models)
        m->beginMeasurement();
    Watcher w;
    sim::replay(packed, span, w);
    EXPECT_GT(w.seen, 0u);
    for (size_t i = 0; i < cfgs.size(); ++i)
        expectSameResult(plain[i], models[i]->finish());
}

TEST(FusedReplay, EmptySpanAndEmptyTraceAreNoOps)
{
    const auto packed = PackedTrace::pack(randomTrace(100, 113));
    sim::replay(packed, {}); // no models: nothing to do

    const PackedTrace empty = PackedTrace::pack({});
    sim::CoreModel model(sim::primeConfig());
    sim::CoreModel *mp = &model;
    sim::replay(empty, std::span<sim::CoreModel *const>(&mp, 1));
    model.beginMeasurement();
    const auto r = model.finish();
    EXPECT_EQ(r.instrs, 0u);
}
