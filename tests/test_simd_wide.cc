/**
 * @file
 * Tests for widening/narrowing, pairwise and across-vector operations,
 * memory operations (vld1/vst1, partial forms, vld2/3/4, vst2/3/4) and
 * conversions.
 */

#include <gtest/gtest.h>

#include "simd/simd.hh"
#include "trace/stats.hh"

using namespace swan;
using namespace swan::simd;

TEST(SimdWide, MovlHalves)
{
    Vec<uint8_t, 128> v;
    for (int i = 0; i < 16; ++i)
        v.lane[size_t(i)] = uint8_t(200 + i);
    auto lo = vmovl_lo(v);
    auto hi = vmovl_hi(v);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(lo[i], 200 + i);
        EXPECT_EQ(hi[i], 208 + i);
    }
}

TEST(SimdWide, WideningArithmetic)
{
    auto a = vdup<uint8_t, 128>(uint8_t(250));
    auto b = vdup<uint8_t, 128>(uint8_t(10));
    EXPECT_EQ(vaddl_lo(a, b)[0], 260);
    EXPECT_EQ(vsubl_lo(b, a)[0], uint16_t(10 - 250)); // wraps in u16
    EXPECT_EQ(vmull_lo(a, b)[0], 2500);
    auto acc = vdup<uint16_t, 128>(uint16_t(7));
    EXPECT_EQ(vmlal_lo(acc, a, b)[0], 2507);
    EXPECT_EQ(vmlsl_lo(vdup<uint16_t, 128>(uint16_t(3000)), a, b)[0],
              500);
    EXPECT_EQ(vshll_lo(b, 3)[0], 80);
    EXPECT_EQ(vaddw_lo(acc, b)[0], 17);
    EXPECT_EQ(vaddw_hi(acc, b)[0], 17);
}

TEST(SimdWide, NarrowingPair)
{
    auto lo = vdup<uint16_t, 128>(uint16_t(0x1234));
    auto hi = vdup<uint16_t, 128>(uint16_t(0x5678));
    auto n = vmovn(lo, hi);
    EXPECT_EQ(n[0], 0x34);
    EXPECT_EQ(n[8], 0x78);
    auto s = vshrn(lo, hi, 8);
    EXPECT_EQ(s[0], 0x12);
    EXPECT_EQ(s[8], 0x56);
}

TEST(SimdWide, SaturatingNarrow)
{
    auto big = vdup<int16_t, 128>(int16_t(300));
    auto neg = vdup<int16_t, 128>(int16_t(-5));
    auto q = vqmovn(big, neg);
    EXPECT_EQ(q[0], 127);   // saturated s8
    EXPECT_EQ(q[8], -5);
    auto u = vqmovun(big, neg);
    EXPECT_EQ(u[0], 255);   // saturated u8
    EXPECT_EQ(u[8], 0);     // clamped below
}

TEST(SimdWide, RoundingNarrowShift)
{
    auto v = vdup<uint16_t, 128>(uint16_t(0x00ff));
    EXPECT_EQ(vrshrn(v, v, 4)[0], (0xff + 8) >> 4);
    auto s = vdup<int16_t, 128>(int16_t(-100));
    EXPECT_EQ(vqrshrun(s, s, 2)[0], 0); // negative clamps to 0
}

TEST(SimdWide, PairwiseOps)
{
    Vec<uint8_t, 128> v;
    for (int i = 0; i < 16; ++i)
        v.lane[size_t(i)] = uint8_t(i);
    auto pl = vpaddl(v);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(pl[i], uint16_t(2 * i + (2 * i + 1)));
    auto acc = vdup<uint16_t, 128>(uint16_t(100));
    auto pa = vpadal(acc, v);
    EXPECT_EQ(pa[0], 101);
    auto a32 = vdup<uint32_t, 128>(1u);
    auto b32 = vdup<uint32_t, 128>(9u);
    auto pp = vpadd(a32, b32);
    EXPECT_EQ(pp[0], 2u);
    EXPECT_EQ(pp[2], 18u);
}

TEST(SimdWide, AcrossVectorReductions)
{
    Vec<uint8_t, 128> v;
    uint32_t ref = 0;
    for (int i = 0; i < 16; ++i) {
        v.lane[size_t(i)] = uint8_t(10 + i);
        ref += uint32_t(10 + i);
    }
    EXPECT_EQ(vaddlv(v).v, ref);
    EXPECT_EQ(vmaxv(v).v, 25);
    EXPECT_EQ(vminv(v).v, 10);
    auto f = vdup<float, 128>(1.25f);
    EXPECT_FLOAT_EQ(vaddv(f).v, 5.0f);
}

TEST(SimdWide, ConversionsIntFloat)
{
    auto f = vdup<float, 128>(3.75f);
    auto i = vcvt<int32_t>(f);
    EXPECT_EQ(i[0], 3); // truncation
    auto back = vcvt<float>(i);
    EXPECT_FLOAT_EQ(back[0], 3.0f);
}

TEST(SimdWide, Fp16Conversions)
{
    auto h = vdup<Half, 128>(Half(1.5f));
    auto f_lo = vcvt_f32_lo(h);
    auto f_hi = vcvt_f32_hi(h);
    EXPECT_FLOAT_EQ(f_lo[0], 1.5f);
    EXPECT_FLOAT_EQ(f_hi[0], 1.5f);
    auto back = vcvt_f16(f_lo, f_hi);
    EXPECT_FLOAT_EQ(float(back[0]), 1.5f);
}

TEST(SimdMem, LoadStoreRoundTrip)
{
    int32_t buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    auto v = vld1<128>(buf);
    int32_t out[4] = {};
    vst1(out, v);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(out[i], buf[i]);
}

TEST(SimdMem, PartialLoadTracksActiveLanes)
{
    float buf[4] = {1, 2, 3, 4};
    auto v = vld1_partial<128>(buf, 3);
    EXPECT_EQ(v.active, 3);
    EXPECT_FLOAT_EQ(v[2], 3.0f);
    EXPECT_FLOAT_EQ(v[3], 0.0f);
    float out[4] = {-1, -1, -1, -1};
    vst1_partial(out, v, 3);
    EXPECT_FLOAT_EQ(out[2], 3.0f);
    EXPECT_FLOAT_EQ(out[3], -1.0f); // untouched
}

TEST(SimdMem, Vld4Deinterleaves)
{
    uint8_t buf[64];
    for (int i = 0; i < 64; ++i)
        buf[i] = uint8_t(i);
    auto q = vld4<128>(buf);
    for (int reg = 0; reg < 4; ++reg)
        for (int e = 0; e < 16; ++e)
            EXPECT_EQ(q[size_t(reg)][e], uint8_t(4 * e + reg));
    uint8_t out[64] = {};
    vst4(out, q);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(out[i], buf[i]);
}

TEST(SimdMem, Vld2RoundTrip)
{
    float buf[8] = {0, 10, 1, 11, 2, 12, 3, 13};
    auto pair = vld2<128>(buf);
    for (int i = 0; i < 4; ++i) {
        EXPECT_FLOAT_EQ(pair[0][i], float(i));
        EXPECT_FLOAT_EQ(pair[1][i], float(10 + i));
    }
    float out[8] = {};
    vst2(out, pair);
    for (int i = 0; i < 8; ++i)
        EXPECT_FLOAT_EQ(out[i], buf[i]);
}

TEST(SimdMem, StrideTagsRecorded)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    uint8_t buf[64] = {};
    auto q = vld4<128>(buf);
    vst4(buf, q);
    trace::MixStats mix;
    mix.addTrace(rec.instrs());
    EXPECT_EQ(mix.count(trace::StrideKind::Ld4), 1u);
    EXPECT_EQ(mix.count(trace::StrideKind::St4), 1u);
}

TEST(SimdMem, MemInstructionsCarryAddresses)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    uint16_t buf[8] = {};
    (void)vld1<128>(buf);
    const auto &instr = rec.instrs().back();
    EXPECT_EQ(instr.addr, reinterpret_cast<uint64_t>(buf));
    EXPECT_EQ(instr.size, 16u);
    EXPECT_TRUE(instr.isLoad());
}
