/**
 * @file
 * Unit and property tests for the WebAssembly SIMD128 instruction-set
 * model (simd/vec_wasm.hh): shaped arithmetic over the untyped v128,
 * widening/narrowing, shuffles and swizzles, the horizontal-fold helpers,
 * the relaxed-simd fused ops, and the trace records the porting study's
 * instruction-count claims rest on.
 */

#include <array>
#include <cstring>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "simd/simd.hh"
#include "trace/recorder.hh"
#include "trace/stats.hh"

using namespace swan;
using namespace swan::simd;
namespace ws = swan::simd::wasm;
using ws::v128;

namespace
{

/** Build a v128 from 16 explicit bytes. */
v128
bytes16(std::array<uint8_t, 16> b)
{
    v128 v;
    for (int i = 0; i < 16; ++i)
        v.lane[size_t(i)] = b[size_t(i)];
    return v;
}

/** Build a v128 holding iota bytes 0..15. */
v128
iotaBytes(uint8_t start = 0)
{
    std::array<uint8_t, 16> b{};
    for (int i = 0; i < 16; ++i)
        b[size_t(i)] = uint8_t(start + i);
    return bytes16(b);
}

/** Read lane @p i of the register under shape T (test-side, untraced). */
template <typename T>
T
laneAs(const v128 &v, int i)
{
    T out;
    std::memcpy(&out, v.lane.data() + size_t(i) * sizeof(T), sizeof(T));
    return out;
}

/** Build a v128 from lanes of shape T (test-side, untraced). */
template <typename T, size_t N>
v128
fromLanes(std::array<T, N> lanes)
{
    static_assert(N * sizeof(T) == 16);
    v128 v;
    std::memcpy(v.lane.data(), lanes.data(), 16);
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// Shaped integer arithmetic on the untyped register.
// ---------------------------------------------------------------------

TEST(WasmArith, I8x16AddWrapsAround)
{
    auto a = fromLanes<uint8_t, 16>({250, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                     11, 12, 13, 14, 15});
    auto b = fromLanes<uint8_t, 16>({10, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                                     1, 1, 1, 1});
    auto r = ws::i8x16_add(a, b);
    EXPECT_EQ(laneAs<uint8_t>(r, 0), 4); // 250 + 10 wraps
    EXPECT_EQ(laneAs<uint8_t>(r, 1), 2);
}

TEST(WasmArith, I16x8MulKeepsLowHalf)
{
    auto a = fromLanes<uint16_t, 8>({300, 2, 3, 4, 5, 6, 7, 8});
    auto b = fromLanes<uint16_t, 8>({300, 2, 3, 4, 5, 6, 7, 8});
    auto r = ws::i16x8_mul(a, b);
    EXPECT_EQ(laneAs<uint16_t>(r, 0), uint16_t(300 * 300)); // 90000 wraps
    EXPECT_EQ(laneAs<uint16_t>(r, 1), 4);
}

TEST(WasmArith, I32x4SubAndShifts)
{
    auto a = fromLanes<uint32_t, 4>({100, 200, 300, 400});
    auto b = fromLanes<uint32_t, 4>({1, 2, 3, 4});
    auto r = ws::i32x4_sub(a, b);
    EXPECT_EQ(laneAs<uint32_t>(r, 3), 396u);
    r = ws::i32x4_shl(r, 2);
    EXPECT_EQ(laneAs<uint32_t>(r, 0), 396u);
    r = ws::i32x4_shr_u(r, 2);
    EXPECT_EQ(laneAs<uint32_t>(r, 0), 99u);
}

TEST(WasmArith, I32x4ShrSignExtends)
{
    auto a = fromLanes<int32_t, 4>({-8, 8, -16, 16});
    auto r = ws::i32x4_shr_s(a, 2);
    EXPECT_EQ(laneAs<int32_t>(r, 0), -2);
    EXPECT_EQ(laneAs<int32_t>(r, 1), 2);
}

TEST(WasmArith, SaturatingAddClampsU8)
{
    auto a = fromLanes<uint8_t, 16>({250, 250, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                     0, 0, 0, 0, 0});
    auto b = fromLanes<uint8_t, 16>({250, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                     0, 0, 0, 0});
    auto r = ws::i8x16_add_sat_u(a, b);
    EXPECT_EQ(laneAs<uint8_t>(r, 0), 255);
    EXPECT_EQ(laneAs<uint8_t>(r, 1), 254);
}

TEST(WasmArith, AvgrRoundsUp)
{
    auto a = fromLanes<uint8_t, 16>({1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                     0, 0, 0, 0});
    auto b = fromLanes<uint8_t, 16>({2, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                     0, 0, 0, 0});
    auto r = ws::i8x16_avgr_u(a, b);
    EXPECT_EQ(laneAs<uint8_t>(r, 0), 2); // (1+2+1)>>1
    EXPECT_EQ(laneAs<uint8_t>(r, 1), 2);
}

TEST(WasmArith, MinMaxPerShape)
{
    auto a = fromLanes<int16_t, 8>({-5, 5, -5, 5, -5, 5, -5, 5});
    auto b = fromLanes<int16_t, 8>({0, 0, 0, 0, 0, 0, 0, 0});
    EXPECT_EQ(laneAs<int16_t>(ws::i16x8_min_s(a, b), 0), -5);
    EXPECT_EQ(laneAs<int16_t>(ws::i16x8_max_s(a, b), 0), 0);
    auto c = fromLanes<int32_t, 4>({-7, 7, -7, 7});
    auto z = fromLanes<int32_t, 4>({0, 0, 0, 0});
    EXPECT_EQ(laneAs<int32_t>(ws::i32x4_min_s(c, z), 0), -7);
    EXPECT_EQ(laneAs<int32_t>(ws::i32x4_max_s(c, z), 1), 7);
}

TEST(WasmArith, Q15MulrMatchesNeonSqrdmulh)
{
    auto a = fromLanes<int16_t, 8>({16384, -16384, 32767, -32768, 1000,
                                    -1000, 0, 5});
    auto b = fromLanes<int16_t, 8>({16384, 16384, 32767, -32768, 1000,
                                    1000, 5, 0});
    auto r = ws::i16x8_q15mulr_sat_s(a, b);
    auto expect = vqrdmulh(vreinterpret<int16_t>(a),
                           vreinterpret<int16_t>(b));
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(laneAs<int16_t>(r, i), expect.lane[size_t(i)]);
}

// ---------------------------------------------------------------------
// Bitwise and comparisons.
// ---------------------------------------------------------------------

TEST(WasmBitwise, AndOrXorNotAndnot)
{
    auto a = fromLanes<uint32_t, 4>({0xf0f0f0f0u, 0, 0xffffffffu, 0});
    auto b = fromLanes<uint32_t, 4>({0xff00ff00u, 0, 0x0000ffffu, 0});
    EXPECT_EQ(laneAs<uint32_t>(ws::v128_and(a, b), 0), 0xf000f000u);
    EXPECT_EQ(laneAs<uint32_t>(ws::v128_or(a, b), 0), 0xfff0fff0u);
    EXPECT_EQ(laneAs<uint32_t>(ws::v128_xor(a, b), 0), 0x0ff00ff0u);
    EXPECT_EQ(laneAs<uint32_t>(ws::v128_not(a), 1), 0xffffffffu);
    EXPECT_EQ(laneAs<uint32_t>(ws::v128_andnot(a, b), 2), 0xffff0000u);
}

TEST(WasmBitwise, BitselectTakesMaskBits)
{
    auto a = fromLanes<uint32_t, 4>({0xaaaaaaaau, 1, 2, 3});
    auto b = fromLanes<uint32_t, 4>({0x55555555u, 9, 9, 9});
    auto m = fromLanes<uint32_t, 4>({0xffff0000u, 0xffffffffu, 0, 0});
    auto r = ws::v128_bitselect(a, b, m);
    EXPECT_EQ(laneAs<uint32_t>(r, 0), 0xaaaa5555u);
    EXPECT_EQ(laneAs<uint32_t>(r, 1), 1u);
    EXPECT_EQ(laneAs<uint32_t>(r, 2), 9u);
}

TEST(WasmBitwise, CompareLanesAllOnesOrZero)
{
    auto a = fromLanes<int32_t, 4>({5, -5, 7, 0});
    auto b = fromLanes<int32_t, 4>({0, 0, 7, 1});
    auto gt = ws::i32x4_gt_s(a, b);
    EXPECT_EQ(laneAs<uint32_t>(gt, 0), 0xffffffffu);
    EXPECT_EQ(laneAs<uint32_t>(gt, 1), 0u);
    EXPECT_EQ(laneAs<uint32_t>(gt, 2), 0u);
    auto eq = ws::i8x16_eq(iotaBytes(), iotaBytes());
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(laneAs<uint8_t>(eq, i), 0xffu);
}

TEST(WasmBitwise, AnyTrueDetectsNonzero)
{
    auto zero = ws::splat(uint8_t(0));
    EXPECT_EQ(ws::v128_any_true(zero).v, 0u);
    auto one = ws::replace_lane(zero, 7, Sc<uint8_t>(1));
    EXPECT_EQ(ws::v128_any_true(one).v, 1u);
}

// ---------------------------------------------------------------------
// Widening / narrowing / pairwise.
// ---------------------------------------------------------------------

TEST(WasmWiden, ExtendLowHighU8)
{
    auto v = iotaBytes(240); // 240..255
    auto lo = ws::i16x8_extend_low_u8x16(v);
    auto hi = ws::i16x8_extend_high_u8x16(v);
    EXPECT_EQ(laneAs<uint16_t>(lo, 0), 240);
    EXPECT_EQ(laneAs<uint16_t>(lo, 7), 247);
    EXPECT_EQ(laneAs<uint16_t>(hi, 0), 248);
    EXPECT_EQ(laneAs<uint16_t>(hi, 7), 255);
}

TEST(WasmWiden, ExtmulMatchesWideProduct)
{
    auto a = fromLanes<uint16_t, 8>({60000, 2, 3, 4, 5, 6, 7, 50000});
    auto b = fromLanes<uint16_t, 8>({60000, 2, 3, 4, 5, 6, 7, 3});
    auto lo = ws::i32x4_extmul_low_u16x8(a, b);
    auto hi = ws::i32x4_extmul_high_u16x8(a, b);
    EXPECT_EQ(laneAs<uint32_t>(lo, 0), 3600000000u);
    EXPECT_EQ(laneAs<uint32_t>(hi, 3), 150000u);
}

TEST(WasmWiden, ExtaddPairwiseSumsAdjacent)
{
    auto v = iotaBytes(); // 0..15
    auto p = ws::i16x8_extadd_pairwise_u8x16(v);
    EXPECT_EQ(laneAs<uint16_t>(p, 0), 1);  // 0+1
    EXPECT_EQ(laneAs<uint16_t>(p, 7), 29); // 14+15
    auto q = ws::i32x4_extadd_pairwise_u16x8(p);
    EXPECT_EQ(laneAs<uint32_t>(q, 0), 6u); // 0+1+2+3
}

TEST(WasmWiden, DotProductSignedPairs)
{
    auto a = fromLanes<int16_t, 8>({1, 2, 3, 4, -5, 6, 100, 100});
    auto b = fromLanes<int16_t, 8>({10, 10, 10, 10, 10, 10, 300, 300});
    auto r = ws::i32x4_dot_i16x8_s(a, b);
    EXPECT_EQ(laneAs<int32_t>(r, 0), 30);
    EXPECT_EQ(laneAs<int32_t>(r, 1), 70);
    EXPECT_EQ(laneAs<int32_t>(r, 2), 10);
    EXPECT_EQ(laneAs<int32_t>(r, 3), 60000);
}

TEST(WasmNarrow, NarrowI16ToU8Saturates)
{
    auto lo = fromLanes<int16_t, 8>({-1, 0, 255, 256, 300, 128, 127, 1});
    auto hi = fromLanes<int16_t, 8>({5, 6, 7, 8, 9, 10, 11, 12});
    auto r = ws::i8x16_narrow_i16x8_u(lo, hi);
    EXPECT_EQ(laneAs<uint8_t>(r, 0), 0);   // -1 clamps to 0
    EXPECT_EQ(laneAs<uint8_t>(r, 2), 255);
    EXPECT_EQ(laneAs<uint8_t>(r, 3), 255); // 256 clamps
    EXPECT_EQ(laneAs<uint8_t>(r, 8), 5);   // high half follows
}

TEST(WasmNarrow, NarrowI32ToI16Saturates)
{
    auto lo = fromLanes<int32_t, 4>({-40000, 40000, 100, -100});
    auto hi = fromLanes<int32_t, 4>({1, 2, 3, 4});
    auto r = ws::i16x8_narrow_i32x4_s(lo, hi);
    EXPECT_EQ(laneAs<int16_t>(r, 0), -32768);
    EXPECT_EQ(laneAs<int16_t>(r, 1), 32767);
    EXPECT_EQ(laneAs<int16_t>(r, 2), 100);
    EXPECT_EQ(laneAs<int16_t>(r, 4), 1);
}

// ---------------------------------------------------------------------
// Floating point and conversions.
// ---------------------------------------------------------------------

TEST(WasmFloat, ArithmeticLanewise)
{
    auto a = fromLanes<float, 4>({1.0f, 2.0f, -3.0f, 4.0f});
    auto b = fromLanes<float, 4>({0.5f, 0.5f, 0.5f, 0.5f});
    EXPECT_FLOAT_EQ(laneAs<float>(ws::f32x4_add(a, b), 0), 1.5f);
    EXPECT_FLOAT_EQ(laneAs<float>(ws::f32x4_sub(a, b), 1), 1.5f);
    EXPECT_FLOAT_EQ(laneAs<float>(ws::f32x4_mul(a, b), 2), -1.5f);
    EXPECT_FLOAT_EQ(laneAs<float>(ws::f32x4_div(a, b), 3), 8.0f);
    EXPECT_FLOAT_EQ(laneAs<float>(ws::f32x4_abs(a), 2), 3.0f);
    EXPECT_FLOAT_EQ(laneAs<float>(ws::f32x4_neg(a), 0), -1.0f);
    EXPECT_FLOAT_EQ(laneAs<float>(ws::f32x4_min(a, b), 2), -3.0f);
    EXPECT_FLOAT_EQ(laneAs<float>(ws::f32x4_max(a, b), 0), 1.0f);
}

TEST(WasmFloat, RelaxedMaddIsFusedMac)
{
    auto a = fromLanes<float, 4>({2.0f, 3.0f, 4.0f, 5.0f});
    auto b = fromLanes<float, 4>({10.0f, 10.0f, 10.0f, 10.0f});
    auto c = fromLanes<float, 4>({1.0f, 1.0f, 1.0f, 1.0f});
    auto r = ws::f32x4_relaxed_madd(a, b, c);
    EXPECT_FLOAT_EQ(laneAs<float>(r, 0), 21.0f);
    EXPECT_FLOAT_EQ(laneAs<float>(r, 3), 51.0f);
    auto s = ws::f32x4_relaxed_nmadd(a, b, c);
    EXPECT_FLOAT_EQ(laneAs<float>(s, 0), -19.0f);
}

TEST(WasmFloat, ConvertAndTruncRoundTrip)
{
    auto i = fromLanes<int32_t, 4>({-7, 0, 42, 1000000});
    auto f = ws::f32x4_convert_i32x4_s(i);
    EXPECT_FLOAT_EQ(laneAs<float>(f, 0), -7.0f);
    auto back = ws::i32x4_trunc_sat_f32x4_s(f);
    EXPECT_EQ(laneAs<int32_t>(back, 0), -7);
    EXPECT_EQ(laneAs<int32_t>(back, 3), 1000000);
}

TEST(WasmFloat, TruncSatClampsAndZeroesNaN)
{
    auto f = fromLanes<float, 4>({3e9f, -3e9f,
                                  std::numeric_limits<float>::quiet_NaN(),
                                  1.9f});
    auto r = ws::i32x4_trunc_sat_f32x4_s(f);
    EXPECT_EQ(laneAs<int32_t>(r, 0), INT32_MAX);
    EXPECT_EQ(laneAs<int32_t>(r, 1), INT32_MIN);
    EXPECT_EQ(laneAs<int32_t>(r, 2), 0);
    EXPECT_EQ(laneAs<int32_t>(r, 3), 1);
}

// ---------------------------------------------------------------------
// Shuffles, swizzle, lane access.
// ---------------------------------------------------------------------

TEST(WasmShuffle, IdentityAndCrossRegister)
{
    auto a = iotaBytes(0);
    auto b = iotaBytes(100);
    auto id = ws::i8x16_shuffle<0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                13, 14, 15>(a, b);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(laneAs<uint8_t>(id, i), i);
    auto cross = ws::i8x16_shuffle<0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5,
                                   21, 6, 22, 7, 23>(a, b);
    EXPECT_EQ(laneAs<uint8_t>(cross, 0), 0);
    EXPECT_EQ(laneAs<uint8_t>(cross, 1), 100);
    EXPECT_EQ(laneAs<uint8_t>(cross, 15), 107);
}

TEST(WasmShuffle, SwizzleOutOfRangeYieldsZero)
{
    auto a = iotaBytes(10);
    auto idx = fromLanes<uint8_t, 16>({0, 15, 16, 255, 1, 1, 1, 1, 1, 1,
                                       1, 1, 1, 1, 1, 1});
    auto r = ws::i8x16_swizzle(a, idx);
    EXPECT_EQ(laneAs<uint8_t>(r, 0), 10);
    EXPECT_EQ(laneAs<uint8_t>(r, 1), 25);
    EXPECT_EQ(laneAs<uint8_t>(r, 2), 0);
    EXPECT_EQ(laneAs<uint8_t>(r, 3), 0);
}

TEST(WasmShuffle, ExtractReplaceLane)
{
    auto v = fromLanes<float, 4>({1.5f, 2.5f, 3.5f, 4.5f});
    EXPECT_FLOAT_EQ(ws::extract_lane<float>(v, 2).v, 3.5f);
    auto w = ws::replace_lane(v, 2, Sc<float>(9.0f));
    EXPECT_FLOAT_EQ(ws::extract_lane<float>(w, 2).v, 9.0f);
    EXPECT_FLOAT_EQ(ws::extract_lane<float>(w, 3).v, 4.5f);
}

// ---------------------------------------------------------------------
// Horizontal folds.
// ---------------------------------------------------------------------

TEST(WasmHorizontal, HsumU32MatchesScalarSum)
{
    auto v = fromLanes<uint32_t, 4>({10, 20, 30, 40});
    EXPECT_EQ(ws::hsum_u32x4(v).v, 100u);
}

TEST(WasmHorizontal, HsumF32MatchesScalarSum)
{
    auto v = fromLanes<float, 4>({0.25f, 0.5f, 1.0f, 2.0f});
    EXPECT_FLOAT_EQ(ws::hsum_f32x4(v).v, 3.75f);
}

// ---------------------------------------------------------------------
// Trace-cost contracts: the porting study's instruction-count claims.
// ---------------------------------------------------------------------

namespace
{

/** Run @p f under a buffering recorder and return the records. */
template <typename F>
std::vector<trace::Instr>
captureOps(F &&f)
{
    trace::Recorder rec;
    trace::ScopedRecorder scope(&rec);
    f();
    return rec.take();
}

} // namespace

TEST(WasmTrace, ShapedOpsEmitOneInstruction)
{
    auto a = iotaBytes(1);
    auto t = captureOps([&] { ws::i16x8_add(a, a); });
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].cls, trace::InstrClass::VInt);
    t = captureOps([&] { ws::f32x4_mul(a, a); });
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].cls, trace::InstrClass::VFloat);
    t = captureOps([&] {
        ws::i8x16_shuffle<0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                          14, 15>(a, a);
    });
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].cls, trace::InstrClass::VMisc);
}

TEST(WasmTrace, LoadsAndStoresCarryAddresses)
{
    float buf[4] = {1, 2, 3, 4};
    auto t = captureOps([&] {
        auto v = ws::v128_load(buf);
        ws::v128_store(buf, v);
    });
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].cls, trace::InstrClass::VLoad);
    EXPECT_EQ(t[0].addr, reinterpret_cast<uint64_t>(buf));
    EXPECT_EQ(t[0].size, 16u);
    EXPECT_EQ(t[1].cls, trace::InstrClass::VStore);
}

TEST(WasmTrace, HsumCostsFiveInstructions)
{
    // 2 shuffles + 2 adds + 1 lane extract, where Neon ADDV costs one
    // across-vector op: the Section 6.1 reduction-pattern gap.
    auto v = ws::splat(uint32_t(3));
    auto t = captureOps([&] { ws::hsum_u32x4(v); });
    EXPECT_EQ(t.size(), 5u);
    auto neon = captureOps([&] { vaddv(vreinterpret<uint32_t>(v)); });
    EXPECT_EQ(neon.size(), 1u);
}

TEST(WasmTrace, DeinterleaveCostsShufflesNotLdN)
{
    // 16 RGB pixels: wasm needs 3 loads + 2 shuffles per channel; Neon
    // VLD3 is a single de-interleaving load.
    uint8_t rgb[48] = {};
    auto t = captureOps([&] {
        auto v0 = ws::v128_load(rgb);
        auto v1 = ws::v128_load(rgb + 16);
        auto v2 = ws::v128_load(rgb + 32);
        // One channel (R): two dependent shuffles.
        auto p = ws::i8x16_shuffle<0, 3, 6, 9, 12, 15, 18, 21, 24, 27, 30,
                                   0, 0, 0, 0, 0>(v0, v1);
        ws::i8x16_shuffle<0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 17, 20, 23,
                          26, 29>(p, v2);
    });
    trace::MixStats mix;
    mix.addTrace(t);
    EXPECT_EQ(mix.count(trace::InstrClass::VLoad), 3u);
    EXPECT_EQ(mix.count(trace::InstrClass::VMisc), 2u);
    EXPECT_EQ(mix.count(trace::StrideKind::Ld3), 0u);

    auto neon = captureOps([&] { vld3<128>(rgb); });
    trace::MixStats nmix;
    nmix.addTrace(neon);
    EXPECT_EQ(nmix.count(trace::InstrClass::VLoad), 1u);
    EXPECT_EQ(nmix.count(trace::StrideKind::Ld3), 1u);
}

TEST(WasmTrace, SwizzleSemanticsMatchNeonTbl1)
{
    auto a = iotaBytes(50);
    auto idx = fromLanes<uint8_t, 16>({15, 14, 13, 12, 11, 10, 9, 8, 7, 6,
                                       5, 4, 3, 2, 1, 0});
    auto viaWasm = ws::i8x16_swizzle(a, idx);
    auto viaNeon = vqtbl1<128>(a, idx);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(viaWasm.lane[size_t(i)], viaNeon.lane[size_t(i)]);
}

// ---------------------------------------------------------------------
// Property sweep: shaped wasm ops agree with the Neon emulation they
// lower to, over pseudo-random inputs.
// ---------------------------------------------------------------------

class WasmVsNeonProperty : public ::testing::TestWithParam<uint32_t>
{
  protected:
    v128
    randomV128(uint64_t salt)
    {
        uint64_t s = (uint64_t(GetParam()) << 32) ^ salt;
        v128 v;
        for (auto &b : v.lane) {
            s = s * 6364136223846793005ull + 1442695040888963407ull;
            b = uint8_t(s >> 56);
        }
        return v;
    }
};

TEST_P(WasmVsNeonProperty, AddMulAgreeWithNeon)
{
    auto a = randomV128(1), b = randomV128(2);
    auto w = ws::i16x8_add(a, b);
    auto n = vadd(vreinterpret<uint16_t>(a), vreinterpret<uint16_t>(b));
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(laneAs<uint16_t>(w, i), n.lane[size_t(i)]);
    auto wm = ws::i32x4_mul(a, b);
    auto nm = vmul(vreinterpret<uint32_t>(a), vreinterpret<uint32_t>(b));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(laneAs<uint32_t>(wm, i), nm.lane[size_t(i)]);
}

TEST_P(WasmVsNeonProperty, ExtmulAgreesWithVmull)
{
    auto a = randomV128(3), b = randomV128(4);
    auto w = ws::i16x8_extmul_low_u8x16(a, b);
    auto n = vmull_lo(a, b);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(laneAs<uint16_t>(w, i), n.lane[size_t(i)]);
    auto wh = ws::i16x8_extmul_high_u8x16(a, b);
    auto nh = vmull_hi(a, b);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(laneAs<uint16_t>(wh, i), nh.lane[size_t(i)]);
}

TEST_P(WasmVsNeonProperty, HsumAgreesWithAddv)
{
    auto a = randomV128(5);
    auto w = ws::hsum_u32x4(a);
    auto n = vaddv(vreinterpret<uint32_t>(a));
    EXPECT_EQ(w.v, n.v);
}

TEST_P(WasmVsNeonProperty, ExtaddPairwiseAgreesWithVpaddl)
{
    auto a = randomV128(6);
    auto w = ws::i16x8_extadd_pairwise_u8x16(a);
    auto n = vpaddl(a);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(laneAs<uint16_t>(w, i), n.lane[size_t(i)]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WasmVsNeonProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));
