/**
 * @file
 * Minimal out-of-tree consumer of the installed swan package: checks
 * that kernels registered (the whole-archive link carried the static
 * registrars), runs one tiny Experiment through a Session, and prints
 * a line the CI job greps for.
 */

#include <iostream>

#include "swan/swan.hh"

int
main()
{
    using namespace swan;

    const auto &kernels = core::Registry::instance().kernels();
    if (kernels.empty()) {
        std::cerr << "install_smoke: no kernels registered — the "
                     "whole-archive link is broken\n";
        return 1;
    }

    Session session;
    const Results results = Experiment(session)
                                .kernel("ZL/adler32")
                                .impls({core::Impl::Scalar,
                                        core::Impl::Neon})
                                .config("prime")
                                .workingSet("tiny")
                                .run();
    const auto *scalar =
        results.find("ZL/adler32", core::Impl::Scalar, 128);
    const auto *neon = results.find("ZL/adler32", core::Impl::Neon, 128);
    if (!scalar || !neon || scalar->run.sim.cycles == 0) {
        std::cerr << "install_smoke: experiment returned no results\n";
        return 1;
    }

    std::cout << "install-smoke ok: " << kernels.size()
              << " kernels, swan " << versionString() << ", adler32 Neon "
              << core::fmtX(double(scalar->run.sim.cycles) /
                            double(neon->run.sim.cycles))
              << "\n";
    return 0;
}
