/**
 * @file
 * Tests of the execution-backend seam (sweep/backend.hh): byte-identity
 * of emitter output across {inline, threaded, sharded} x jobs x shards,
 * shard-crash recovery (a killed shard's claimed units are re-executed
 * by the parent), stale-claim cleanup, and the fleet-wide cache-stats
 * aggregation.
 *
 * Like test_sweep_scheduler.cc's jobs matrix, the compared sweeps
 * replay traces pinned on disk (primed once with a different
 * warm-up-pass count so the result cache never hits and every run
 * actually schedules and simulates): with the instruction streams
 * fixed, any cross-backend difference can only come from the
 * execution layer itself — claiming, forking, merging, recovery.
 * Fresh-capture identity across backends is additionally enforced
 * end-to-end by the CI smoke (separate `swan sweep --shards N`
 * processes).
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sweep/backend.hh"
#include "sweep/cache.hh"
#include "sweep/emit.hh"
#include "sweep/scheduler.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define SWAN_TEST_HAVE_FORK 1
#endif

using namespace swan;

namespace
{

/** A small but multi-kernel, multi-config grid: 6 trace groups. */
sweep::SweepSpec
smallGrid()
{
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32", "ZL/crc32", "OR/memcpy"};
    spec.impls = {core::Impl::Scalar, core::Impl::Neon};
    spec.configs = {"prime", "silver"};
    spec.workingSets = {"tiny"};
    return spec;
}

std::string
render(const std::vector<sweep::SweepResult> &results)
{
    std::ostringstream os;
    sweep::emitResults(os, results, sweep::Format::JsonLines);
    return os.str();
}

/** Scratch cache directory, primed so every backend run replays the
 *  same pinned traces and simulates every point. */
class BackendFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        std::string err;
        points_ = sweep::expand(smallGrid(), &err);
        ASSERT_FALSE(points_.empty()) << err;
        dir_ = std::filesystem::temp_directory_path() /
               ("swan_backend_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        sweep::ResultCache prime(dir_.string());
        sweep::SchedulerConfig sc;
        sc.cache = &prime;
        sc.warmupPasses = 2; // prime traces, never the default results
        sweep::runSweep(points_, sc);
        dropResults();
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    /** Drop stored results (keep the traces) so the next run
     *  simulates instead of replaying the result cache. */
    void
    dropResults()
    {
        for (const auto &e : std::filesystem::directory_iterator(dir_))
            if (e.path().extension() == ".swr")
                std::filesystem::remove(e.path());
    }

    std::string
    runWith(sweep::Backend backend, int jobs, int shards,
            sweep::CacheStats *stats = nullptr, int shardBatch = 1)
    {
        dropResults();
        sweep::ResultCache cache(dir_.string());
        sweep::SchedulerConfig sc;
        sc.backend = backend;
        sc.jobs = jobs;
        sc.shards = shards;
        sc.shardBatch = shardBatch;
        sc.cache = &cache;
        const auto out = render(sweep::runSweep(points_, sc));
        EXPECT_EQ(cache.stats().traceHits, 6u)
            << name(backend) << " jobs=" << jobs << " shards=" << shards;
        if (stats)
            *stats = cache.stats();
        return out;
    }

    std::vector<sweep::SweepPoint> points_;
    std::filesystem::path dir_;
};

} // namespace

TEST(SweepBackend, NamesRoundTrip)
{
    for (auto b : {sweep::Backend::Threaded, sweep::Backend::Inline,
                   sweep::Backend::Sharded}) {
        sweep::Backend parsed;
        ASSERT_TRUE(
            sweep::backendForName(std::string(sweep::name(b)), &parsed));
        EXPECT_EQ(parsed, b);
    }
    sweep::Backend b;
    EXPECT_FALSE(sweep::backendForName("fancy", &b));
}

TEST_F(BackendFixture, MatrixProducesByteIdenticalOutput)
{
    const std::string reference =
        runWith(sweep::Backend::Inline, 1, 1);
    ASSERT_FALSE(reference.empty());

    for (int jobs : {1, 4})
        EXPECT_EQ(reference, runWith(sweep::Backend::Threaded, jobs, 1))
            << "threaded jobs=" << jobs;

#ifdef SWAN_TEST_HAVE_FORK
    for (int shards : {1, 2, 3})
        for (int jobs : {1, 4})
            EXPECT_EQ(reference,
                      runWith(sweep::Backend::Sharded, jobs, shards))
                << "sharded shards=" << shards << " jobs=" << jobs;

    // shards > 1 upgrades the default threaded backend.
    EXPECT_EQ(reference, runWith(sweep::Backend::Threaded, 2, 2));
#endif
}

#ifdef SWAN_TEST_HAVE_FORK

TEST_F(BackendFixture, ShardedAggregatesFleetCacheStats)
{
    sweep::CacheStats stats;
    const auto out = runWith(sweep::Backend::Sharded, 2, 2, &stats);
    ASSERT_FALSE(out.empty());
    // A cold sharded run must report exactly what a threaded run
    // reports: one miss (parent, phase 1a) and one store (shard
    // children, absorbed back) per point.
    EXPECT_EQ(stats.misses, points_.size());
    EXPECT_EQ(stats.stores, points_.size());
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.diskHits, 0u);
}

TEST_F(BackendFixture, CrashedShardUnitsAreReExecutedByTheParent)
{
    const std::string reference = runWith(sweep::Backend::Inline, 1, 1);

    // Shard 0 claims one unit and dies without publishing anything —
    // exactly a mid-simulation crash. The parent must detect the
    // claimed-but-missing unit at merge time and re-execute it from
    // the traces it still holds, byte-identically.
    ASSERT_EQ(::setenv("SWAN_SHARD_TEST_CRASH", "0", 1), 0);
    sweep::CacheStats stats;
    const auto out = runWith(sweep::Backend::Sharded, 2, 2, &stats);
    ASSERT_EQ(::unsetenv("SWAN_SHARD_TEST_CRASH"), 0);

    EXPECT_EQ(reference, out);
    // Every point was still simulated and stored exactly once
    // (surviving shard + parent recovery).
    EXPECT_EQ(stats.stores, points_.size());
}

TEST_F(BackendFixture, BatchedClaimsProduceByteIdenticalOutput)
{
    // Claim batching changes lockfile granularity only, never results:
    // every {batch x shards x jobs} combination must render the exact
    // bytes of the serial inline run — including a batch larger than
    // the whole grid (one claim for everything) and one that divides
    // the 6 units unevenly.
    const std::string reference = runWith(sweep::Backend::Inline, 1, 1);
    ASSERT_FALSE(reference.empty());
    for (int batch : {2, 4, 100})
        for (int shards : {2, 3})
            EXPECT_EQ(reference, runWith(sweep::Backend::Sharded, 2,
                                         shards, nullptr, batch))
                << "batch=" << batch << " shards=" << shards;
}

TEST_F(BackendFixture, CrashedShardLosesItsWholeBatch)
{
    // With batch = 3, the crash-hook shard claims one whole batch and
    // dies: the parent must detect every member unit missing and
    // re-execute all of them, byte-identically.
    const std::string reference = runWith(sweep::Backend::Inline, 1, 1);
    ASSERT_EQ(::setenv("SWAN_SHARD_TEST_CRASH", "0", 1), 0);
    sweep::CacheStats stats;
    const auto out = runWith(sweep::Backend::Sharded, 1, 2, &stats, 3);
    ASSERT_EQ(::unsetenv("SWAN_SHARD_TEST_CRASH"), 0);

    EXPECT_EQ(reference, out);
    // The dead shard owned a full 3-unit batch; the surviving shard
    // and the parent's recovery still store every point exactly once.
    EXPECT_GE(stats.recoveredUnits, 3u);
    EXPECT_EQ(stats.stores, points_.size());
}

TEST_F(BackendFixture, HungShardIsKilledByWatchdogAndRecovered)
{
    const std::string reference = runWith(sweep::Backend::Inline, 1, 1);

    // Shard 0 claims one unit and then hangs forever — a wedged NFS
    // mount or a livelocked child, not a crash. With a deadline
    // configured, the parent's watchdog must notice the share
    // directory has stopped changing, kill the fleet, and recover the
    // claimed-but-unpublished unit bit-identically (the kill lands in
    // exactly the crashed-shard merge path).
    ASSERT_EQ(::setenv("SWAN_SHARD_TEST_HANG", "0", 1), 0);
    dropResults();
    sweep::ResultCache cache(dir_.string());
    sweep::SchedulerConfig sc;
    sc.backend = sweep::Backend::Sharded;
    sc.jobs = 1;
    sc.shards = 2;
    // TSan slows a healthy shard by an order of magnitude; a deadline
    // tuned for native builds would kill one that is merely slow, not
    // hung, and the premature kill can race that shard's publish. The
    // seeded hang is eternal, so a longer deadline only costs wall
    // time.
#if defined(__SANITIZE_THREAD__)
    sc.shardTimeoutMs = 10000;
#else
    sc.shardTimeoutMs = 1500;
#endif
    sc.cache = &cache;
    const auto out = render(sweep::runSweep(points_, sc));
    ASSERT_EQ(::unsetenv("SWAN_SHARD_TEST_HANG"), 0);

    EXPECT_EQ(reference, out);
    EXPECT_GE(cache.stats().recoveredUnits, 1u);
    // Every point still simulated and stored exactly once.
    EXPECT_EQ(cache.stats().stores, points_.size());
}

TEST_F(BackendFixture, StaleClaimsAreSweptLiveOnesKept)
{
    // A claim whose pid is long dead must be removed by the next
    // sharded run; a claim owned by a live process (here: ourselves)
    // must survive. Neither may affect results: a foreign live claim
    // simply routes its unit through parent recovery.
    const auto stale = dir_ / "c0123456789abcdef-00000000deadbeef.claim";
    const auto live = dir_ / "cfedcba9876543210-00000000cafef00d.claim";
    {
        std::ofstream(stale) << "pid 999999999\n";
        std::ofstream(live) << "pid " << ::getpid() << "\n";
    }
    const std::string reference = runWith(sweep::Backend::Inline, 1, 1);
    const auto out = runWith(sweep::Backend::Sharded, 1, 2);

    EXPECT_EQ(reference, out);
    EXPECT_FALSE(std::filesystem::exists(stale));
    EXPECT_TRUE(std::filesystem::exists(live));
    std::filesystem::remove(live);
}

#endif // SWAN_TEST_HAVE_FORK
