/**
 * @file
 * Registry/metadata tests: the suite must contain exactly the paper's
 * 59 data-parallel kernels across 12 libraries, with the Section 6
 * pattern counts and the eight Figure-5 wider-register kernels.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/registry.hh"

using namespace swan;
using core::Pattern;
using core::Registry;

namespace
{

std::vector<const core::KernelSpec *>
headline()
{
    std::vector<const core::KernelSpec *> out;
    for (const auto &k : Registry::instance().kernels())
        if (!k.info.excluded)
            out.push_back(&k);
    return out;
}

} // namespace

TEST(Registry, FiftyNineKernels)
{
    EXPECT_EQ(headline().size(), 59u);
}

TEST(Registry, TwelveLibraries)
{
    EXPECT_EQ(Registry::instance().symbols().size(), 12u);
    EXPECT_EQ(Registry::instance().libraries().size(), 12u);
}

TEST(Registry, Table2KernelCounts)
{
    const std::map<std::string, int> expected = {
        {"LJ", 5}, {"LP", 5}, {"LW", 6}, {"SK", 5}, {"WA", 6}, {"PF", 3},
        {"ZL", 2}, {"BS", 4}, {"OR", 4}, {"LO", 5}, {"LV", 6}, {"XP", 8}};
    for (const auto &[sym, count] : expected) {
        int n = 0;
        for (const auto *k : Registry::instance().bySymbol(sym))
            if (!k->info.excluded)
                ++n;
        EXPECT_EQ(n, count) << sym;
    }
}

TEST(Registry, QualifiedNamesUnique)
{
    std::set<std::string> names;
    for (const auto &k : Registry::instance().kernels())
        EXPECT_TRUE(names.insert(k.info.qualifiedName()).second)
            << k.info.qualifiedName();
}

TEST(Registry, EightWiderWidthKernels)
{
    std::set<std::string> wider;
    for (const auto *k : headline())
        if (k->info.widerWidths)
            wider.insert(k->info.qualifiedName());
    const std::set<std::string> expected = {
        "XP/gemm_f32",   "LJ/rgb_to_ycbcr",
        "ZL/adler32",    "WA/audible",
        "SK/convolve_vertically", "LO/pitch_autocorr",
        "LW/predict_tm", "LV/sad16x16"};
    EXPECT_EQ(wider, expected);
}

TEST(Registry, PatternCensusMatchesPaper)
{
    int reduction = 0, random_access = 0, transpose = 0;
    for (const auto *k : headline()) {
        if (core::has(k->info.patterns, Pattern::Reduction))
            ++reduction;
        if (core::has(k->info.patterns, Pattern::RandomAccess))
            ++random_access;
        if (core::has(k->info.patterns, Pattern::Transpose))
            ++transpose;
    }
    // Section 6: 7 reduction kernels, 7 random-access kernels, 6
    // transposition kernels. Our census counts every tagged kernel;
    // reductions also appear inside GEMM-style kernels (lower bound),
    // and 4 of the paper's 6 transposition kernels transpose explicitly
    // here (the XP repack transposes live outside our micro-kernels,
    // DESIGN.md limitations).
    EXPECT_GE(reduction, 7);
    EXPECT_GE(random_access, 7);
    EXPECT_GE(transpose, 4);
}

TEST(Registry, AutovecVerdictCountsMatchTable4)
{
    int vectorizes = 0;
    for (const auto *k : headline())
        if (k->info.autovec.vectorizes)
            ++vectorizes;
    EXPECT_EQ(vectorizes, 23); // Table 4: #boosted kernels
}

TEST(Registry, FindByQualifiedAndPlainName)
{
    auto &reg = Registry::instance();
    ASSERT_NE(reg.find("ZL/adler32"), nullptr);
    ASSERT_NE(reg.find("adler32"), nullptr);
    EXPECT_EQ(reg.find("ZL/adler32"), reg.find("adler32"));
    EXPECT_EQ(reg.find("nonexistent"), nullptr);
}

TEST(Registry, ExcludedKernelIsDesStudy)
{
    int excluded = 0;
    for (const auto &k : Registry::instance().kernels()) {
        if (k.info.excluded) {
            ++excluded;
            EXPECT_EQ(k.info.symbol, "BS");
        }
    }
    EXPECT_EQ(excluded, 1);
}

TEST(Registry, EveryKernelConstructs)
{
    core::Options tiny;
    tiny.imageWidth = 64;
    tiny.imageHeight = 32;
    tiny.audioSamples = 512;
    tiny.bufferBytes = 1024;
    tiny.gemmM = 8;
    tiny.gemmN = 12;
    tiny.gemmK = 8;
    tiny.videoBlocks = 2;
    for (const auto &k : Registry::instance().kernels()) {
        auto w = k.make(tiny);
        EXPECT_NE(w, nullptr) << k.info.qualifiedName();
    }
}
