/**
 * @file
 * Tests for the auto-vectorization legality model and the Table 4
 * census machinery.
 */

#include <gtest/gtest.h>

#include "autovec/legality.hh"

using namespace swan::autovec;

TEST(Autovec, FailMaskComposition)
{
    uint32_t mask = Fail::Uncountable | Fail::CostModel;
    EXPECT_TRUE(has(mask, Fail::Uncountable));
    EXPECT_TRUE(has(mask, Fail::CostModel));
    EXPECT_FALSE(has(mask, Fail::ComplexPhi));
}

TEST(Autovec, ReasonNames)
{
    EXPECT_EQ(name(Fail::Uncountable), "uncountable-loop");
    EXPECT_EQ(name(Fail::IndirectMemory), "indirect-memory");
    EXPECT_EQ(name(Fail::ComplexPhi), "complex-phi");
    EXPECT_EQ(name(Fail::OtherLegality), "other-legality");
    EXPECT_EQ(name(Fail::CostModel), "cost-model");
}

TEST(Autovec, CensusBucketsBySpeedup)
{
    std::vector<SpeedupPair> pairs = {
        {1.00, 3.0},  // ~= scalar
        {1.02, 3.0},  // ~= scalar (within 5%)
        {0.90, 3.0},  // < scalar
        {2.00, 3.0},  // boosted, < neon
        {3.00, 3.0},  // boosted, ~= neon
        {4.00, 3.0},  // boosted, > neon
    };
    auto t = census(pairs);
    EXPECT_EQ(t.autoApproxScalar, 2);
    EXPECT_EQ(t.autoBelowScalar, 1);
    EXPECT_EQ(t.autoAboveScalar, 3);
    EXPECT_EQ(t.autoBelowNeon, 1);
    EXPECT_EQ(t.autoApproxNeon, 1);
    EXPECT_EQ(t.autoAboveNeon, 1);
}

TEST(Autovec, CensusToleranceBoundary)
{
    std::vector<SpeedupPair> pairs = {{1.049, 1.0}, {1.051, 1.0}};
    auto t = census(pairs, 0.05);
    EXPECT_EQ(t.autoApproxScalar, 1);
    EXPECT_EQ(t.autoAboveScalar, 1);
}

TEST(Autovec, EmptyCensusIsZero)
{
    auto t = census({});
    EXPECT_EQ(t.autoApproxScalar + t.autoBelowScalar + t.autoAboveScalar,
              0);
}
