/**
 * @file
 * Tests for the swan command-line front end (tools/cli.hh): command
 * parsing, error handling, and the output contracts of list/info/run/
 * compare driven through string streams.
 */

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "swan/version.hh"
#include "tools/cli.hh"

using swan::tools::runCli;

namespace
{

struct CliResult
{
    int code;
    std::string out;
    std::string err;
};

CliResult
cli(std::vector<std::string> args)
{
    std::ostringstream out, err;
    int code = runCli(args, out, err);
    return {code, out.str(), err.str()};
}

} // namespace

// ---------------------------------------------------------------------
// Usage and errors.
// ---------------------------------------------------------------------

TEST(CliUsage, NoArgsPrintsUsageAndFails)
{
    auto r = cli({});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(CliUsage, HelpSucceeds)
{
    auto r = cli({"help"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("commands:"), std::string::npos);
}

TEST(CliUsage, VersionPrintsLibraryVersionAndSimdKernels)
{
    for (const char *spelling : {"version", "--version", "-V"}) {
        auto r = cli({spelling});
        EXPECT_EQ(r.code, 0) << spelling;
        // Line 1: the library version. Line 2: what the runtime ISA
        // dispatcher actually selected — the one-command answer to
        // "which decode/step kernels is this host running?".
        const auto nl = r.out.find('\n');
        ASSERT_NE(nl, std::string::npos) << spelling;
        EXPECT_EQ(r.out.substr(0, nl),
                  std::string("swan ") + swan::versionString())
            << spelling;
        const auto simd = r.out.substr(nl + 1);
        EXPECT_EQ(simd.compare(0, 10, "simd: isa="), 0) << spelling;
        EXPECT_NE(simd.find(" decode="), std::string::npos) << spelling;
        EXPECT_NE(simd.find(" step="), std::string::npos) << spelling;
    }
}

TEST(CliUsage, UnknownCommandFails)
{
    auto r = cli({"frobnicate"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliUsage, UnknownFlagFails)
{
    auto r = cli({"list", "--bogus"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("unknown argument"), std::string::npos);
}

TEST(CliUsage, MissingFlagValueFails)
{
    auto r = cli({"run", "ZL/adler32", "--core"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("needs a value"), std::string::npos);
}

TEST(CliUsage, MissingKernelArgumentFails)
{
    for (const char *cmd : {"info", "run", "compare"}) {
        auto r = cli({cmd});
        EXPECT_EQ(r.code, 2) << cmd;
        EXPECT_NE(r.err.find("needs a kernel"), std::string::npos) << cmd;
    }
}

TEST(CliUsage, UnknownKernelFails)
{
    for (const char *cmd : {"info", "run", "compare"}) {
        auto r = cli({cmd, "XX/does_not_exist"});
        EXPECT_EQ(r.code, 2) << cmd;
        EXPECT_NE(r.err.find("unknown kernel"), std::string::npos) << cmd;
    }
}

TEST(CliUsage, BadImplCoreBitsRejected)
{
    EXPECT_EQ(cli({"run", "ZL/adler32", "--impl", "avx"}).code, 2);
    EXPECT_EQ(cli({"run", "ZL/adler32", "--core", "m1"}).code, 2);
    EXPECT_EQ(cli({"run", "ZL/adler32", "--bits", "96"}).code, 2);
}

TEST(CliUsage, BadShardsRejected)
{
    for (const char *v : {"0", "-2", "abc", "100000"}) {
        auto r = cli({"sweep", "--kernels", "ZL/adler32", "--shards", v});
        EXPECT_EQ(r.code, 2) << v;
        EXPECT_NE(r.err.find("--shards"), std::string::npos) << v;
    }
}

TEST(CliUsage, WiderBitsRequireWiderKernel)
{
    // PF/fft_forward is not one of the eight Figure-5 kernels.
    auto r = cli({"run", "PF/fft_forward", "--bits", "512"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("wider-register"), std::string::npos);
}

// ---------------------------------------------------------------------
// list / info.
// ---------------------------------------------------------------------

TEST(CliList, ListsAllKernels)
{
    auto r = cli({"list"});
    ASSERT_EQ(r.code, 0);
    const size_t n = swan::core::Registry::instance().kernels().size();
    EXPECT_NE(r.out.find(std::to_string(n) + " kernels"),
              std::string::npos);
    EXPECT_NE(r.out.find("ZL/adler32"), std::string::npos);
    EXPECT_NE(r.out.find("XP/gemm_f32"), std::string::npos);
}

TEST(CliList, FiltersByLibrary)
{
    auto r = cli({"list", "--library", "ZL"});
    ASSERT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("ZL/adler32"), std::string::npos);
    EXPECT_EQ(r.out.find("XP/"), std::string::npos);
}

TEST(CliList, UnknownLibraryFails)
{
    auto r = cli({"list", "--library", "QQ"});
    EXPECT_EQ(r.code, 2);
}

TEST(CliInfo, PrintsMetadata)
{
    auto r = cli({"info", "ZL/adler32"});
    ASSERT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("zlib"), std::string::npos);
    EXPECT_NE(r.out.find("patterns:"), std::string::npos);
    EXPECT_NE(r.out.find("reduction"), std::string::npos);
}

TEST(CliInfo, ShowsAutovecFailureReasons)
{
    // Adler-32's s2 recurrence is the canonical complex-PHI failure.
    auto r = cli({"info", "ZL/adler32"});
    ASSERT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("fails"), std::string::npos);
}

// ---------------------------------------------------------------------
// run / compare (on the smallest inputs via SWAN_FAST in the test env).
// ---------------------------------------------------------------------

TEST(CliRun, RunsNeonAndPrintsMetrics)
{
    auto r = cli({"run", "ZL/adler32"});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("cycles:"), std::string::npos);
    EXPECT_NE(r.out.find("IPC:"), std::string::npos);
    EXPECT_NE(r.out.find("power:"), std::string::npos);
    EXPECT_NE(r.out.find("[Neon, prime, 128-bit]"), std::string::npos);
}

TEST(CliRun, RunsScalarOnSilver)
{
    auto r = cli({"run", "ZL/adler32", "--impl", "scalar", "--core",
                  "silver"});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("[Scalar, silver, 128-bit]"), std::string::npos);
}

TEST(CliRun, WiderRegistersOnFigure5Kernel)
{
    auto r = cli({"run", "ZL/adler32", "--bits", "512"});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("512-bit"), std::string::npos);
}

TEST(CliSweep, WidthsOnFigure5Kernel)
{
    auto r = cli({"sweep", "ZL/adler32"});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("1024"), std::string::npos);
    EXPECT_NE(r.out.find("Speedup vs 128-bit"), std::string::npos);
}

TEST(CliSweep, WidthsRejectedForNarrowKernel)
{
    auto r = cli({"sweep", "PF/fft_forward"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("wider-register"), std::string::npos);
}

TEST(CliSweep, CoresPrintsAllThree)
{
    auto r = cli({"sweep", "ZL/crc32", "--what", "cores"});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("silver"), std::string::npos);
    EXPECT_NE(r.out.find("gold"), std::string::npos);
    EXPECT_NE(r.out.find("prime"), std::string::npos);
}

TEST(CliSweep, BadAxisRejected)
{
    auto r = cli({"sweep", "ZL/adler32", "--what", "nonsense"});
    EXPECT_EQ(r.code, 2);
}

TEST(CliTrace, DumpThenSimulateRoundTrip)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("swan_cli_trace_" + std::to_string(::getpid()) + ".swt"))
            .string();
    auto r = cli({"run", "ZL/adler32", "--dump-trace", path});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("trace:"), std::string::npos);

    auto s = cli({"simulate", path, "--core", "gold"});
    EXPECT_EQ(s.code, 0) << s.err;
    EXPECT_NE(s.out.find("cycles:"), std::string::npos);
    EXPECT_NE(s.out.find("gold"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CliTrace, SimulateRejectsGarbageFile)
{
    auto r = cli({"simulate", "/no/such/trace.swt"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(CliCompare, PrintsThreeImplsAndVerifies)
{
    auto r = cli({"compare", "ZL/adler32"});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("Scalar"), std::string::npos);
    EXPECT_NE(r.out.find("Auto"), std::string::npos);
    EXPECT_NE(r.out.find("Neon"), std::string::npos);
    EXPECT_NE(r.out.find("outputs verified: yes"), std::string::npos);
}
