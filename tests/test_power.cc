/**
 * @file
 * Tests for the power/energy model: definitional consistency
 * (energy = power x time), monotonicity in event counts, DRAM-rate
 * sensitivity (the Section 5.3 mechanism) and per-core presets.
 */

#include <gtest/gtest.h>

#include "sim/power.hh"

using namespace swan;
using namespace swan::sim;

namespace
{

SimResult
baseResult()
{
    SimResult r;
    r.instrs = 100000;
    r.cycles = 50000;
    r.timeSec = double(r.cycles) / (2.8e9);
    r.byClass[size_t(trace::InstrClass::SInt)] = 60000;
    r.byClass[size_t(trace::InstrClass::Branch)] = 10000;
    r.byClass[size_t(trace::InstrClass::VInt)] = 30000;
    r.vecBytes = 30000 * 16;
    r.l1Accesses = 30000;
    r.l2Accesses = 2000;
    r.llcAccesses = 500;
    r.dramReads = 100;
    r.dramWrites = 50;
    return r;
}

} // namespace

TEST(Power, EnergyEqualsPowerTimesTime)
{
    auto r = baseResult();
    applyPowerModel(r, PowerParams{});
    EXPECT_GT(r.energyJ, 0.0);
    EXPECT_NEAR(r.powerW * r.timeSec, r.energyJ, 1e-12);
}

TEST(Power, MoreDramAccessesMorePower)
{
    auto low = baseResult();
    auto high = baseResult();
    high.dramReads = 20000;
    applyPowerModel(low, PowerParams{});
    applyPowerModel(high, PowerParams{});
    EXPECT_GT(high.powerW, low.powerW);
}

TEST(Power, ShorterRuntimeSavesEnergyAtEqualWork)
{
    // Same event counts, half the runtime (the Neon effect): higher
    // power, lower energy.
    auto slow = baseResult();
    auto fast = baseResult();
    fast.cycles /= 2;
    fast.timeSec /= 2;
    applyPowerModel(slow, PowerParams{});
    applyPowerModel(fast, PowerParams{});
    EXPECT_GT(fast.powerW, slow.powerW);
    EXPECT_LT(fast.energyJ, slow.energyJ);
}

TEST(Power, VectorWidthScalesDatapathEnergy)
{
    auto narrow = baseResult();
    auto wide = baseResult();
    wide.vecBytes *= 4;
    applyPowerModel(narrow, PowerParams{});
    applyPowerModel(wide, PowerParams{});
    EXPECT_GT(wide.energyJ, narrow.energyJ);
}

TEST(Power, SilverPresetDrawsLessStaticPower)
{
    auto prime = PowerParams::forConfig(primeConfig());
    auto gold = PowerParams::forConfig(goldConfig());
    auto silver = PowerParams::forConfig(silverConfig());
    EXPECT_LT(silver.staticW, gold.staticW);
    EXPECT_LT(gold.staticW, prime.staticW);
    EXPECT_LT(silver.eScalarInstr, prime.eScalarInstr);
}

TEST(Power, ZeroTimeIsSafe)
{
    SimResult r;
    applyPowerModel(r, PowerParams{});
    EXPECT_EQ(r.powerW, 0.0);
}
