/**
 * @file
 * Tests for the problem-size configuration (core/options.hh): the
 * paper-scale preset (Section 4.1), the environment-variable resolution
 * order, and the size relations the fidelity argument in DESIGN.md
 * depends on (scaled image working sets still exceed the L2, GEMM N
 * stays indivisible by wide-register lane counts).
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/options.hh"

using swan::core::Options;

namespace
{

/** RAII environment-variable override. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (hadOld_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    bool hadOld_ = false;
    std::string old_;
};

} // namespace

TEST(Options, FullMatchesSection41)
{
    const auto o = Options::full();
    // 720x1280 (HD) images, 1 s of 44.1 kHz audio, 128 KB buffers.
    EXPECT_EQ(o.imageWidth, 1280);
    EXPECT_EQ(o.imageHeight, 720);
    EXPECT_EQ(o.audioSamples, 44100);
    EXPECT_EQ(o.bufferBytes, 128 * 1024);
}

TEST(Options, SwanFullOverridesFast)
{
    ScopedEnv full("SWAN_FULL", "1");
    ScopedEnv fast("SWAN_FAST", "1");
    const auto o = Options::fromEnv();
    EXPECT_EQ(o.imageWidth, Options::full().imageWidth);
}

TEST(Options, FastShrinksEveryDimension)
{
    ScopedEnv full("SWAN_FULL", nullptr);
    ScopedEnv fast("SWAN_FAST", "1");
    const auto f = Options::fromEnv();
    const auto d = Options::defaults();
    EXPECT_LT(f.imageWidth * f.imageHeight, d.imageWidth * d.imageHeight);
    EXPECT_LT(f.audioSamples, d.audioSamples);
    EXPECT_LT(f.bufferBytes, d.bufferBytes);
    EXPECT_LT(f.gemmM * f.gemmN * f.gemmK, d.gemmM * d.gemmN * d.gemmK);
}

TEST(Options, ZeroValuedEnvMeansUnset)
{
    ScopedEnv full("SWAN_FULL", "0");
    ScopedEnv fast("SWAN_FAST", "0");
    const auto o = Options::fromEnv();
    EXPECT_EQ(o.imageWidth, Options::defaults().imageWidth);
}

TEST(Options, DefaultImageWorkingSetExceedsL2)
{
    // DESIGN.md fidelity argument: the scaled default must still spill
    // the 512 KiB L2 for the RGBA image/graphics kernels (4 B/px in +
    // 4 B/px out) so the paper's cache-pressure effects survive input
    // scaling.
    const auto o = Options::defaults();
    const size_t pixels = size_t(o.imageWidth) * size_t(o.imageHeight);
    EXPECT_GT(pixels * 8, size_t(512 * 1024));
    // And even the tightest kernels (1 B/px each way) exceed L1.
    EXPECT_GT(pixels * 2, size_t(64 * 1024));
}

TEST(Options, GemmNIndivisibleByWideLaneCounts)
{
    // Figure 5(a)'s utilization drop needs N % lanes != 0 for the wide
    // configurations (Section 7.1), at default and paper scale.
    for (const auto &o : {Options::defaults(), Options::full()}) {
        EXPECT_NE(o.gemmN % 32, 0) << "N=" << o.gemmN; // 1024-bit f32
        EXPECT_NE(o.gemmN % 16, 0) << "N=" << o.gemmN; // 512-bit f32
    }
}

TEST(Options, SeedIsStableAcrossPresets)
{
    // Input generation must be reproducible: presets change sizes, not
    // the deterministic seed.
    EXPECT_EQ(Options::defaults().seed, Options::full().seed);
}
