/**
 * @file
 * Cross-configuration property tests for the timing and power models:
 * invariants that must hold for *every* core configuration and every
 * trace shape — determinism, metric well-formedness, monotonicity in
 * DRAM latency/frequency, and the physical sanity of the power model.
 * Complements the targeted unit tests in test_core_model.cc by sweeping
 * the full configuration space with parameterized suites.
 */

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/configs.hh"
#include "sim/core_model.hh"
#include "sim/power.hh"

using namespace swan;
using namespace swan::sim;
using trace::Fu;
using trace::Instr;
using trace::InstrClass;

namespace
{

/** All preset configurations plus the Figure-5(b) scalability points. */
std::vector<std::pair<std::string, CoreConfig>>
allConfigs()
{
    std::vector<std::pair<std::string, CoreConfig>> out;
    out.emplace_back("prime", primeConfig());
    out.emplace_back("gold", goldConfig());
    out.emplace_back("silver", silverConfig());
    for (auto [w, v] : {std::pair{4, 2}, {4, 4}, {4, 8}, {8, 8}}) {
        out.emplace_back("sc" + std::to_string(w) + "w" +
                             std::to_string(v) + "v",
                         scalabilityConfig(w, v));
    }
    return out;
}

/** Synthetic trace shapes exercising different machine structures. */
enum class Shape
{
    AluChain,       //!< serial dependency chain
    AluParallel,    //!< independent scalar work
    VecStream,      //!< load -> vector op -> store, streaming addresses
    Mixed,          //!< scalar/vector interleave with branches
    NumShapes
};

std::vector<Instr>
buildTrace(Shape shape, int n)
{
    std::vector<Instr> t;
    uint64_t id = 0;
    auto add = [&](InstrClass cls, Fu fu, int lat, uint64_t dep = 0,
                   uint64_t addr = 0, uint32_t size = 0) {
        Instr i;
        i.id = ++id;
        i.cls = cls;
        i.fu = fu;
        i.latency = uint8_t(lat);
        i.dep0 = dep;
        i.addr = addr;
        i.size = size;
        if (cls == InstrClass::VLoad || cls == InstrClass::VStore ||
            cls == InstrClass::VInt) {
            i.vecBytes = 16;
            i.lanes = 4;
            i.activeLanes = 4;
        }
        t.push_back(i);
        return id;
    };
    switch (shape) {
      case Shape::AluChain: {
        uint64_t dep = 0;
        for (int i = 0; i < n; ++i)
            dep = add(InstrClass::SInt, Fu::SAlu, 1, dep);
        break;
      }
      case Shape::AluParallel:
        for (int i = 0; i < n; ++i)
            add(InstrClass::SInt, Fu::SAlu, 1);
        break;
      case Shape::VecStream:
        for (int i = 0; i < n; ++i) {
            uint64_t ld = add(InstrClass::VLoad, Fu::Load, 4, 0,
                              0x100000 + uint64_t(i) * 16, 16);
            uint64_t op = add(InstrClass::VInt, Fu::VUnit, 2, ld);
            add(InstrClass::VStore, Fu::Store, 1, op,
                0x900000 + uint64_t(i) * 16, 16);
        }
        break;
      case Shape::Mixed:
        for (int i = 0; i < n; ++i) {
            uint64_t ld = add(InstrClass::SLoad, Fu::Load, 4, 0,
                              0x100000 + uint64_t(i % 64) * 8, 8);
            uint64_t a = add(InstrClass::SInt, Fu::SAlu, 1, ld);
            uint64_t v = add(InstrClass::VInt, Fu::VUnit, 2, a);
            add(InstrClass::Branch, Fu::Branch, 1, v);
        }
        break;
      default:
        break;
    }
    return t;
}

using PropParam = std::tuple<int, int>; // (config index, shape index)

std::string
propName(const ::testing::TestParamInfo<PropParam> &info)
{
    static const char *shapes[] = {"AluChain", "AluParallel", "VecStream",
                                   "Mixed"};
    return allConfigs()[size_t(std::get<0>(info.param))].first +
           std::string("_") + shapes[size_t(std::get<1>(info.param))];
}

} // namespace

class SimProperty : public ::testing::TestWithParam<PropParam>
{
  protected:
    CoreConfig cfg() const
    {
        return allConfigs()[size_t(std::get<0>(GetParam()))].second;
    }
    std::vector<Instr> trace() const
    {
        return buildTrace(Shape(std::get<1>(GetParam())), 400);
    }
};

TEST_P(SimProperty, SimulationIsDeterministic)
{
    const auto t = trace();
    const auto a = simulateTrace(t, cfg());
    const auto b = simulateTrace(t, cfg());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_DOUBLE_EQ(a.l1Mpki, b.l1Mpki);
    EXPECT_EQ(a.dramReads, b.dramReads);
}

TEST_P(SimProperty, MetricsAreWellFormed)
{
    const auto r = simulateTrace(trace(), cfg());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instrs, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, double(cfg().decodeWidth) + 1e-9);
    EXPECT_GE(r.feStallPct, 0.0);
    EXPECT_LE(r.feStallPct, 100.0);
    EXPECT_GE(r.beStallPct, 0.0);
    EXPECT_LE(r.beStallPct, 100.0);
    EXPECT_GE(r.l1HitRate, 0.0);
    EXPECT_LE(r.l1HitRate, 1.0);
    // MPKI can never exceed 1000 accesses per instruction... but it can
    // never be negative either.
    EXPECT_GE(r.l1Mpki, 0.0);
    EXPECT_GE(r.l2Mpki, 0.0);
    EXPECT_GE(r.llcMpki, 0.0);
    EXPECT_GT(r.timeSec, 0.0);
}

TEST_P(SimProperty, CyclesLowerBoundedByWork)
{
    // A W-wide machine cannot retire more than W instructions per cycle.
    const auto t = trace();
    const auto r = simulateTrace(t, cfg());
    EXPECT_GE(r.cycles * uint64_t(cfg().decodeWidth), t.size());
}

TEST_P(SimProperty, SlowerDramNeverHelps)
{
    auto base = cfg();
    auto slow = cfg();
    slow.dramLatencyNs = base.dramLatencyNs * 4.0;
    const auto t = trace();
    const auto a = simulateTrace(t, base);
    const auto b = simulateTrace(t, slow);
    EXPECT_LE(a.cycles, b.cycles);
}

TEST_P(SimProperty, HigherFrequencySameCyclesLessTime)
{
    auto base = cfg();
    auto fast = cfg();
    fast.freqGHz = base.freqGHz * 2.0;
    // DRAM latency in ns converts to more cycles at higher frequency, so
    // compare a compute trace where memory is warm.
    const auto t = trace();
    const auto a = simulateTrace(t, base, /*warmup_passes=*/1);
    const auto b = simulateTrace(t, fast, /*warmup_passes=*/1);
    EXPECT_LT(b.timeSec, a.timeSec);
}

TEST_P(SimProperty, PowerModelIsPhysical)
{
    auto r = simulateTrace(trace(), cfg());
    applyPowerModel(r, PowerParams::forConfig(cfg()));
    EXPECT_GT(r.powerW, 0.0);
    EXPECT_GT(r.energyJ, 0.0);
    EXPECT_NEAR(r.energyJ, r.powerW * r.timeSec, 1e-12 + 1e-6 * r.energyJ);
}

TEST_P(SimProperty, WarmupNeverSlowsTheMeasuredPass)
{
    const auto t = trace();
    const auto cold = simulateTrace(t, cfg(), /*warmup_passes=*/0);
    const auto warm = simulateTrace(t, cfg(), /*warmup_passes=*/1);
    EXPECT_LE(warm.cycles, cold.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimProperty,
    ::testing::Combine(::testing::Range(0, 7), ::testing::Range(0, 4)),
    propName);

// ---------------------------------------------------------------------
// Cross-configuration orderings (not per-shape).
// ---------------------------------------------------------------------

TEST(SimOrdering, ColdStreamingStaysPhysicallyBounded)
{
    // Regression: the DRAM branch of the fill path used to charge the
    // L2/LLC bandwidth-queue wait twice; under a cold DRAM-saturating
    // stream, MSHR release times then outran physical time and
    // completion cycles grew without bound (wrapping 2^64). A cold
    // streaming pass must stay within a small multiple of the
    // all-misses-serialized worst case.
    const int n = 20000;
    const auto t = buildTrace(Shape::VecStream, n);
    const auto cfg = primeConfig();
    const auto cold = simulateTrace(t, cfg, /*warmup_passes=*/0);
    const uint64_t worst =
        uint64_t(n) * (cfg.dramLatencyCycles() +
                       uint64_t(cfg.dramServiceCycles()) + 64);
    EXPECT_LT(cold.cycles, worst);
}

TEST(SimOrdering, WarmupConvergesAfterOnePass)
{
    // A second warm-up pass must not change the measured result: the
    // runaway-queue bug showed up as warmup-count-dependent cycles.
    const auto t = buildTrace(Shape::VecStream, 5000);
    const auto a = simulateTrace(t, primeConfig(), 1);
    const auto b = simulateTrace(t, primeConfig(), 2);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(SimOrdering, InOrderSilverNeverBeatsPrimeOnParallelWork)
{
    const auto t = buildTrace(Shape::AluParallel, 600);
    const auto p = simulateTrace(t, primeConfig());
    const auto s = simulateTrace(t, silverConfig());
    EXPECT_LE(p.cycles, s.cycles);
}

TEST(SimOrdering, MoreVectorUnitsNeverHurtVectorStreams)
{
    const auto t = buildTrace(Shape::VecStream, 400);
    const auto narrow = simulateTrace(t, scalabilityConfig(8, 2));
    const auto wide = simulateTrace(t, scalabilityConfig(8, 8));
    EXPECT_LE(wide.cycles, narrow.cycles);
}

TEST(SimOrdering, ChainIpcBelowParallelIpc)
{
    const auto chain =
        simulateTrace(buildTrace(Shape::AluChain, 500), primeConfig());
    const auto par =
        simulateTrace(buildTrace(Shape::AluParallel, 500), primeConfig());
    EXPECT_LT(chain.ipc, par.ipc);
}
