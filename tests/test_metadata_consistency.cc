/**
 * @file
 * Cross-checks between kernel metadata and reality: every Section-6
 * pattern tag must be backed by the instructions actually present in the
 * kernel's Neon trace, the auto-vectorization verdicts must be
 * self-consistent, and workloads must be deterministic for a fixed seed.
 */

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "core/runner.hh"
#include "trace/stats.hh"

using namespace swan;
using core::Pattern;
using trace::StrideKind;

namespace
{

core::Options
tinyOptions()
{
    core::Options o;
    o.imageWidth = 64;
    o.imageHeight = 32;
    o.audioSamples = 600;
    o.bufferBytes = 1536;
    o.gemmM = 9;
    o.gemmN = 13;
    o.gemmK = 17;
    o.videoBlocks = 3;
    return o;
}

class MetadataTest
    : public ::testing::TestWithParam<const core::KernelSpec *>
{
  protected:
    trace::MixStats
    neonMix()
    {
        auto w = GetParam()->make(tinyOptions());
        auto instrs = core::Runner::capture(*w, core::Impl::Neon);
        trace::MixStats mix;
        mix.addTrace(instrs);
        return mix;
    }
};

std::string
kernelName(const ::testing::TestParamInfo<const core::KernelSpec *> &info)
{
    std::string n = info.param->info.symbol + "_" + info.param->info.name;
    for (auto &c : n)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

std::vector<const core::KernelSpec *>
allKernels()
{
    std::vector<const core::KernelSpec *> out;
    for (const auto &k : core::Registry::instance().kernels())
        out.push_back(&k);
    return out;
}

} // namespace

TEST_P(MetadataTest, StridedTagBackedByTrace)
{
    if (!core::has(GetParam()->info.patterns, Pattern::StridedAccess))
        GTEST_SKIP();
    auto mix = neonMix();
    const uint64_t strided =
        mix.count(StrideKind::Ld2) + mix.count(StrideKind::St2) +
        mix.count(StrideKind::Ld3) + mix.count(StrideKind::St3) +
        mix.count(StrideKind::Ld4) + mix.count(StrideKind::St4) +
        mix.count(StrideKind::Zip) + mix.count(StrideKind::Uzp);
    EXPECT_GT(strided, 0u) << GetParam()->info.qualifiedName();
}

TEST_P(MetadataTest, TransposeTagBackedByTrnOrZip)
{
    if (!core::has(GetParam()->info.patterns, Pattern::Transpose))
        GTEST_SKIP();
    auto mix = neonMix();
    EXPECT_GT(mix.count(StrideKind::Trn) + mix.count(StrideKind::Zip),
              0u)
        << GetParam()->info.qualifiedName();
}

TEST_P(MetadataTest, VectorApiKernelsAreLoadStoreHeavy)
{
    if (!core::has(GetParam()->info.patterns, Pattern::VectorApi))
        GTEST_SKIP();
    auto mix = neonMix();
    const double ldst = mix.fraction(trace::PaperClass::VLoad) +
                        mix.fraction(trace::PaperClass::VStore);
    // The defining property of the portable-API kernels (Section 6.5):
    // a large share of vector memory traffic. FFT butterflies sit near
    // 25%; the WA one-op APIs approach 60%.
    EXPECT_GT(ldst, 0.15) << GetParam()->info.qualifiedName();
}

TEST_P(MetadataTest, VerdictHasReasonsIffFails)
{
    const auto &v = GetParam()->info.autovec;
    if (v.vectorizes)
        EXPECT_EQ(v.failReasons, 0u) << GetParam()->info.qualifiedName();
    else
        EXPECT_NE(v.failReasons, 0u) << GetParam()->info.qualifiedName();
}

TEST_P(MetadataTest, DeterministicForFixedSeed)
{
    auto w1 = GetParam()->make(tinyOptions());
    auto w2 = GetParam()->make(tinyOptions());
    auto t1 = core::Runner::capture(*w1, core::Impl::Neon);
    auto t2 = core::Runner::capture(*w2, core::Impl::Neon);
    ASSERT_EQ(t1.size(), t2.size()) << GetParam()->info.qualifiedName();
    for (size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(int(t1[i].cls), int(t2[i].cls));
        EXPECT_EQ(t1[i].dep0, t2[i].dep0);
        if (int(t1[i].cls) != int(t2[i].cls))
            break;
    }
}

TEST_P(MetadataTest, CryptoInstructionsOnlyInCryptoLibraries)
{
    auto mix = neonMix();
    if (GetParam()->info.symbol != "BS" &&
        GetParam()->info.symbol != "ZL") {
        EXPECT_EQ(mix.count(trace::PaperClass::VCrypto), 0u)
            << GetParam()->info.qualifiedName();
    }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, MetadataTest,
                         ::testing::ValuesIn(allKernels()), kernelName);
