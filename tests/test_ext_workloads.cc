/**
 * @file
 * Integration tests for the future-ISA extension studies
 * (workloads/ext): every variant must verify against its scalar
 * reference, and the instruction-stream relations the studies exist to
 * demonstrate must hold — gathers shrink the look-up-table kernels,
 * FCMLA shrinks the complex MAC, strided loads shrink stride-8 access,
 * and predication restores tail-lane utilization.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "sim/configs.hh"
#include "trace/stats.hh"
#include "workloads/ext/ext.hh"

using namespace swan;
using workloads::ext::ComplexImpl;
using workloads::ext::LutImpl;
using workloads::ext::StrideImpl;
using workloads::ext::TailImpl;

namespace
{

core::Options
testOptions()
{
    core::Options o;
    o.audioSamples = 512;
    o.bufferBytes = 2048;
    return o;
}

/** Capture a variant's Neon trace and return mix statistics. */
trace::MixStats
neonMix(core::Workload &w, int vec_bits = 128)
{
    auto instrs = core::Runner::capture(w, core::Impl::Neon, vec_bits);
    trace::MixStats mix;
    mix.addTrace(instrs);
    return mix;
}

} // namespace

// ---------------------------------------------------------------------
// LUT / gather studies.
// ---------------------------------------------------------------------

class LutVariantTest : public ::testing::TestWithParam<LutImpl>
{
};

TEST_P(LutVariantTest, LutTransformVerifies)
{
    auto w = workloads::ext::makeLutTransform(testOptions(), GetParam());
    w->runScalar();
    w->runNeon(128);
    EXPECT_TRUE(w->verify());
}

TEST_P(LutVariantTest, DesGatherVerifies)
{
    auto w = workloads::ext::makeDesGather(testOptions(), GetParam());
    w->runScalar();
    w->runNeon(128);
    EXPECT_TRUE(w->verify());
}

TEST_P(LutVariantTest, VariantsVerifyUnderTracing)
{
    auto w = workloads::ext::makeLutTransform(testOptions(), GetParam());
    w->runScalar();
    (void)neonMix(*w);
    EXPECT_TRUE(w->verify());
}

INSTANTIATE_TEST_SUITE_P(AllLutImpls, LutVariantTest,
                         ::testing::Values(LutImpl::LaneExport,
                                           LutImpl::Gather),
                         [](const auto &info) {
                             return info.param == LutImpl::Gather
                                        ? "Gather" : "LaneExport";
                         });

TEST(LutStudy, GatherShrinksInstructionStream)
{
    auto opts = testOptions();
    auto lane = workloads::ext::makeLutTransform(opts,
                                                 LutImpl::LaneExport);
    auto gather = workloads::ext::makeLutTransform(opts, LutImpl::Gather);
    const auto laneMix = neonMix(*lane);
    const auto gatherMix = neonMix(*gather);
    // Lane export costs ~3 instructions per element (UMOV, scalar load,
    // INS); the gather replaces all of them with one vector load.
    EXPECT_LT(gatherMix.total() * 2, laneMix.total());
    // The lane-export path's look-up traffic is scalar loads + lane
    // moves; the gather path has no scalar loads in the loop at all.
    EXPECT_EQ(gatherMix.count(trace::InstrClass::SLoad), 0u);
    EXPECT_GT(laneMix.count(trace::InstrClass::SLoad), 0u);
    EXPECT_GT(gatherMix.count(trace::StrideKind::Gather), 0u);
}

TEST(LutStudy, DesGatherRemovesLaneTraffic)
{
    auto opts = testOptions();
    auto lane = workloads::ext::makeDesGather(opts, LutImpl::LaneExport);
    auto gather = workloads::ext::makeDesGather(opts, LutImpl::Gather);
    const auto laneMix = neonMix(*lane);
    const auto gatherMix = neonMix(*gather);
    // The paper: 73% of the DES Neon instructions are look-up traffic.
    const double lut_share =
        double(laneMix.count(trace::InstrClass::VMisc) +
               laneMix.count(trace::InstrClass::SLoad)) /
        double(laneMix.total());
    EXPECT_GT(lut_share, 0.5);
    EXPECT_LT(gatherMix.total() * 2, laneMix.total());
}

TEST(LutStudy, GatherBeatsScalarInSimulatedCycles)
{
    // The paper's point: with gather intrinsics the LUT kernels keep
    // their tables *and* their vector speedup.
    core::Runner runner(testOptions());
    const auto cfg = sim::primeConfig();
    auto w = workloads::ext::makeLutTransform(runner.options(),
                                              LutImpl::Gather);
    auto s = runner.run(*w, core::Impl::Scalar, cfg);
    auto n = runner.run(*w, core::Impl::Neon, cfg);
    EXPECT_TRUE(w->verify());
    EXPECT_GT(double(s.sim.cycles) / double(n.sim.cycles), 1.5);
}

// ---------------------------------------------------------------------
// Complex MAC study.
// ---------------------------------------------------------------------

class ComplexVariantTest : public ::testing::TestWithParam<ComplexImpl>
{
};

TEST_P(ComplexVariantTest, ZConvolveVerifies)
{
    auto w = workloads::ext::makeZConvolve(testOptions(), GetParam());
    w->runScalar();
    w->runNeon(128);
    EXPECT_TRUE(w->verify());
}

INSTANTIATE_TEST_SUITE_P(
    AllComplexImpls, ComplexVariantTest,
    ::testing::Values(ComplexImpl::Portable, ComplexImpl::Fmla,
                      ComplexImpl::Fcmla),
    [](const auto &info) {
        switch (info.param) {
          case ComplexImpl::Portable: return "Portable";
          case ComplexImpl::Fmla: return "Fmla";
          default: return "Fcmla";
        }
    });

TEST(ComplexStudy, InstructionBudgetsAreOrdered)
{
    auto opts = testOptions();
    auto portable =
        workloads::ext::makeZConvolve(opts, ComplexImpl::Portable);
    auto fmla = workloads::ext::makeZConvolve(opts, ComplexImpl::Fmla);
    auto fcmla = workloads::ext::makeZConvolve(opts, ComplexImpl::Fcmla);
    const auto p = neonMix(*portable);
    const auto f = neonMix(*fmla);
    const auto c = neonMix(*fcmla);
    // Section 6.5's ordering: portable > fused > FCMLA.
    EXPECT_GT(p.total(), f.total());
    EXPECT_GT(f.total(), c.total());
    // FCMLA needs no permutes; the permuted recipes do.
    EXPECT_EQ(c.count(trace::StrideKind::Trn), 0u);
    EXPECT_GT(p.count(trace::StrideKind::Trn), 0u);
}

TEST(ComplexStudy, FusedAndFcmlaArithmeticBudgets)
{
    auto opts = testOptions();
    auto portable =
        workloads::ext::makeZConvolve(opts, ComplexImpl::Portable);
    auto fmla = workloads::ext::makeZConvolve(opts, ComplexImpl::Fmla);
    auto fcmla = workloads::ext::makeZConvolve(opts, ComplexImpl::Fcmla);
    const auto p = neonMix(*portable);
    const auto f = neonMix(*fmla);
    const auto c = neonMix(*fcmla);
    // Per register of complex pairs: portable spends 4 FP ops
    // (MUL/MUL/ADD/ADD), fused spends 2 (FMLA/FMLA), FCMLA spends 2 —
    // FCMLA's win over fused is the dropped permute/sign preamble.
    EXPECT_EQ(p.count(trace::InstrClass::VFloat),
              2 * f.count(trace::InstrClass::VFloat));
    EXPECT_EQ(c.count(trace::InstrClass::VFloat),
              f.count(trace::InstrClass::VFloat));
    EXPECT_EQ(c.count(trace::InstrClass::VMisc), 0u);
    EXPECT_GT(f.count(trace::InstrClass::VMisc), 0u);
}

// ---------------------------------------------------------------------
// Stride-8 study.
// ---------------------------------------------------------------------

class StrideVariantTest : public ::testing::TestWithParam<StrideImpl>
{
};

TEST_P(StrideVariantTest, Deinterleave8Verifies)
{
    auto w = workloads::ext::makeDeinterleave8(testOptions(), GetParam());
    w->runScalar();
    w->runNeon(128);
    EXPECT_TRUE(w->verify());
}

TEST_P(StrideVariantTest, ChannelExtractVerifies)
{
    auto w = workloads::ext::makeChannelExtract(testOptions(), GetParam());
    w->runScalar();
    w->runNeon(128);
    EXPECT_TRUE(w->verify());
}

INSTANTIATE_TEST_SUITE_P(AllStrideImpls, StrideVariantTest,
                         ::testing::Values(StrideImpl::NeonUnzip,
                                           StrideImpl::StridedLoad),
                         [](const auto &info) {
                             return info.param == StrideImpl::NeonUnzip
                                        ? "NeonUnzip" : "StridedLoad";
                         });

TEST(StrideStudy, StridedLoadCutsExtractTrafficEightfold)
{
    auto opts = testOptions();
    auto neon =
        workloads::ext::makeChannelExtract(opts, StrideImpl::NeonUnzip);
    auto rvv =
        workloads::ext::makeChannelExtract(opts, StrideImpl::StridedLoad);
    const auto n = neonMix(*neon);
    const auto r = neonMix(*rvv);
    // The VLD4-pair recipe loads all 8 channels to keep one.
    EXPECT_EQ(n.loadBytes(), 8 * r.loadBytes());
    EXPECT_LT(r.total(), n.total());
    EXPECT_GT(r.count(trace::StrideKind::LdS), 0u);
}

TEST(StrideStudy, FullDeinterleaveKeepsNeonCompetitive)
{
    // When every loaded byte is used, VLD4+UZP is already efficient:
    // the strided path wins instructions only modestly.
    auto opts = testOptions();
    auto neon =
        workloads::ext::makeDeinterleave8(opts, StrideImpl::NeonUnzip);
    auto rvv =
        workloads::ext::makeDeinterleave8(opts, StrideImpl::StridedLoad);
    const auto n = neonMix(*neon);
    const auto r = neonMix(*rvv);
    EXPECT_EQ(n.loadBytes(), r.loadBytes());
    EXPECT_LT(r.total(), n.total());
    EXPECT_GT(2 * r.total(), n.total());
}

// ---------------------------------------------------------------------
// Predication study.
// ---------------------------------------------------------------------

class TailWidthTest : public ::testing::TestWithParam<int>
{
};

TEST_P(TailWidthTest, BothTailStrategiesVerify)
{
    for (auto impl : {TailImpl::NarrowTail, TailImpl::Predicated}) {
        auto w = workloads::ext::makeAxpyTail(testOptions(), impl);
        w->runScalar();
        w->runNeon(GetParam());
        EXPECT_TRUE(w->verify()) << "width " << GetParam();
    }
}

TEST_P(TailWidthTest, PredicationNeverLowersMachineUtilization)
{
    auto opts = testOptions();
    auto narrow =
        workloads::ext::makeAxpyTail(opts, TailImpl::NarrowTail);
    auto pred =
        workloads::ext::makeAxpyTail(opts, TailImpl::Predicated);
    const auto n = neonMix(*narrow, GetParam());
    const auto p = neonMix(*pred, GetParam());
    const int machineBytes = GetParam() / 8;
    EXPECT_GE(p.machineUtilization(machineBytes) + 1e-9,
              n.machineUtilization(machineBytes))
        << "width " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Widths, TailWidthTest,
                         ::testing::Values(128, 256, 512, 1024),
                         [](const auto &info) {
                             return "w" + std::to_string(info.param);
                         });

TEST(TailStudy, UtilizationGapGrowsWithWidth)
{
    // Section 7.1: the narrow-tail utilization drop grows with register
    // width (GEMM: 98% at 128 b -> 89% at 1024 b); predication holds
    // utilization near the DLP limit at every width.
    auto opts = testOptions();
    auto narrow =
        workloads::ext::makeAxpyTail(opts, TailImpl::NarrowTail);
    auto pred = workloads::ext::makeAxpyTail(opts, TailImpl::Predicated);
    const double n128 = neonMix(*narrow, 128).machineUtilization(16);
    const double n1024 = neonMix(*narrow, 1024).machineUtilization(128);
    const double p1024 = neonMix(*pred, 1024).machineUtilization(128);
    EXPECT_LT(n1024, n128);
    EXPECT_GT(p1024, 2.0 * n1024);
}

TEST(TailStudy, PredicationShrinksWideTailInstructionStream)
{
    // At 1024 bits a 27-element row fits no full vector: the Neon
    // cascade runs 512/256/64-bit chunks plus a scalar remainder where
    // predication runs one governed full-width iteration.
    auto opts = testOptions();
    auto narrow =
        workloads::ext::makeAxpyTail(opts, TailImpl::NarrowTail);
    auto pred = workloads::ext::makeAxpyTail(opts, TailImpl::Predicated);
    const auto n = neonMix(*narrow, 1024);
    const auto p = neonMix(*pred, 1024);
    EXPECT_LT(p.total(), n.total());
}

TEST(TailStudy, PredicatedLoopEmitsWhileltPerIteration)
{
    auto opts = testOptions();
    opts.bufferBytes = 256;
    auto pred = workloads::ext::makeAxpyTail(opts, TailImpl::Predicated);
    auto instrs = core::Runner::capture(*pred, core::Impl::Neon, 128);
    bool sawPredicate = false;
    for (const auto &i : instrs) {
        if (i.cls == trace::InstrClass::VInt && i.latency == 1 &&
            !i.isMem())
            sawPredicate = true;
    }
    EXPECT_TRUE(sawPredicate);
}

// ---------------------------------------------------------------------
// Uncountable-loop (first-fault) study.
// ---------------------------------------------------------------------

using workloads::ext::ScanImpl;

class ScanVariantTest : public ::testing::TestWithParam<ScanImpl>
{
};

TEST_P(ScanVariantTest, StrlenScanVerifies)
{
    auto w = workloads::ext::makeStrlenScan(testOptions(), GetParam());
    w->runScalar();
    w->runNeon(128);
    EXPECT_TRUE(w->verify());
}

TEST_P(ScanVariantTest, StrlenScanVerifiesUnderTracing)
{
    auto w = workloads::ext::makeStrlenScan(testOptions(), GetParam());
    w->runScalar();
    (void)neonMix(*w);
    EXPECT_TRUE(w->verify());
}

INSTANTIATE_TEST_SUITE_P(AllScanImpls, ScanVariantTest,
                         ::testing::Values(ScanImpl::NeonOverread,
                                           ScanImpl::SveFirstFault),
                         [](const auto &info) {
                             return info.param == ScanImpl::NeonOverread
                                        ? "NeonOverread"
                                        : "SveFirstFault";
                         });

TEST(ScanStudy, FirstFaultCutsLaneExportTraffic)
{
    auto opts = testOptions();
    auto neon = workloads::ext::makeStrlenScan(opts,
                                               ScanImpl::NeonOverread);
    auto sve = workloads::ext::makeStrlenScan(opts,
                                              ScanImpl::SveFirstFault);
    const auto n = neonMix(*neon);
    const auto s = neonMix(*sve);
    // The Neon locate path exports up to 16 lanes per string; the SVE
    // path uses one BRKB/CNTP-style op. Both beat scalar instruction
    // counts, but SVE's stream is strictly smaller.
    EXPECT_LT(s.count(trace::InstrClass::VMisc),
              n.count(trace::InstrClass::VMisc));
    EXPECT_LT(s.total(), n.total());
}

TEST(ScanStudy, BothVectorScansBeatScalarInstructionCount)
{
    auto opts = testOptions();
    for (auto impl : {ScanImpl::NeonOverread, ScanImpl::SveFirstFault}) {
        auto w = workloads::ext::makeStrlenScan(opts, impl);
        auto scalarTrace =
            core::Runner::capture(*w, core::Impl::Scalar, 128);
        trace::MixStats scalar;
        scalar.addTrace(scalarTrace);
        const auto vec = neonMix(*w);
        EXPECT_GT(scalar.total(), 2 * vec.total());
        EXPECT_TRUE(w->verify());
    }
}
