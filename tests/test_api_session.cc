/**
 * @file
 * Tests of the swan::Session façade (swan/session.hh): option
 * precedence (explicit > environment > built-in default), environment
 * parsing robustness, the scheduler configuration a session implies,
 * and the on-disk cache size cap (deterministic coldest-first pruning
 * by lookup hotness — see docs/cache.md) the session plumbs through to
 * sweep::ResultCache.
 */

#include <cstdlib>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "swan/swan.hh"

using namespace swan;

namespace
{

/** Scoped environment override; restores the prior value on exit. */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_ = true;
            old_ = old;
        }
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvGuard()
    {
        if (had_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool had_ = false;
};

std::string
tempDir(const char *tag)
{
    const auto d = std::filesystem::temp_directory_path() /
                   (std::string("swan_api_session_") + tag + "_" +
                    std::to_string(::getpid()));
    std::filesystem::remove_all(d);
    return d.string();
}

/** A distinguishable result for cache round-trips. */
core::KernelRun
runWithCycles(uint64_t cycles)
{
    core::KernelRun r;
    r.sim.cycles = cycles;
    r.sim.instrs = 100;
    return r;
}

sweep::CacheKey
keyNamed(const std::string &kernel)
{
    sweep::CacheKey k;
    k.kernel = kernel;
    k.configFp = 0x1234;
    k.optionsFp = 0x5678;
    return k;
}

} // namespace

TEST(ApiSession, BuiltinDefaultsIgnoreEnvironment)
{
    EnvGuard jobs("SWAN_JOBS", "7");
    EnvGuard shards("SWAN_SHARDS", "3");
    EnvGuard memo("SWAN_TRACE_MEMO_BYTES", "4096");
    EnvGuard dir("SWAN_SWEEP_CACHE_DIR", "/tmp/swan-should-not-be-used");
    EnvGuard cap("SWAN_SWEEP_CACHE_MAX_BYTES", "123456");

    Session s; // default ctor: library defaults, no environment
    EXPECT_EQ(s.options().jobs, 1);
    EXPECT_EQ(s.options().shards, 1);
    EXPECT_EQ(s.options().backend, sweep::Backend::Threaded);
    EXPECT_EQ(s.options().warmupPasses, 1);
    EXPECT_EQ(s.options().traceMemoBytes, 0u);
    EXPECT_TRUE(s.options().cacheDir.empty());
    EXPECT_EQ(s.options().cacheMaxBytes, 0u);
}

TEST(ApiSession, EnvDefaultsReadTheEnvironment)
{
    const auto dir = tempDir("env");
    EnvGuard jobs("SWAN_JOBS", "7");
    EnvGuard shards("SWAN_SHARDS", "3");
    EnvGuard memo("SWAN_TRACE_MEMO_BYTES", "4096");
    EnvGuard dirg("SWAN_SWEEP_CACHE_DIR", dir.c_str());
    EnvGuard cap("SWAN_SWEEP_CACHE_MAX_BYTES", "123456");

    const SessionOptions o = Session::envDefaults();
    EXPECT_EQ(o.jobs, 7);
    EXPECT_EQ(o.shards, 3);
    EXPECT_EQ(o.traceMemoBytes, 4096u);
    EXPECT_EQ(o.cacheDir, dir);
    EXPECT_EQ(o.cacheMaxBytes, 123456u);

    std::filesystem::remove_all(dir);
}

TEST(ApiSession, ExplicitOverridesBeatEnvironment)
{
    EnvGuard jobs("SWAN_JOBS", "7");
    EnvGuard shards("SWAN_SHARDS", "6");
    EnvGuard memo("SWAN_TRACE_MEMO_BYTES", "4096");

    // The fromEnv() pattern: environment as defaults, explicit wins.
    const SessionOptions o = Session::envDefaults()
                                 .withJobs(3)
                                 .withShards(2)
                                 .withTraceMemoBytes(64);
    EXPECT_EQ(o.jobs, 3);
    EXPECT_EQ(o.shards, 2);
    EXPECT_EQ(o.traceMemoBytes, 64u);

    Session s(o);
    EXPECT_EQ(s.options().jobs, 3);
    EXPECT_EQ(s.options().traceMemoBytes, 64u);
}

TEST(ApiSession, UnparsableEnvironmentFallsBackToDefaults)
{
    EnvGuard jobs("SWAN_JOBS", "abc");
    EnvGuard shards("SWAN_SHARDS", "many");
    EnvGuard memo("SWAN_TRACE_MEMO_BYTES", "12kb");
    EnvGuard cap("SWAN_SWEEP_CACHE_MAX_BYTES", "-5x");

    const SessionOptions o = Session::envDefaults();
    EXPECT_EQ(o.jobs, 1);
    EXPECT_EQ(o.shards, 1);
    EXPECT_EQ(o.traceMemoBytes, 0u);
    EXPECT_EQ(o.cacheMaxBytes, 0u);

    EnvGuard negative("SWAN_JOBS", "-4");
    EXPECT_EQ(Session::envDefaults().jobs, 1);
    EnvGuard negShards("SWAN_SHARDS", "-2");
    EXPECT_EQ(Session::envDefaults().shards, 1);
}

TEST(ApiSession, SchedulerConfigReflectsOptions)
{
    Session s(SessionOptions{}
                  .withJobs(5)
                  .withShards(4)
                  .withBackend(sweep::Backend::Inline)
                  .withWarmupPasses(2)
                  .withTraceMemoBytes(1 << 20));
    const sweep::SchedulerConfig sc = s.schedulerConfig();
    EXPECT_EQ(sc.jobs, 5);
    EXPECT_EQ(sc.shards, 4);
    EXPECT_EQ(sc.backend, sweep::Backend::Inline);
    EXPECT_EQ(sc.warmupPasses, 2);
    EXPECT_EQ(sc.traceMemoBytes, uint64_t(1) << 20);
    EXPECT_EQ(sc.cache, &s.cache());
}

TEST(ApiSession, CacheDirAndCapArePlumbedThrough)
{
    const auto dir = tempDir("plumb");
    Session s(SessionOptions{}.withCacheDir(dir).withCacheMaxBytes(4096));
    EXPECT_EQ(s.cache().diskDir(), dir);
    EXPECT_EQ(s.cache().maxDiskBytes(), 4096u);
    EXPECT_TRUE(std::filesystem::is_directory(dir));
    std::filesystem::remove_all(dir);
}

TEST(ApiSession, DiskCapPrunesColdestEntriesFirst)
{
    namespace fs = std::filesystem;
    const auto dir = tempDir("prune");

    // Learn one entry's on-disk size, then cap the tier at two entries.
    uint64_t entryBytes = 0;
    {
        sweep::ResultCache probe(dir);
        probe.store(keyNamed("K/probe"), runWithCycles(1));
        entryBytes = probe.diskBytes();
        ASSERT_GT(entryBytes, 0u);
    }
    fs::remove_all(dir);

    const uint64_t cap = 2 * entryBytes + entryBytes / 2;
    sweep::ResultCache cache(dir, cap);
    core::KernelRun got;
    // The scheduler's shape: every point is looked up before its store,
    // so each key carries a hotness record. K/a is looked up twice —
    // the hottest; K/b and K/c tie at one lookup each, and K/b saw its
    // first lookup earlier.
    EXPECT_FALSE(cache.lookup(keyNamed("K/a"), &got));
    EXPECT_FALSE(cache.lookup(keyNamed("K/b"), &got));
    cache.store(keyNamed("K/a"), runWithCycles(11));
    cache.store(keyNamed("K/b"), runWithCycles(22));
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_TRUE(cache.lookup(keyNamed("K/a"), &got));

    EXPECT_FALSE(cache.lookup(keyNamed("K/c"), &got));
    cache.store(keyNamed("K/c"), runWithCycles(33));

    // Coldest-first, tie on first-lookup order: K/b goes. Mtimes never
    // enter the decision — the timestamps a copy or a slow filesystem
    // clock would assign cannot reorder eviction.
    EXPECT_LE(cache.diskBytes(), cap);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_TRUE(
        fs::exists(fs::path(dir) / (keyNamed("K/a").hex() + ".swr")));
    EXPECT_FALSE(
        fs::exists(fs::path(dir) / (keyNamed("K/b").hex() + ".swr")));
    EXPECT_TRUE(
        fs::exists(fs::path(dir) / (keyNamed("K/c").hex() + ".swr")));
    std::filesystem::remove_all(dir);
}

TEST(ApiSession, DiskHitHeatsEntryAgainstEviction)
{
    namespace fs = std::filesystem;
    const auto dir = tempDir("lru");

    uint64_t entryBytes = 0;
    {
        sweep::ResultCache probe(dir);
        probe.store(keyNamed("K/probe"), runWithCycles(1));
        entryBytes = probe.diskBytes();
    }
    fs::remove_all(dir);

    const uint64_t cap = 2 * entryBytes + entryBytes / 2;
    sweep::ResultCache writer(dir, cap);
    writer.store(keyNamed("K/a"), runWithCycles(11));
    writer.store(keyNamed("K/b"), runWithCycles(22));

    // A fresh cache (empty memory tier, no lookup history): a disk hit
    // on K/a is demand evidence and must protect it, exactly as the
    // old LRU's stamp refresh did — but recorded in the lookup
    // sequence, not in the file's mtime.
    sweep::ResultCache reader(dir, cap);
    core::KernelRun got;
    ASSERT_TRUE(reader.lookup(keyNamed("K/a"), &got));
    EXPECT_EQ(got.sim.cycles, 11u);
    EXPECT_EQ(reader.stats().diskHits, 1u);

    EXPECT_FALSE(reader.lookup(keyNamed("K/c"), &got));
    reader.store(keyNamed("K/c"), runWithCycles(33));
    EXPECT_TRUE(
        fs::exists(fs::path(dir) / (keyNamed("K/a").hex() + ".swr")));
    EXPECT_FALSE(
        fs::exists(fs::path(dir) / (keyNamed("K/b").hex() + ".swr")));
    std::filesystem::remove_all(dir);
}
