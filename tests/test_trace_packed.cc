/**
 * @file
 * Tests of the packed trace encoding (trace/packed.hh): lossless
 * pack/unpack round-trips on randomized traces (including the
 * multi-address Gather/Scatter/LdS records), iterator and block-cursor
 * equivalence, payload (disk-tier) round-trips and corruption
 * handling, compression on a real captured trace, and the
 * simulateTraceMany single-pass multi-config replay producing results
 * bit-identical to N separate simulateTrace passes.
 */

#include <algorithm>
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "core/runner.hh"
#include "sim/core_model.hh"
#include "trace/packed.hh"

using namespace swan;
using trace::Instr;
using trace::PackedTrace;

namespace
{

bool
sameInstr(const Instr &a, const Instr &b)
{
    return a.id == b.id && a.dep0 == b.dep0 && a.dep1 == b.dep1 &&
           a.dep2 == b.dep2 && a.addr == b.addr && a.addr2 == b.addr2 &&
           a.size == b.size && a.elemStride == b.elemStride &&
           a.cls == b.cls && a.fu == b.fu && a.latency == b.latency &&
           a.vecBytes == b.vecBytes && a.lanes == b.lanes &&
           a.activeLanes == b.activeLanes && a.stride == b.stride;
}

void
expectSameTrace(const std::vector<Instr> &a, const std::vector<Instr> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(sameInstr(a[i], b[i])) << "record " << i;
}

/**
 * A randomized but recorder-shaped trace: sequential 1-based ids,
 * producer deps behind the consumer, multi-address records for the
 * Gather/Scatter/LdS/StS stride kinds.
 */
std::vector<Instr>
randomTrace(size_t n, uint32_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<Instr> out;
    out.reserve(n);
    uint64_t addr = 0x7f0000001000ull + (seed % 7) * 4096;
    for (size_t i = 0; i < n; ++i) {
        Instr ins;
        ins.id = i + 1;
        const auto dep = [&]() -> uint64_t {
            if (i == 0 || rng() % 3 == 0)
                return 0;
            return 1 + rng() % i;
        };
        ins.dep0 = dep();
        ins.dep1 = dep();
        ins.dep2 = dep();
        ins.cls = trace::InstrClass(
            rng() % uint64_t(trace::InstrClass::NumClasses));
        ins.fu = trace::Fu(rng() % uint64_t(trace::Fu::NumFus));
        ins.latency = uint8_t(1 + rng() % 20);
        if (ins.isVector()) {
            ins.vecBytes = uint8_t(16 << (rng() % 3));
            ins.lanes = uint8_t(1 + rng() % 16);
            ins.activeLanes = uint8_t(1 + rng() % ins.lanes);
        }
        if (ins.isMem()) {
            // Mostly local strides, occasionally a far jump.
            addr += rng() % 16 == 0 ? (rng() % (1 << 20)) : (rng() % 256);
            ins.addr = addr;
            ins.size = uint32_t(1 << (rng() % 7));
            if (rng() % 4 == 0) {
                static const trace::StrideKind kinds[] = {
                    trace::StrideKind::Gather, trace::StrideKind::Scatter,
                    trace::StrideKind::LdS, trace::StrideKind::StS};
                ins.stride = kinds[rng() % 4];
                ins.activeLanes = uint8_t(1 + rng() % 8);
                ins.lanes = std::max(ins.lanes, ins.activeLanes);
                if (ins.stride == trace::StrideKind::LdS ||
                    ins.stride == trace::StrideKind::StS)
                    ins.elemStride = int32_t(rng() % 4096) - 2048;
                ins.addr2 = ins.addr + rng() % (1 << 16);
            }
        }
        out.push_back(ins);
    }
    return out;
}

std::vector<sim::CoreConfig>
threeCores()
{
    return {sim::primeConfig(), sim::goldConfig(), sim::silverConfig()};
}

void
expectSameResult(const sim::SimResult &a, const sim::SimResult &b)
{
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.timeSec, b.timeSec);
    EXPECT_EQ(a.l1Mpki, b.l1Mpki);
    EXPECT_EQ(a.l2Mpki, b.l2Mpki);
    EXPECT_EQ(a.llcMpki, b.llcMpki);
    EXPECT_EQ(a.l1HitRate, b.l1HitRate);
    EXPECT_EQ(a.feStallPct, b.feStallPct);
    EXPECT_EQ(a.beStallPct, b.beStallPct);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.dramAccessPerKCycle, b.dramAccessPerKCycle);
    EXPECT_EQ(a.byClass, b.byClass);
    EXPECT_EQ(a.vecBytes, b.vecBytes);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
}

} // namespace

TEST(PackedTrace, RoundTripsRandomizedTraces)
{
    for (uint32_t seed : {1u, 2u, 3u, 42u, 1234u}) {
        const auto instrs = randomTrace(5000, seed);
        const auto packed = PackedTrace::pack(instrs);
        ASSERT_EQ(packed.size(), instrs.size());
        expectSameTrace(instrs, packed.unpack());
    }
}

TEST(PackedTrace, RoundTripsEmptyAndTiny)
{
    const PackedTrace empty = PackedTrace::pack({});
    EXPECT_EQ(empty.size(), 0u);
    EXPECT_TRUE(empty.empty());
    EXPECT_TRUE(empty.unpack().empty());
    EXPECT_EQ(empty.begin(), empty.end());

    const auto one = randomTrace(1, 7);
    expectSameTrace(one, PackedTrace::pack(one).unpack());
}

TEST(PackedTrace, IteratorMatchesUnpack)
{
    const auto instrs = randomTrace(2000, 9);
    const auto packed = PackedTrace::pack(instrs);
    size_t i = 0;
    for (const Instr &ins : packed) {
        ASSERT_LT(i, instrs.size());
        EXPECT_TRUE(sameInstr(instrs[i], ins)) << "record " << i;
        ++i;
    }
    EXPECT_EQ(i, instrs.size());
}

TEST(PackedTrace, CursorBlocksConcatenateToTheTrace)
{
    const auto instrs = randomTrace(3000, 11);
    const auto packed = PackedTrace::pack(instrs);
    PackedTrace::Cursor cur(packed);
    Instr block[PackedTrace::kBlockInstrs];
    std::vector<Instr> seen;
    size_t n;
    while ((n = cur.next(block, PackedTrace::kBlockInstrs)) != 0) {
        // Full blocks except possibly the last.
        if (seen.size() + n < instrs.size())
            EXPECT_EQ(n, PackedTrace::kBlockInstrs);
        seen.insert(seen.end(), block, block + n);
    }
    expectSameTrace(instrs, seen);

    cur.reset();
    EXPECT_EQ(cur.next(block, 1), 1u);
    EXPECT_TRUE(sameInstr(instrs[0], block[0]));
}

TEST(PackedTrace, ScratchReuseProducesIdenticalEncodings)
{
    PackedTrace::Scratch scratch;
    const auto a = randomTrace(1500, 21);
    const auto b = randomTrace(800, 22);
    const auto pa1 = PackedTrace::pack(a, &scratch);
    const auto pb = PackedTrace::pack(b, &scratch);
    const auto pa2 = PackedTrace::pack(a, &scratch);
    expectSameTrace(a, pa1.unpack());
    expectSameTrace(b, pb.unpack());
    EXPECT_EQ(pa1.byteSize(), pa2.byteSize());
    expectSameTrace(pa1.unpack(), pa2.unpack());
}

TEST(PackedTrace, CompressesARealKernelTrace)
{
    const auto *spec = core::Registry::instance().find("ZL/adler32");
    ASSERT_NE(spec, nullptr);
    auto w = spec->make(core::Options());
    const auto instrs = core::Runner::capture(*w, core::Impl::Neon, 128);
    ASSERT_FALSE(instrs.empty());

    const auto packed = PackedTrace::pack(instrs);
    const size_t aos = PackedTrace::aosBytes(instrs.size());
    // The acceptance bar is 2x; a real trace packs far tighter.
    EXPECT_LT(packed.byteSize() * 2, aos)
        << packed.byteSize() << " packed vs " << aos << " AoS bytes";
    expectSameTrace(instrs, packed.unpack());
}

TEST(PackedTrace, PayloadRoundTripsAndRejectsCorruption)
{
    const auto instrs = randomTrace(1200, 33);
    const auto packed = PackedTrace::pack(instrs);

    std::string blob;
    packed.appendPayload(&blob);

    PackedTrace back;
    ASSERT_TRUE(PackedTrace::parsePayload(
        reinterpret_cast<const uint8_t *>(blob.data()), blob.size(),
        &back));
    expectSameTrace(instrs, back.unpack());

    // Truncation, bit flips and short headers must all be rejected.
    PackedTrace junk;
    EXPECT_FALSE(PackedTrace::parsePayload(
        reinterpret_cast<const uint8_t *>(blob.data()), blob.size() - 1,
        &junk));
    std::string flipped = blob;
    flipped[flipped.size() / 2] = char(flipped[flipped.size() / 2] ^ 0x40);
    EXPECT_FALSE(PackedTrace::parsePayload(
        reinterpret_cast<const uint8_t *>(flipped.data()), flipped.size(),
        &junk));
    EXPECT_FALSE(PackedTrace::parsePayload(
        reinterpret_cast<const uint8_t *>(blob.data()), 4, &junk));
}

TEST(PackedTrace, ReleaseStorageEmptiesTheTrace)
{
    const auto instrs = randomTrace(500, 5);
    auto packed = PackedTrace::pack(instrs);
    EXPECT_GT(packed.byteSize(), 0u);
    packed.releaseStorage();
    EXPECT_EQ(packed.byteSize(), 0u);
    EXPECT_TRUE(packed.empty());
    EXPECT_TRUE(packed.unpack().empty());
}

TEST(PackedReplay, PackedSimulationMatchesAoS)
{
    const auto instrs = randomTrace(4000, 17);
    const auto packed = PackedTrace::pack(instrs);
    for (const auto &cfg : threeCores()) {
        const auto aos = sim::simulateTrace(instrs, cfg, 1);
        const auto pkd = sim::simulateTrace(packed, cfg, 1);
        expectSameResult(aos, pkd);
    }
}

TEST(PackedReplay, SimulateTraceManyMatchesSeparatePasses)
{
    const auto instrs = randomTrace(4000, 19);
    const auto packed = PackedTrace::pack(instrs);
    const auto cfgs = threeCores();

    for (int warmup : {0, 1, 2}) {
        const auto many = sim::simulateTraceMany(packed, cfgs, warmup);
        ASSERT_EQ(many.size(), cfgs.size());
        for (size_t i = 0; i < cfgs.size(); ++i) {
            const auto one = sim::simulateTrace(instrs, cfgs[i], warmup);
            expectSameResult(one, many[i]);
        }
    }
}

TEST(PackedReplay, AoSManyOverloadMatchesToo)
{
    const auto instrs = randomTrace(2500, 23);
    const auto cfgs = threeCores();
    const auto many = sim::simulateTraceMany(instrs, cfgs, 1);
    ASSERT_EQ(many.size(), cfgs.size());
    for (size_t i = 0; i < cfgs.size(); ++i)
        expectSameResult(sim::simulateTrace(instrs, cfgs[i], 1), many[i]);
}

TEST(PackedReplay, OnBlockEqualsPerInstrSinkDelivery)
{
    const auto instrs = randomTrace(3000, 29);
    const auto cfg = sim::primeConfig();

    sim::CoreModel viaSink(cfg);
    trace::Sink *sink = &viaSink;
    for (const auto &i : instrs)
        sink->onInstr(i);
    viaSink.beginMeasurement();
    for (const auto &i : instrs)
        sink->onInstr(i);

    sim::CoreModel viaBlocks(cfg);
    viaBlocks.onBlock(instrs.data(), instrs.size());
    viaBlocks.beginMeasurement();
    viaBlocks.onBlock(instrs.data(), instrs.size());

    expectSameResult(viaSink.finish(), viaBlocks.finish());
}
