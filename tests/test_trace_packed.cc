/**
 * @file
 * Tests of the packed trace encoding (trace/packed.hh): lossless
 * pack/unpack round-trips on randomized traces (including the
 * multi-address Gather/Scatter/LdS records), iterator and block-cursor
 * equivalence, payload (disk-tier) round-trips and corruption
 * handling, compression on a real captured trace, and the
 * simulateTraceMany single-pass multi-config replay producing results
 * bit-identical to N separate simulateTrace passes.
 */

#include <algorithm>
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "core/runner.hh"
#include "sim/core_model.hh"
#include "trace/packed.hh"

using namespace swan;
using trace::Instr;
using trace::PackedTrace;

namespace
{

bool
sameInstr(const Instr &a, const Instr &b)
{
    return a.id == b.id && a.dep0 == b.dep0 && a.dep1 == b.dep1 &&
           a.dep2 == b.dep2 && a.addr == b.addr && a.addr2 == b.addr2 &&
           a.size == b.size && a.elemStride == b.elemStride &&
           a.cls == b.cls && a.fu == b.fu && a.latency == b.latency &&
           a.vecBytes == b.vecBytes && a.lanes == b.lanes &&
           a.activeLanes == b.activeLanes && a.stride == b.stride;
}

void
expectSameTrace(const std::vector<Instr> &a, const std::vector<Instr> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(sameInstr(a[i], b[i])) << "record " << i;
}

/**
 * A randomized but recorder-shaped trace: sequential 1-based ids,
 * producer deps behind the consumer, multi-address records for the
 * Gather/Scatter/LdS/StS stride kinds.
 */
std::vector<Instr>
randomTrace(size_t n, uint32_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<Instr> out;
    out.reserve(n);
    uint64_t addr = 0x7f0000001000ull + (seed % 7) * 4096;
    for (size_t i = 0; i < n; ++i) {
        Instr ins;
        ins.id = i + 1;
        const auto dep = [&]() -> uint64_t {
            if (i == 0 || rng() % 3 == 0)
                return 0;
            return 1 + rng() % i;
        };
        ins.dep0 = dep();
        ins.dep1 = dep();
        ins.dep2 = dep();
        ins.cls = trace::InstrClass(
            rng() % uint64_t(trace::InstrClass::NumClasses));
        ins.fu = trace::Fu(rng() % uint64_t(trace::Fu::NumFus));
        ins.latency = uint8_t(1 + rng() % 20);
        if (ins.isVector()) {
            ins.vecBytes = uint8_t(16 << (rng() % 3));
            ins.lanes = uint8_t(1 + rng() % 16);
            ins.activeLanes = uint8_t(1 + rng() % ins.lanes);
        }
        if (ins.isMem()) {
            // Mostly local strides, occasionally a far jump.
            addr += rng() % 16 == 0 ? (rng() % (1 << 20)) : (rng() % 256);
            ins.addr = addr;
            ins.size = uint32_t(1 << (rng() % 7));
            if (rng() % 4 == 0) {
                static const trace::StrideKind kinds[] = {
                    trace::StrideKind::Gather, trace::StrideKind::Scatter,
                    trace::StrideKind::LdS, trace::StrideKind::StS};
                ins.stride = kinds[rng() % 4];
                ins.activeLanes = uint8_t(1 + rng() % 8);
                ins.lanes = std::max(ins.lanes, ins.activeLanes);
                if (ins.stride == trace::StrideKind::LdS ||
                    ins.stride == trace::StrideKind::StS)
                    ins.elemStride = int32_t(rng() % 4096) - 2048;
                ins.addr2 = ins.addr + rng() % (1 << 16);
            }
        }
        out.push_back(ins);
    }
    return out;
}

std::vector<sim::CoreConfig>
threeCores()
{
    return {sim::primeConfig(), sim::goldConfig(), sim::silverConfig()};
}

void
expectSameResult(const sim::SimResult &a, const sim::SimResult &b)
{
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.timeSec, b.timeSec);
    EXPECT_EQ(a.l1Mpki, b.l1Mpki);
    EXPECT_EQ(a.l2Mpki, b.l2Mpki);
    EXPECT_EQ(a.llcMpki, b.llcMpki);
    EXPECT_EQ(a.l1HitRate, b.l1HitRate);
    EXPECT_EQ(a.feStallPct, b.feStallPct);
    EXPECT_EQ(a.beStallPct, b.beStallPct);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.dramAccessPerKCycle, b.dramAccessPerKCycle);
    EXPECT_EQ(a.byClass, b.byClass);
    EXPECT_EQ(a.vecBytes, b.vecBytes);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
}

} // namespace

TEST(PackedTrace, RoundTripsRandomizedTraces)
{
    for (uint32_t seed : {1u, 2u, 3u, 42u, 1234u}) {
        const auto instrs = randomTrace(5000, seed);
        const auto packed = PackedTrace::pack(instrs);
        ASSERT_EQ(packed.size(), instrs.size());
        expectSameTrace(instrs, packed.unpack());
    }
}

TEST(PackedTrace, RoundTripsEmptyAndTiny)
{
    const PackedTrace empty = PackedTrace::pack({});
    EXPECT_EQ(empty.size(), 0u);
    EXPECT_TRUE(empty.empty());
    EXPECT_TRUE(empty.unpack().empty());
    EXPECT_EQ(empty.begin(), empty.end());

    const auto one = randomTrace(1, 7);
    expectSameTrace(one, PackedTrace::pack(one).unpack());
}

TEST(PackedTrace, IteratorMatchesUnpack)
{
    const auto instrs = randomTrace(2000, 9);
    const auto packed = PackedTrace::pack(instrs);
    size_t i = 0;
    for (const Instr &ins : packed) {
        ASSERT_LT(i, instrs.size());
        EXPECT_TRUE(sameInstr(instrs[i], ins)) << "record " << i;
        ++i;
    }
    EXPECT_EQ(i, instrs.size());
}

TEST(PackedTrace, CursorBlocksConcatenateToTheTrace)
{
    const auto instrs = randomTrace(3000, 11);
    const auto packed = PackedTrace::pack(instrs);
    PackedTrace::Cursor cur(packed);
    Instr block[PackedTrace::kBlockInstrs];
    std::vector<Instr> seen;
    size_t n;
    while ((n = cur.next(block, PackedTrace::kBlockInstrs)) != 0) {
        // Full blocks except possibly the last.
        if (seen.size() + n < instrs.size())
            EXPECT_EQ(n, PackedTrace::kBlockInstrs);
        seen.insert(seen.end(), block, block + n);
    }
    expectSameTrace(instrs, seen);

    cur.reset();
    EXPECT_EQ(cur.next(block, 1), 1u);
    EXPECT_TRUE(sameInstr(instrs[0], block[0]));
}

TEST(PackedTrace, ScratchReuseProducesIdenticalEncodings)
{
    PackedTrace::Scratch scratch;
    const auto a = randomTrace(1500, 21);
    const auto b = randomTrace(800, 22);
    const auto pa1 = PackedTrace::pack(a, &scratch);
    const auto pb = PackedTrace::pack(b, &scratch);
    const auto pa2 = PackedTrace::pack(a, &scratch);
    expectSameTrace(a, pa1.unpack());
    expectSameTrace(b, pb.unpack());
    EXPECT_EQ(pa1.byteSize(), pa2.byteSize());
    expectSameTrace(pa1.unpack(), pa2.unpack());
}

TEST(PackedTrace, CompressesARealKernelTrace)
{
    const auto *spec = core::Registry::instance().find("ZL/adler32");
    ASSERT_NE(spec, nullptr);
    auto w = spec->make(core::Options());
    const auto instrs = core::Runner::capture(*w, core::Impl::Neon, 128);
    ASSERT_FALSE(instrs.empty());

    const auto packed = PackedTrace::pack(instrs);
    const size_t aos = PackedTrace::aosBytes(instrs.size());
    // The acceptance bar is 2x; a real trace packs far tighter.
    EXPECT_LT(packed.byteSize() * 2, aos)
        << packed.byteSize() << " packed vs " << aos << " AoS bytes";
    expectSameTrace(instrs, packed.unpack());
}

TEST(PackedTrace, PayloadRoundTripsAndRejectsCorruption)
{
    const auto instrs = randomTrace(1200, 33);
    const auto packed = PackedTrace::pack(instrs);

    std::string blob;
    packed.appendPayload(&blob);

    PackedTrace back;
    ASSERT_TRUE(PackedTrace::parsePayload(
        reinterpret_cast<const uint8_t *>(blob.data()), blob.size(),
        &back));
    expectSameTrace(instrs, back.unpack());

    // Truncation, bit flips and short headers must all be rejected.
    PackedTrace junk;
    EXPECT_FALSE(PackedTrace::parsePayload(
        reinterpret_cast<const uint8_t *>(blob.data()), blob.size() - 1,
        &junk));
    std::string flipped = blob;
    flipped[flipped.size() / 2] = char(flipped[flipped.size() / 2] ^ 0x40);
    EXPECT_FALSE(PackedTrace::parsePayload(
        reinterpret_cast<const uint8_t *>(flipped.data()), flipped.size(),
        &junk));
    EXPECT_FALSE(PackedTrace::parsePayload(
        reinterpret_cast<const uint8_t *>(blob.data()), 4, &junk));
}

namespace
{

// Mirror of the payload header + FNV checksum, so tests can craft
// checksum-valid payloads whose *streams* are truncated or corrupt —
// the class of damage the header checksum cannot catch and the
// Cursor's checked decode must.
struct RawHeader
{
    uint64_t count;
    uint64_t mainLen;
    uint64_t multiLen;
    uint32_t descCount;
    uint32_t descSize;
    uint64_t checksum;
};

uint64_t
fnv1a(uint64_t h, const void *data, size_t n)
{
    const auto *b = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= 1099511628211ull;
    }
    return h;
}

uint64_t
payloadChecksum(const RawHeader &h, const uint8_t *body, size_t len)
{
    uint64_t c = 1469598103934665603ull;
    c = fnv1a(c, &h.count, sizeof h.count);
    c = fnv1a(c, &h.mainLen, sizeof h.mainLen);
    c = fnv1a(c, &h.multiLen, sizeof h.multiLen);
    c = fnv1a(c, &h.descCount, sizeof h.descCount);
    c = fnv1a(c, &h.descSize, sizeof h.descSize);
    return fnv1a(c, body, len);
}

/** Reassemble a payload blob from (possibly doctored) parts, with a
 *  freshly valid checksum. */
std::string
craftPayload(RawHeader h, const std::string &body)
{
    h.checksum = payloadChecksum(
        h, reinterpret_cast<const uint8_t *>(body.data()), body.size());
    std::string out(reinterpret_cast<const char *>(&h), sizeof h);
    out += body;
    return out;
}

} // namespace

TEST(PackedTraceChecked, CleanDecodeReportsOk)
{
    const auto instrs = randomTrace(2000, 51);
    const auto packed = PackedTrace::pack(instrs);
    PackedTrace::Cursor cur(packed);
    PackedTrace::Decoded d;
    size_t n = 0;
    while (cur.next(d))
        ++n;
    EXPECT_EQ(n, instrs.size());
    EXPECT_TRUE(cur.ok());

    // The block form tracks the same checked state.
    PackedTrace::Cursor blocks(packed);
    Instr buf[PackedTrace::kBlockInstrs];
    while (blocks.next(buf, PackedTrace::kBlockInstrs) != 0) {
    }
    EXPECT_TRUE(blocks.ok());
}

TEST(PackedTraceChecked, RejectsTruncatedMainStream)
{
    const auto instrs = randomTrace(1500, 53);
    const auto packed = PackedTrace::pack(instrs);
    std::string blob;
    packed.appendPayload(&blob);
    ASSERT_GT(blob.size(), sizeof(RawHeader));

    RawHeader h;
    std::memcpy(&h, blob.data(), sizeof h);
    const std::string body = blob.substr(sizeof h);
    const size_t descBytes = size_t(h.descCount) * h.descSize;

    // Chop K bytes off the end of the main stream, keep the header
    // consistent and the checksum valid: parsePayload cannot tell, so
    // the Cursor must stop cleanly (never reading out of bounds) and
    // flag the malformation instead of fabricating a full trace.
    for (size_t k = 1; k <= std::min<uint64_t>(24, h.mainLen); ++k) {
        RawHeader th = h;
        th.mainLen = h.mainLen - k;
        std::string tbody = body.substr(0, descBytes + size_t(th.mainLen));
        tbody += body.substr(descBytes + size_t(h.mainLen));
        const std::string crafted = craftPayload(th, tbody);

        PackedTrace t;
        if (!PackedTrace::parsePayload(
                reinterpret_cast<const uint8_t *>(crafted.data()),
                crafted.size(), &t))
            continue; // structural reject is fine too
        PackedTrace::Cursor cur(t);
        PackedTrace::Decoded d;
        size_t n = 0;
        while (cur.next(d))
            ++n;
        EXPECT_FALSE(cur.ok()) << "k=" << k;
        EXPECT_LE(n, instrs.size());
    }
}

TEST(PackedTraceChecked, FusedReplayThrowsOnTruncatedTrace)
{
    const auto instrs = randomTrace(1200, 55);
    const auto packed = PackedTrace::pack(instrs);
    std::string blob;
    packed.appendPayload(&blob);
    RawHeader h;
    std::memcpy(&h, blob.data(), sizeof h);
    const std::string body = blob.substr(sizeof h);
    const size_t descBytes = size_t(h.descCount) * h.descSize;

    RawHeader th = h;
    th.mainLen = h.mainLen / 2;
    std::string tbody = body.substr(0, descBytes + size_t(th.mainLen));
    tbody += body.substr(descBytes + size_t(h.mainLen));
    const std::string crafted = craftPayload(th, tbody);
    PackedTrace t;
    ASSERT_TRUE(PackedTrace::parsePayload(
        reinterpret_cast<const uint8_t *>(crafted.data()),
        crafted.size(), &t));
    EXPECT_THROW(sim::simulateTraceMany(t, {sim::primeConfig()}, 0),
                 std::runtime_error);
}

TEST(PackedTraceChecked, RejectsTruncatedMultiStream)
{
    // Force multi-address records so the side stream is non-empty.
    auto instrs = randomTrace(800, 57);
    size_t multi = 0;
    for (auto &i : instrs)
        multi += i.addr2 != 0;
    ASSERT_GT(multi, 0u);

    const auto packed = PackedTrace::pack(instrs);
    std::string blob;
    packed.appendPayload(&blob);
    RawHeader h;
    std::memcpy(&h, blob.data(), sizeof h);
    ASSERT_GT(h.multiLen, 0u);
    const std::string body = blob.substr(sizeof h);

    RawHeader th = h;
    th.multiLen = 0;
    const std::string crafted = craftPayload(
        th, body.substr(0, body.size() - size_t(h.multiLen)));
    PackedTrace t;
    if (PackedTrace::parsePayload(
            reinterpret_cast<const uint8_t *>(crafted.data()),
            crafted.size(), &t)) {
        PackedTrace::Cursor cur(t);
        PackedTrace::Decoded d;
        while (cur.next(d)) {
        }
        EXPECT_FALSE(cur.ok());
    }
}

TEST(PackedTraceChecked, RejectsLyingInstructionCount)
{
    const auto instrs = randomTrace(600, 59);
    const auto packed = PackedTrace::pack(instrs);
    std::string blob;
    packed.appendPayload(&blob);
    RawHeader h;
    std::memcpy(&h, blob.data(), sizeof h);
    const std::string body = blob.substr(sizeof h);

    for (int64_t delta : {int64_t(-1), int64_t(1), int64_t(100)}) {
        RawHeader th = h;
        th.count = uint64_t(int64_t(h.count) + delta);
        const std::string crafted = craftPayload(th, body);
        PackedTrace t;
        ASSERT_TRUE(PackedTrace::parsePayload(
            reinterpret_cast<const uint8_t *>(crafted.data()),
            crafted.size(), &t));
        PackedTrace::Cursor cur(t);
        PackedTrace::Decoded d;
        while (cur.next(d)) {
        }
        // Count understates -> trailing stream bytes; overstates ->
        // stream runs dry early. Both are malformations.
        EXPECT_FALSE(cur.ok()) << "delta=" << delta;
    }
}

TEST(PackedTraceChecked, FuzzedStreamBytesNeverCrashTheDecoder)
{
    const auto instrs = randomTrace(1000, 61);
    const auto packed = PackedTrace::pack(instrs);
    std::string blob;
    packed.appendPayload(&blob);
    RawHeader h;
    std::memcpy(&h, blob.data(), sizeof h);
    const size_t descBytes = size_t(h.descCount) * h.descSize;
    const std::string body = blob.substr(sizeof h);

    std::mt19937_64 rng(63);
    for (int round = 0; round < 64; ++round) {
        std::string fuzzed = body;
        // Corrupt 1-4 bytes inside the varint streams (checksum is
        // recomputed, so only the Cursor's own checking stands between
        // the damage and the consumer).
        const int flips = 1 + int(rng() % 4);
        for (int f = 0; f < flips; ++f) {
            const size_t at =
                descBytes + size_t(rng() % (fuzzed.size() - descBytes));
            fuzzed[at] = char(uint8_t(fuzzed[at]) ^ uint8_t(1 + rng() % 255));
        }
        const std::string crafted = craftPayload(h, fuzzed);
        PackedTrace t;
        if (!PackedTrace::parsePayload(
                reinterpret_cast<const uint8_t *>(crafted.data()),
                crafted.size(), &t))
            continue;
        // Decoding must terminate without reading out of bounds and
        // never fabricate more records than advertised; a stream the
        // cursor calls ok must have decoded exactly `count`.
        PackedTrace::Cursor cur(t);
        PackedTrace::Decoded d;
        size_t n = 0;
        while (cur.next(d)) {
            ASSERT_LT(d.desc, t.descCount());
            ++n;
        }
        EXPECT_LE(n, size_t(h.count));
        if (cur.ok()) {
            EXPECT_EQ(n, size_t(h.count));
        }
    }
}

namespace
{

constexpr PackedTrace::DecodeImpl kAllImpls[] = {
    PackedTrace::DecodeImpl::Auto,
    PackedTrace::DecodeImpl::Scalar,
    PackedTrace::DecodeImpl::Swar,
    PackedTrace::DecodeImpl::Native,
};

const char *
implName(PackedTrace::DecodeImpl impl)
{
    switch (impl) {
      case PackedTrace::DecodeImpl::Auto: return "auto";
      case PackedTrace::DecodeImpl::Scalar: return "scalar";
      case PackedTrace::DecodeImpl::Swar: return "swar";
      case PackedTrace::DecodeImpl::Native: return "native";
    }
    return "?";
}

/** Drain @p t through nextBatch(impl) in @p batchSize chunks. */
std::vector<PackedTrace::Decoded>
decodeAll(const PackedTrace &t, PackedTrace::DecodeImpl impl,
          size_t batchSize, bool *ok)
{
    PackedTrace::Cursor cur(t);
    std::vector<PackedTrace::Decoded> out;
    std::vector<PackedTrace::Decoded> buf(batchSize);
    size_t k;
    while ((k = cur.nextBatch(buf.data(), batchSize, impl)) != 0)
        out.insert(out.end(), buf.begin(), buf.begin() + k);
    *ok = cur.ok();
    return out;
}

void
expectSameDecoded(const std::vector<PackedTrace::Decoded> &ref,
                  const std::vector<PackedTrace::Decoded> &got,
                  PackedTrace::DecodeImpl impl, size_t batchSize)
{
    ASSERT_EQ(ref.size(), got.size())
        << implName(impl) << " bs=" << batchSize;
    for (size_t i = 0; i < ref.size(); ++i) {
        const auto &a = ref[i];
        const auto &b = got[i];
        ASSERT_TRUE(a.id == b.id && a.dep0 == b.dep0 && a.dep1 == b.dep1 &&
                    a.dep2 == b.dep2 && a.addr == b.addr &&
                    a.addr2 == b.addr2 && a.desc == b.desc)
            << implName(impl) << " bs=" << batchSize << " record " << i;
    }
}

} // namespace

TEST(PackedTraceBatch, EveryImplMatchesTheCheckedCursor)
{
    for (uint32_t seed : {1u, 42u, 77u}) {
        for (size_t n : {size_t(0), size_t(1), size_t(257), size_t(6000)}) {
            const auto instrs = randomTrace(n, seed);
            const auto packed = PackedTrace::pack(instrs);

            std::vector<PackedTrace::Decoded> ref;
            {
                PackedTrace::Cursor cur(packed);
                PackedTrace::Decoded d;
                while (cur.next(d))
                    ref.push_back(d);
                ASSERT_TRUE(cur.ok());
                ASSERT_EQ(ref.size(), n);
            }

            for (const auto impl : kAllImpls)
                for (size_t bs : {size_t(1), size_t(13), size_t(128),
                                  size_t(100000)}) {
                    bool ok = false;
                    const auto got = decodeAll(packed, impl, bs, &ok);
                    EXPECT_TRUE(ok)
                        << implName(impl) << " bs=" << bs << " n=" << n;
                    expectSameDecoded(ref, got, impl, bs);
                }
        }
    }
}

TEST(PackedTraceBatch, EveryImplMatchesOnARealKernelTrace)
{
    const auto *spec = core::Registry::instance().find("ZL/adler32");
    ASSERT_NE(spec, nullptr);
    auto w = spec->make(core::Options());
    const auto instrs = core::Runner::capture(*w, core::Impl::Neon, 128);
    ASSERT_FALSE(instrs.empty());
    const auto packed = PackedTrace::pack(instrs);

    std::vector<PackedTrace::Decoded> ref;
    PackedTrace::Cursor cur(packed);
    PackedTrace::Decoded d;
    while (cur.next(d))
        ref.push_back(d);
    ASSERT_TRUE(cur.ok());

    for (const auto impl : kAllImpls) {
        bool ok = false;
        const auto got = decodeAll(packed, impl, 128, &ok);
        EXPECT_TRUE(ok) << implName(impl);
        expectSameDecoded(ref, got, impl, 128);
    }
}

TEST(PackedTraceBatch, DamagedStreamsGetTheSameVerdictFromEveryImpl)
{
    // Truncations and random bit flips through the batch kernels: every
    // implementation must terminate in bounds and agree with the
    // checked per-record cursor on the decoded prefix AND the ok()
    // verdict — the vector kernels may not turn malformed input into
    // records (or silence) the scalar decoder would not.
    const auto instrs = randomTrace(900, 71);
    const auto packed = PackedTrace::pack(instrs);
    std::string blob;
    packed.appendPayload(&blob);
    RawHeader h;
    std::memcpy(&h, blob.data(), sizeof h);
    const size_t descBytes = size_t(h.descCount) * h.descSize;
    const std::string body = blob.substr(sizeof h);

    std::vector<std::string> crafted;
    for (size_t k = 1; k <= std::min<uint64_t>(16, h.mainLen); ++k) {
        RawHeader th = h;
        th.mainLen = h.mainLen - k;
        std::string tbody = body.substr(0, descBytes + size_t(th.mainLen));
        tbody += body.substr(descBytes + size_t(h.mainLen));
        crafted.push_back(craftPayload(th, tbody));
    }
    std::mt19937_64 rng(73);
    for (int round = 0; round < 48; ++round) {
        std::string fuzzed = body;
        const int flips = 1 + int(rng() % 4);
        for (int f = 0; f < flips; ++f) {
            const size_t at =
                descBytes + size_t(rng() % (fuzzed.size() - descBytes));
            fuzzed[at] =
                char(uint8_t(fuzzed[at]) ^ uint8_t(1 + rng() % 255));
        }
        crafted.push_back(craftPayload(h, fuzzed));
    }

    for (size_t c = 0; c < crafted.size(); ++c) {
        PackedTrace t;
        if (!PackedTrace::parsePayload(
                reinterpret_cast<const uint8_t *>(crafted[c].data()),
                crafted[c].size(), &t))
            continue; // structural reject: nothing reaches the decoders

        bool refOk = false;
        std::vector<PackedTrace::Decoded> ref;
        {
            PackedTrace::Cursor r(t);
            PackedTrace::Decoded d;
            while (r.next(d)) {
                ASSERT_LT(d.desc, t.descCount());
                ref.push_back(d);
            }
            refOk = r.ok();
        }

        for (const auto impl : kAllImpls)
            for (size_t bs : {size_t(7), size_t(128)}) {
                bool ok = false;
                const auto got = decodeAll(t, impl, bs, &ok);
                EXPECT_EQ(refOk, ok)
                    << implName(impl) << " bs=" << bs << " case " << c;
                expectSameDecoded(ref, got, impl, bs);
            }
    }
}

TEST(PackedTrace, ReleaseStorageEmptiesTheTrace)
{
    const auto instrs = randomTrace(500, 5);
    auto packed = PackedTrace::pack(instrs);
    EXPECT_GT(packed.byteSize(), 0u);
    packed.releaseStorage();
    EXPECT_EQ(packed.byteSize(), 0u);
    EXPECT_TRUE(packed.empty());
    EXPECT_TRUE(packed.unpack().empty());
}

TEST(PackedReplay, PackedSimulationMatchesAoS)
{
    const auto instrs = randomTrace(4000, 17);
    const auto packed = PackedTrace::pack(instrs);
    for (const auto &cfg : threeCores()) {
        const auto aos = sim::simulateTrace(instrs, cfg, 1);
        const auto pkd = sim::simulateTrace(packed, cfg, 1);
        expectSameResult(aos, pkd);
    }
}

TEST(PackedReplay, SimulateTraceManyMatchesSeparatePasses)
{
    const auto instrs = randomTrace(4000, 19);
    const auto packed = PackedTrace::pack(instrs);
    const auto cfgs = threeCores();

    for (int warmup : {0, 1, 2}) {
        const auto many = sim::simulateTraceMany(packed, cfgs, warmup);
        ASSERT_EQ(many.size(), cfgs.size());
        for (size_t i = 0; i < cfgs.size(); ++i) {
            const auto one = sim::simulateTrace(instrs, cfgs[i], warmup);
            expectSameResult(one, many[i]);
        }
    }
}

TEST(PackedReplay, AoSManyOverloadMatchesToo)
{
    const auto instrs = randomTrace(2500, 23);
    const auto cfgs = threeCores();
    const auto many = sim::simulateTraceMany(instrs, cfgs, 1);
    ASSERT_EQ(many.size(), cfgs.size());
    for (size_t i = 0; i < cfgs.size(); ++i)
        expectSameResult(sim::simulateTrace(instrs, cfgs[i], 1), many[i]);
}

TEST(PackedReplay, OnBlockEqualsPerInstrSinkDelivery)
{
    const auto instrs = randomTrace(3000, 29);
    const auto cfg = sim::primeConfig();

    sim::CoreModel viaSink(cfg);
    trace::Sink *sink = &viaSink;
    for (const auto &i : instrs)
        sink->onInstr(i);
    viaSink.beginMeasurement();
    for (const auto &i : instrs)
        sink->onInstr(i);

    sim::CoreModel viaBlocks(cfg);
    viaBlocks.onBlock(instrs.data(), instrs.size());
    viaBlocks.beginMeasurement();
    viaBlocks.onBlock(instrs.data(), instrs.size());

    expectSameResult(viaSink.finish(), viaBlocks.finish());
}
