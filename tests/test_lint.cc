/**
 * @file
 * The determinism-contract tooling, both halves:
 *
 *  - tools/lint/swan_lint.py (static): every check fires on its
 *    seeded fixture under tests/lint_fixtures/ with a pointed
 *    diagnostic, benign look-alikes (placement new, seeded engines,
 *    prose in comments/strings) stay silent, documented suppressions
 *    suppress, reasonless ones are themselves findings — and the real
 *    tree lints clean.
 *
 *  - swan::detail::AllocGuard (runtime): the hook observes heap
 *    traffic exactly when the build is instrumented
 *    (-DSWAN_ALLOC_GUARD=ON), Pause suspends it, and a full fused
 *    replay of a real captured kernel trace completes with zero
 *    contract violations — the "replay loop is heap-free" claim as a
 *    regression test. In instrumented builds the in-library guards
 *    are fail-fast, so a violation would abort this binary; the
 *    counter check is the belt to that braces.
 *
 * SWAN_LINT_SOURCE_DIR is injected by CMakeLists.txt.
 */

#include <cstdio>
#include <span>
#include <string>
#include <sys/wait.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "core/runner.hh"
#include "sim/core_model.hh"
#include "swan/internal/contracts.hh"
#include "trace/packed.hh"

using namespace swan;

namespace
{

const std::string kSrc = SWAN_LINT_SOURCE_DIR;

struct LintResult
{
    int exitCode = -1;
    std::string out;
};

/** Run swan_lint.py with @p args; capture combined output + status. */
LintResult
runLint(const std::string &args)
{
    const std::string cmd = "python3 '" + kSrc +
                            "/tools/lint/swan_lint.py' " + args + " 2>&1";
    LintResult r;
    std::FILE *p = popen(cmd.c_str(), "r");
    if (!p)
        return r;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, p)) > 0)
        r.out.append(buf, n);
    const int st = pclose(p);
    r.exitCode = WIFEXITED(st) ? WEXITSTATUS(st) : -1;
    return r;
}

std::string
fixture(const char *name)
{
    return "'" + kSrc + "/tests/lint_fixtures/" + name + "'";
}

size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    size_t n = 0;
    for (size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

} // namespace

TEST(SwanLint, NoallocFixtureFires)
{
    const auto r = runLint("--checks noalloc --files " +
                           fixture("alloc_in_noalloc.cc"));
    EXPECT_EQ(r.exitCode, 1) << r.out;
    // Seven allocation classes in hot() + the two unbalanced-marker
    // errors; placement new, the paused line and the cold path stay
    // silent.
    EXPECT_EQ(countOccurrences(r.out, "[noalloc]"), 9u) << r.out;
    EXPECT_NE(r.out.find("new-expression"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("malloc-family call"), std::string::npos);
    EXPECT_NE(r.out.find("container growth"), std::string::npos);
    EXPECT_NE(r.out.find("smart-pointer allocation"), std::string::npos);
    EXPECT_NE(r.out.find("string allocation"), std::string::npos);
    EXPECT_NE(r.out.find("throw"), std::string::npos);
    EXPECT_NE(r.out.find("never closed by SWAN_NOALLOC_END"),
              std::string::npos);
    EXPECT_NE(r.out.find("without a matching BEGIN"), std::string::npos);
}

TEST(SwanLint, UnorderedIterFixtureFires)
{
    const auto r = runLint("--checks unordered-iter --files " +
                           fixture("unordered_emit.cc"));
    EXPECT_EQ(r.exitCode, 1) << r.out;
    // The range-for and the explicit .begin() walk; clear()/size()/
    // count()/find() and the ordered-container loop stay silent.
    EXPECT_EQ(countOccurrences(r.out, "[unordered-iter]"), 2u) << r.out;
    EXPECT_NE(r.out.find("range-for over unordered container 'counts'"),
              std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("iterator walk over unordered container 'seen'"),
              std::string::npos)
        << r.out;
}

TEST(SwanLint, NondetFixtureFires)
{
    const auto r =
        runLint("--checks nondet --files " + fixture("nondet.cc"));
    EXPECT_EQ(r.exitCode, 1) << r.out;
    // rand(), time(), random_device, steady_clock::now(); the seeded
    // mt19937 and the comments naming banned calls stay silent.
    EXPECT_EQ(countOccurrences(r.out, "[nondet]"), 4u) << r.out;
    EXPECT_NE(r.out.find("libc randomness"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("wall-clock read"), std::string::npos);
    EXPECT_NE(r.out.find("std::random_device"), std::string::npos);
    EXPECT_NE(r.out.find("chrono clock read"), std::string::npos);
}

TEST(SwanLint, NondetMtimeEvictionFires)
{
    const auto r = runLint("--checks nondet --files " +
                           fixture("nondet_mtime.cc"));
    EXPECT_EQ(r.exitCode, 1) << r.out;
    // The last_write_time() read and the file_time_type::clock::now()
    // call in the eviction loop; a plain file_time_type value and the
    // comments naming the calls stay silent.
    EXPECT_EQ(countOccurrences(r.out, "[nondet]"), 2u) << r.out;
    EXPECT_NE(r.out.find("file mtime read/write"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("filesystem clock read"), std::string::npos)
        << r.out;
}

TEST(SwanLint, PtrOrderFixtureFires)
{
    const auto r =
        runLint("--checks ptr-order --files " + fixture("ptr_order.cc"));
    EXPECT_EQ(r.exitCode, 1) << r.out;
    // The two pointer-KEYED containers; pointer values and scalar
    // keys stay silent.
    EXPECT_EQ(countOccurrences(r.out, "[ptr-order]"), 2u) << r.out;
    EXPECT_NE(r.out.find("keyed on a pointer"), std::string::npos)
        << r.out;
}

TEST(SwanLint, LayoutPinFixtureFires)
{
    const auto r = runLint("--checks layout-pin --layout-header " +
                           fixture("empty_layout.hh") + " --files " +
                           fixture("missing_pin.cc"));
    EXPECT_EQ(r.exitCode, 1) << r.out;
    // Tagged-without-pin (Unpinned) and pin-without-tag (Ghost); the
    // untagged struct stays silent.
    EXPECT_EQ(countOccurrences(r.out, "[layout-pin]"), 2u) << r.out;
    EXPECT_NE(r.out.find("'Unpinned' has no size pin"),
              std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("pin for 'Ghost' names no SWAN_CAPTURE_TYPE"),
              std::string::npos)
        << r.out;
}

TEST(SwanLint, DocumentedSuppressionSuppresses)
{
    const auto r = runLint("--files " + fixture("clean.cc"));
    EXPECT_EQ(r.exitCode, 0) << r.out;
    EXPECT_NE(r.out.find("0 findings (1 suppressed)"), std::string::npos)
        << r.out;
}

TEST(SwanLint, ReasonlessSuppressionIsItselfAFinding)
{
    const auto r = runLint("--checks nondet --files " +
                           fixture("bare_suppression.cc"));
    EXPECT_EQ(r.exitCode, 1) << r.out;
    EXPECT_EQ(countOccurrences(r.out, "[nondet]"), 1u) << r.out;
    EXPECT_NE(r.out.find("suppression without a reason"),
              std::string::npos)
        << r.out;
}

TEST(SwanLint, TreeIsClean)
{
    // The acceptance bar, kept as a regression test: the library
    // sources pass every check (intentional exceptions carry inline
    // documented suppressions).
    const auto r = runLint("--root '" + kSrc + "'");
    EXPECT_EQ(r.exitCode, 0) << r.out;
}

TEST(AllocGuard, HookObservesExactlyWhenEnforced)
{
    uint64_t seen;
    {
        detail::AllocGuard g("test::probe", /*fail_fast=*/false);
        auto *p = new int(42);
        delete p;
        seen = g.allocations();
        g.release();
    }
    if (detail::AllocGuard::enforced())
        EXPECT_GE(seen, 2u); // the new AND the delete
    else
        EXPECT_EQ(seen, 0u); // uninstrumented build: hook absent
}

TEST(AllocGuard, PauseSuspendsObservation)
{
    detail::AllocGuard g("test::probe", /*fail_fast=*/false);
    {
        detail::AllocGuard::Pause pause;
        auto *p = new int(7);
        delete p;
    }
    g.release();
    EXPECT_EQ(g.allocations(), 0u);
}

TEST(AllocGuard, ReleaseIsIdempotentAndStopsCounting)
{
    detail::AllocGuard g("test::probe", /*fail_fast=*/false);
    g.release();
    g.release();
    auto *p = new int(9);
    delete p;
    EXPECT_EQ(g.allocations(), 0u);
}

TEST(AllocGuard, FusedReplayOfARealTraceIsHeapFree)
{
    const auto *spec = core::Registry::instance().find("ZL/adler32");
    ASSERT_NE(spec, nullptr);
    auto w = spec->make(core::Options());
    const auto instrs = core::Runner::capture(*w, core::Impl::Neon, 128);
    ASSERT_FALSE(instrs.empty());
    const auto packed = trace::PackedTrace::pack(instrs);

    sim::CoreModel prime(sim::primeConfig());
    sim::CoreModel silver(sim::silverConfig());
    sim::CoreModel *ms[] = {&prime, &silver};
    const std::span<sim::CoreModel *const> span(ms, 2);

    const uint64_t before = detail::AllocGuard::totalViolations();
    sim::replay(packed, span); // warm-up pass
    prime.beginMeasurement();
    silver.beginMeasurement();
    sim::replay(packed, span);     // fused no-alloc region
    packed.deliver(prime);         // block path: stepBlock's region
    const auto r = prime.finish();
    EXPECT_GT(r.instrs, 0u);
    EXPECT_EQ(detail::AllocGuard::totalViolations(), before)
        << "heap traffic inside a SWAN_NOALLOC region";
    (void)silver.finish();
}
