/**
 * @file
 * Tests of swan::obs (obs/telemetry.hh, obs/report.hh): the span
 * registry lifecycle, overflow accounting, report aggregation and the
 * two built-in sinks — plus the properties the rest of the engine
 * depends on, checked end-to-end on pinned traces:
 *
 *  - emitter output is byte-identical with a collector attached or
 *    not, across {inline, threaded, sharded} x jobs x shards;
 *  - the fleet-wide Replay aggregate of a sharded run (parent merge +
 *    absorbed shard snapshots) equals the threaded run's — shard
 *    children observe the same work, not a resampling of it;
 *  - onRow streams every row exactly once, strictly in point-index
 *    order, with truthful origins, on every backend;
 *  - crash recovery and stale-claim sweeps surface in CacheStats.
 *
 * The registry is process-global, so every test that starts a
 * collector releases it before returning (ObsFixture enforces this).
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/report.hh"
#include "obs/telemetry.hh"
#include "sweep/backend.hh"
#include "sweep/cache.hh"
#include "sweep/emit.hh"
#include "sweep/scheduler.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define SWAN_TEST_HAVE_FORK 1
#endif

using namespace swan;

namespace
{

/** Guard: no test may leak the process-global registry. */
class ObsFixture : public ::testing::Test
{
  protected:
    void SetUp() override { ASSERT_EQ(obs::Telemetry::instance(), nullptr); }
    void TearDown() override { obs::Telemetry::release(); }
};

obs::SpanRec
rec(obs::Phase phase, uint64_t t0, uint64_t t1, uint64_t arg = 0,
    int shard = -1)
{
    obs::SpanRec r;
    r.phase = phase;
    r.t0Ns = t0;
    r.t1Ns = t1;
    r.cpuNs = (t1 - t0) / 2;
    r.arg = arg;
    r.tid = 7;
    r.shard = int8_t(shard);
    return r;
}

std::string
slurp(const std::filesystem::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(ObsPhase, NamesAreStableAndDistinct)
{
    std::vector<std::string> seen;
    for (size_t i = 0; i < obs::kPhaseCount; ++i) {
        const auto n = obs::name(obs::Phase(i));
        EXPECT_FALSE(n.empty());
        EXPECT_EQ(std::count(seen.begin(), seen.end(), std::string(n)), 0)
            << n;
        seen.emplace_back(n);
    }
    EXPECT_EQ(obs::name(obs::Phase::Replay), "replay");
    EXPECT_EQ(obs::name(obs::Phase::GridExpand), "grid_expand");
}

TEST_F(ObsFixture, SpanIsInertWithoutACollector)
{
    ASSERT_EQ(obs::Telemetry::active(), nullptr);
    {
        obs::Span s(obs::Phase::Capture, 123);
        s.addArg(1);
    } // must not crash, must record nowhere
    EXPECT_EQ(obs::Telemetry::active(), nullptr);
    EXPECT_EQ(obs::Telemetry::instance(), nullptr);
}

TEST_F(ObsFixture, LifecycleStartStopRelease)
{
    ASSERT_TRUE(obs::Telemetry::start(16));
    EXPECT_FALSE(obs::Telemetry::start(16)) << "second start must refuse";
    auto *t = obs::Telemetry::active();
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t, obs::Telemetry::instance());

    { obs::Span s(obs::Phase::Pack, 42); }
    EXPECT_EQ(t->count(), 1u);

    obs::Telemetry::stop();
    EXPECT_EQ(obs::Telemetry::active(), nullptr);
    { obs::Span s(obs::Phase::Pack); } // post-stop spans are inert
    EXPECT_EQ(t->count(), 1u);
    EXPECT_EQ(obs::Telemetry::instance(), t) << "readable until release";

    const auto snap = t->snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].phase, obs::Phase::Pack);
    EXPECT_EQ(snap[0].arg, 42u);
    EXPECT_GE(snap[0].t1Ns, snap[0].t0Ns);

    obs::Telemetry::release();
    EXPECT_EQ(obs::Telemetry::instance(), nullptr);
    ASSERT_TRUE(obs::Telemetry::start(16)) << "fresh start after release";
}

TEST_F(ObsFixture, NestedSpansRecordInnerFirstWithinOuterWindow)
{
    ASSERT_TRUE(obs::Telemetry::start(16));
    {
        obs::Span outer(obs::Phase::Sweep);
        {
            obs::Span inner(obs::Phase::Replay, 5);
        }
    }
    auto *t = obs::Telemetry::instance();
    const auto snap = t->snapshot();
    ASSERT_EQ(snap.size(), 2u);
    // Guards close at scope exit: the inner span lands first, and its
    // window nests inside the outer one.
    EXPECT_EQ(snap[0].phase, obs::Phase::Replay);
    EXPECT_EQ(snap[1].phase, obs::Phase::Sweep);
    EXPECT_GE(snap[0].t0Ns, snap[1].t0Ns);
    EXPECT_LE(snap[0].t1Ns, snap[1].t1Ns);
}

TEST_F(ObsFixture, OverflowDropsAndCounts)
{
    ASSERT_TRUE(obs::Telemetry::start(4));
    for (int i = 0; i < 10; ++i)
        obs::Span s(obs::Phase::Publish);
    auto *t = obs::Telemetry::instance();
    EXPECT_EQ(t->count(), 4u);
    EXPECT_EQ(t->dropped(), 6u);
    EXPECT_EQ(t->snapshot().size(), 4u);
}

TEST_F(ObsFixture, SnapshotFileRoundTripsWithShardTag)
{
    ASSERT_TRUE(obs::Telemetry::start(16));
    auto *t = obs::Telemetry::instance();
    t->record(rec(obs::Phase::Capture, 100, 200, 7));
    // A "child" fences, records, snapshots: only the post-fence record
    // must cross, and it must come back carrying the child's shard tag.
    obs::Telemetry::setShard(3);
    t->record(rec(obs::Phase::Replay, 300, 500, 11));
    const auto path = std::filesystem::temp_directory_path() /
                      ("swan_obs_snap_" + std::to_string(::getpid()));
    ASSERT_TRUE(t->writeSnapshot(path.string().c_str()));
    obs::Telemetry::setShard(-1);

    const size_t before = t->count();
    EXPECT_EQ(t->absorbSnapshot(path.string().c_str()), 1u);
    std::filesystem::remove(path);
    ASSERT_EQ(t->count(), before + 1);
    const auto snap = t->snapshot();
    const auto &back = snap.back();
    EXPECT_EQ(back.phase, obs::Phase::Replay);
    EXPECT_EQ(back.t0Ns, 300u);
    EXPECT_EQ(back.t1Ns, 500u);
    EXPECT_EQ(back.arg, 11u);
    EXPECT_EQ(int(back.shard), 3);
}

TEST_F(ObsFixture, CorruptSnapshotAbsorbsNothingAndIsCounted)
{
    ASSERT_TRUE(obs::Telemetry::start(16));
    auto *t = obs::Telemetry::instance();
    const auto path = std::filesystem::temp_directory_path() /
                      ("swan_obs_corrupt_" + std::to_string(::getpid()));

    // A missing snapshot is the ordinary crashed-shard outcome —
    // silent zero, not corruption.
    std::filesystem::remove(path);
    EXPECT_EQ(t->absorbSnapshot(path.string().c_str()), 0u);
    EXPECT_EQ(t->corruptSnapshots(), 0u);

    // Garbage header.
    { std::ofstream(path) << "garbage\n"; }
    EXPECT_EQ(t->absorbSnapshot(path.string().c_str()), 0u);
    EXPECT_EQ(t->corruptSnapshots(), 1u);

    // Truncated payload: two records declared, one present. The half
    // payload must be absorbed in whole or not at all — here: not at
    // all, so a dying shard cannot skew the fleet's phase totals.
    {
        std::ofstream(path)
            << "pid 1\nshard 2\ncount 2\n1 100 200 50 0 7\n";
    }
    const size_t before = t->count();
    EXPECT_EQ(t->absorbSnapshot(path.string().c_str()), 0u);
    EXPECT_EQ(t->corruptSnapshots(), 2u);
    EXPECT_EQ(t->count(), before);

    // Nonsense shard tag.
    { std::ofstream(path) << "pid 1\nshard 999\ncount 0\n"; }
    EXPECT_EQ(t->absorbSnapshot(path.string().c_str()), 0u);
    EXPECT_EQ(t->corruptSnapshots(), 3u);

    // An unknown phase from a newer writer is skipped, not corrupt:
    // the known record still lands.
    {
        std::ofstream(path) << "pid 1\nshard 0\ncount 2\n"
                            << "99 1 2 0 0 7\n1 100 200 50 11 7\n";
    }
    EXPECT_EQ(t->absorbSnapshot(path.string().c_str()), 1u);
    EXPECT_EQ(t->corruptSnapshots(), 3u);
    EXPECT_EQ(t->count(), before + 1);

    std::filesystem::remove(path);
}

TEST(ObsReport, AggregatesPerPhaseAndPerShard)
{
    std::vector<obs::SpanRec> records = {
        rec(obs::Phase::Sweep, 0, 1000),
        rec(obs::Phase::Replay, 100, 400, 10),
        rec(obs::Phase::Replay, 200, 300, 30, 0),
        rec(obs::Phase::Replay, 150, 650, 60, 1),
    };
    obs::RunMeta meta;
    meta.points = 4;
    meta.units = 2;
    sweep::CacheStats cache;
    cache.misses = 4;
    const auto report = obs::buildReport(records, meta, 9, cache);

    const auto &replay = report.phases[size_t(obs::Phase::Replay)];
    EXPECT_EQ(replay.count, 3u);
    EXPECT_EQ(replay.wallNs, 300u + 100u + 500u);
    EXPECT_EQ(replay.minNs, 100u);
    EXPECT_EQ(replay.maxNs, 500u);
    EXPECT_EQ(replay.argTotal, 100u);
    EXPECT_EQ(report.phases[size_t(obs::Phase::Capture)].count, 0u);
    EXPECT_EQ(report.droppedSpans, 9u);
    EXPECT_EQ(report.wallNs, 1000u) << "the Sweep envelope";
    EXPECT_EQ(report.cache.misses, 4u);
    // replay throughput = argTotal / wall seconds, in M/s.
    EXPECT_NEAR(report.replayMinstrPerS(), 100.0 * 1e3 / 900.0, 1e-9);

    // Parent first, then shards ascending; only processes that
    // recorded appear.
    ASSERT_EQ(report.shards.size(), 3u);
    EXPECT_EQ(report.shards[0].shard, -1);
    EXPECT_EQ(report.shards[1].shard, 0);
    EXPECT_EQ(report.shards[2].shard, 1);
    EXPECT_EQ(report.shards[0].phases[size_t(obs::Phase::Replay)].count,
              1u);
    EXPECT_EQ(
        report.shards[2].phases[size_t(obs::Phase::Replay)].argTotal, 60u);
}

TEST(ObsReport, JsonAndChromeTraceSerializeEveryShard)
{
    std::vector<obs::SpanRec> records = {
        rec(obs::Phase::Sweep, 1000, 3000),
        rec(obs::Phase::Replay, 1100, 1400, 10, 0),
        rec(obs::Phase::Replay, 1200, 1300, 30, 1),
    };
    obs::RunMeta meta;
    const auto report =
        obs::buildReport(records, meta, 0, sweep::CacheStats{});

    std::ostringstream js;
    obs::writeReportJson(js, report);
    const std::string j = js.str();
    EXPECT_NE(j.find("\"swan_obs_version\""), std::string::npos);
    EXPECT_NE(j.find("\"phase\": \"replay\""), std::string::npos);
    EXPECT_NE(j.find("\"misses\": 0"), std::string::npos)
        << "stable spacing: CI greps this";
    EXPECT_EQ(j.find("\"phase\": \"capture\""), std::string::npos)
        << "phases with no spans are skipped";

    std::ostringstream ct;
    obs::writeChromeTrace(ct, records);
    const std::string c = ct.str();
    // Parent is pid 1, shard N is pid N + 2; each named once.
    EXPECT_NE(c.find("\"name\": \"swan parent\""), std::string::npos);
    EXPECT_NE(c.find("\"name\": \"swan shard 0\""), std::string::npos);
    EXPECT_NE(c.find("\"name\": \"swan shard 1\""), std::string::npos);
    EXPECT_NE(c.find("\"pid\": 1"), std::string::npos);
    EXPECT_NE(c.find("\"pid\": 2"), std::string::npos);
    EXPECT_NE(c.find("\"pid\": 3"), std::string::npos);
    // Timestamps are normalized to the earliest t0 (microseconds).
    EXPECT_NE(c.find("\"ts\": 0.000"), std::string::npos);
}

TEST(ObsReport, CacheObjectCarriesTierCounters)
{
    // The run-report "cache" object is the machine-readable face of
    // the tier counters (docs/cache.md): CI greps these exact
    // `"key": value` spellings, so the shape is pinned here.
    sweep::CacheStats cache;
    cache.traceRamHits = 1;
    cache.farHits = 2;
    cache.farMisses = 3;
    cache.farStores = 4;
    cache.farPromotions = 5;
    cache.ramPromotions = 6;
    cache.ramDemotions = 7;
    cache.corruptEntriesQuarantined = 8;
    const auto report = obs::buildReport(std::vector<obs::SpanRec>{},
                                         obs::RunMeta{}, 0, cache);
    std::ostringstream js;
    obs::writeReportJson(js, report);
    const std::string j = js.str();
    EXPECT_NE(j.find("\"trace_ram_hits\": 1"), std::string::npos) << j;
    EXPECT_NE(j.find("\"far_hits\": 2"), std::string::npos) << j;
    EXPECT_NE(j.find("\"far_misses\": 3"), std::string::npos) << j;
    EXPECT_NE(j.find("\"far_stores\": 4"), std::string::npos) << j;
    EXPECT_NE(j.find("\"disk_promotions\": 5"), std::string::npos) << j;
    EXPECT_NE(j.find("\"ram_promotions\": 6"), std::string::npos) << j;
    EXPECT_NE(j.find("\"ram_demotions\": 7"), std::string::npos) << j;
    EXPECT_NE(j.find("\"corrupt_quarantined\": 8"), std::string::npos)
        << j;
    // The human-readable summary spells out the same traffic.
    const auto s = sweep::cacheSummary(cache);
    EXPECT_NE(s.find("far: 2 hits, 3 misses, 4 stored"),
              std::string::npos)
        << s;
    EXPECT_NE(s.find("tiering: 5 promoted to disk, 6 pinned in RAM, "
                     "7 RAM demotions"),
              std::string::npos)
        << s;
}

TEST_F(ObsFixture, CollectorFeedsSinksAndReleases)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("swan_obs_sink_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);

    obs::Collector collector;
    ASSERT_TRUE(collector.start(64));
    EXPECT_TRUE(collector.active());
    { obs::Span s(obs::Phase::Replay, 1000); }
    collector.addSink(std::make_unique<obs::ReportSink>(
        (dir / "r.report.json").string()));
    collector.addSink(std::make_unique<obs::ChromeTraceSink>(
        (dir / "r.trace.jsonl").string()));
    std::string err;
    EXPECT_TRUE(collector.finish(sweep::CacheStats{}, &err)) << err;
    EXPECT_EQ(obs::Telemetry::instance(), nullptr) << "finish releases";

    const std::string report = slurp(dir / "r.report.json");
    EXPECT_NE(report.find("\"phase\": \"replay\""), std::string::npos);
    const std::string trace = slurp(dir / "r.trace.jsonl");
    EXPECT_NE(trace.find("\"name\": \"replay\""), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST_F(ObsFixture, CollectorReportsSinkFailure)
{
    obs::Collector collector;
    ASSERT_TRUE(collector.start(64));
    collector.addSink(std::make_unique<obs::ReportSink>(
        "/nonexistent-dir-for-swan-obs/x.json"));
    std::string err;
    EXPECT_FALSE(collector.finish(sweep::CacheStats{}, &err));
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------
// End-to-end properties on pinned traces (the test_sweep_backend.cc
// fixture recipe: prime the trace tier with a different warm-up count
// so every compared run actually schedules and simulates).
// ---------------------------------------------------------------------

namespace
{

sweep::SweepSpec
smallGrid()
{
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32", "ZL/crc32", "OR/memcpy"};
    spec.impls = {core::Impl::Scalar, core::Impl::Neon};
    spec.configs = {"prime", "silver"};
    spec.workingSets = {"tiny"};
    return spec;
}

std::string
render(const std::vector<sweep::SweepResult> &results)
{
    std::ostringstream os;
    sweep::emitResults(os, results, sweep::Format::JsonLines);
    return os.str();
}

class ObsBackendFixture : public ObsFixture
{
  protected:
    void
    SetUp() override
    {
        ObsFixture::SetUp();
        std::string err;
        points_ = sweep::expand(smallGrid(), &err);
        ASSERT_FALSE(points_.empty()) << err;
        dir_ = std::filesystem::temp_directory_path() /
               ("swan_obs_backend_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        sweep::ResultCache prime(dir_.string());
        sweep::SchedulerConfig sc;
        sc.cache = &prime;
        sc.warmupPasses = 2;
        sweep::runSweep(points_, sc);
        dropResults();
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
        ObsFixture::TearDown();
    }

    void
    dropResults()
    {
        for (const auto &e : std::filesystem::directory_iterator(dir_))
            if (e.path().extension() == ".swr")
                std::filesystem::remove(e.path());
    }

    struct RunOutcome
    {
        std::string emitted;
        std::vector<obs::SpanRec> spans; //!< empty unless collected
        obs::RunMeta meta;
        sweep::CacheStats stats;
    };

    RunOutcome
    runWith(sweep::Backend backend, int jobs, int shards, bool collect,
            sweep::RowCallback on_row = nullptr)
    {
        dropResults();
        RunOutcome out;
        if (collect) {
            EXPECT_TRUE(obs::Telemetry::start());
        }
        {
            sweep::ResultCache cache(dir_.string());
            sweep::SchedulerConfig sc;
            sc.backend = backend;
            sc.jobs = jobs;
            sc.shards = shards;
            sc.cache = &cache;
            sc.onRow = std::move(on_row);
            out.emitted = render(sweep::runSweep(points_, sc));
            out.stats = cache.stats();
        }
        if (collect) {
            auto *t = obs::Telemetry::instance();
            obs::Telemetry::stop();
            out.spans = t->snapshot();
            out.meta = t->meta();
            obs::Telemetry::release();
        }
        return out;
    }

    obs::PhaseStats
    phaseTotal(const std::vector<obs::SpanRec> &spans, obs::Phase phase)
    {
        obs::PhaseStats total;
        for (const auto &r : spans)
            if (r.phase == phase)
                total.add(r);
        return total;
    }

    std::vector<sweep::SweepPoint> points_;
    std::filesystem::path dir_;
};

} // namespace

TEST_F(ObsBackendFixture, CollectionNeverChangesEmitterOutput)
{
    const std::string reference =
        runWith(sweep::Backend::Inline, 1, 1, false).emitted;
    ASSERT_FALSE(reference.empty());

    EXPECT_EQ(reference,
              runWith(sweep::Backend::Inline, 1, 1, true).emitted);
    for (int jobs : {1, 4}) {
        EXPECT_EQ(reference,
                  runWith(sweep::Backend::Threaded, jobs, 1, true).emitted)
            << "threaded jobs=" << jobs;
    }
#ifdef SWAN_TEST_HAVE_FORK
    for (int shards : {2, 3})
        EXPECT_EQ(reference,
                  runWith(sweep::Backend::Sharded, 2, shards, true).emitted)
            << "sharded shards=" << shards;
#endif
}

TEST_F(ObsBackendFixture, ThreadedRunRecordsTheWholePipeline)
{
    const auto run = runWith(sweep::Backend::Threaded, 2, 1, true);
    ASSERT_FALSE(run.spans.empty());
    EXPECT_EQ(phaseTotal(run.spans, obs::Phase::Sweep).count, 1u);
    // 6 pinned trace groups: 6 disk probes (hits), 6 fused replays, 6
    // publishes — and zero captures or packs.
    EXPECT_EQ(phaseTotal(run.spans, obs::Phase::Replay).count, 6u);
    EXPECT_EQ(phaseTotal(run.spans, obs::Phase::Publish).count, 6u);
    EXPECT_GT(phaseTotal(run.spans, obs::Phase::Replay).argTotal, 0u);
    EXPECT_EQ(phaseTotal(run.spans, obs::Phase::Capture).count, 0u);
    EXPECT_EQ(phaseTotal(run.spans, obs::Phase::Pack).count, 0u);
    EXPECT_EQ(std::string(run.meta.backend), "threaded");
    EXPECT_EQ(run.meta.points, points_.size());
    EXPECT_EQ(run.meta.units, 6u);
    EXPECT_EQ(run.meta.jobs, 2);
    EXPECT_EQ(run.meta.shards, 1);
}

TEST_F(ObsBackendFixture, ColdRunRecordsCaptureAndPack)
{
    // A second cache dir with no pinned traces: the capture window
    // itself must be spanned (malloc-free guards make that legal).
    const auto cold = std::filesystem::temp_directory_path() /
                      ("swan_obs_cold_" + std::to_string(::getpid()));
    std::filesystem::remove_all(cold);
    ASSERT_TRUE(obs::Telemetry::start());
    {
        sweep::ResultCache cache(cold.string());
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        sweep::runSweep(points_, sc);
    }
    auto *t = obs::Telemetry::instance();
    obs::Telemetry::stop();
    const auto spans = t->snapshot();
    obs::Telemetry::release();
    std::filesystem::remove_all(cold);

    EXPECT_EQ(phaseTotal(spans, obs::Phase::Capture).count, 6u);
    EXPECT_EQ(phaseTotal(spans, obs::Phase::Pack).count, 6u);
    EXPECT_GT(phaseTotal(spans, obs::Phase::Capture).argTotal, 0u)
        << "arg = instructions captured";
}

#ifdef SWAN_TEST_HAVE_FORK

TEST_F(ObsBackendFixture, ShardedFleetAggregateEqualsThreadedTotals)
{
    const auto threaded = runWith(sweep::Backend::Threaded, 2, 1, true);
    const auto sharded = runWith(sweep::Backend::Sharded, 2, 2, true);
    ASSERT_EQ(threaded.emitted, sharded.emitted);

    // Same fleet-wide work: every unit replayed and published exactly
    // once somewhere, and the instruction-step payload is identical.
    const auto tr = phaseTotal(threaded.spans, obs::Phase::Replay);
    const auto sr = phaseTotal(sharded.spans, obs::Phase::Replay);
    EXPECT_EQ(sr.count, tr.count);
    EXPECT_EQ(sr.argTotal, tr.argTotal);
    EXPECT_EQ(phaseTotal(sharded.spans, obs::Phase::Publish).count,
              phaseTotal(threaded.spans, obs::Phase::Publish).count);

    // Every shard contributed at least its lifetime envelope, so a
    // Perfetto load of this run shows every process.
    EXPECT_EQ(phaseTotal(sharded.spans, obs::Phase::Shard).count, 2u);
    bool saw0 = false, saw1 = false;
    for (const auto &r : sharded.spans) {
        saw0 = saw0 || r.shard == 0;
        saw1 = saw1 || r.shard == 1;
        if (r.shard >= 0) {
            EXPECT_NE(r.phase, obs::Phase::Merge)
                << "merging is parent work";
        }
    }
    EXPECT_TRUE(saw0);
    EXPECT_TRUE(saw1);
    EXPECT_EQ(phaseTotal(sharded.spans, obs::Phase::Merge).count, 1u);
    EXPECT_EQ(std::string(sharded.meta.backend), "sharded");
    EXPECT_EQ(sharded.meta.shards, 2);
}

TEST_F(ObsBackendFixture, CrashRecoveryIsCountedAndSpanned)
{
    const std::string reference =
        runWith(sweep::Backend::Inline, 1, 1, false).emitted;
    ASSERT_EQ(::setenv("SWAN_SHARD_TEST_CRASH", "0", 1), 0);
    const auto run = runWith(sweep::Backend::Sharded, 2, 2, true);
    ASSERT_EQ(::unsetenv("SWAN_SHARD_TEST_CRASH"), 0);

    EXPECT_EQ(reference, run.emitted);
    EXPECT_GT(run.stats.recoveredUnits, 0u);
    EXPECT_EQ(phaseTotal(run.spans, obs::Phase::Recovery).count, 1u);
    EXPECT_EQ(phaseTotal(run.spans, obs::Phase::Recovery).argTotal,
              run.stats.recoveredUnits);
}

TEST_F(ObsBackendFixture, StaleClaimSweepsAreCounted)
{
    const auto stale = dir_ / "c0123456789abcdef-00000000deadbeef.claim";
    std::ofstream(stale) << "pid 999999999\nshard 0\n";
    const auto run = runWith(sweep::Backend::Sharded, 1, 2, false);
    ASSERT_FALSE(run.emitted.empty());
    EXPECT_FALSE(std::filesystem::exists(stale));
    EXPECT_EQ(run.stats.staleClaimsSwept, 1u);
}

#endif // SWAN_TEST_HAVE_FORK

TEST_F(ObsBackendFixture, OnRowStreamsEveryRowInPointOrder)
{
    struct Seen
    {
        size_t index;
        sweep::RowOrigin::Kind kind;
        int shard;
    };
    const auto collect = [&](std::vector<Seen> *seen) {
        return [seen](const sweep::SweepResult &r,
                      const sweep::RowOrigin &o) {
            seen->push_back({r.point.index, o.kind, o.shard});
            EXPECT_EQ(o.done, seen->size());
            EXPECT_EQ(o.total, 0u + 12u);
        };
    };

    // Cold-cache path: every row computed in-process.
    std::vector<Seen> computed;
    runWith(sweep::Backend::Threaded, 4, 1, false, collect(&computed));
    ASSERT_EQ(computed.size(), points_.size());
    for (size_t i = 0; i < computed.size(); ++i) {
        EXPECT_EQ(computed[i].index, i);
        EXPECT_EQ(computed[i].kind, sweep::RowOrigin::Kind::Computed);
    }

    // Fully-warm path: the previous run stored every result, so now
    // every row streams as a cache hit (runWith drops results first,
    // so re-prime by running once more without dropping).
    {
        sweep::ResultCache cache(dir_.string());
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        sweep::runSweep(points_, sc);
        std::vector<Seen> warm;
        sc.onRow = collect(&warm);
        sweep::runSweep(points_, sc);
        ASSERT_EQ(warm.size(), points_.size());
        for (size_t i = 0; i < warm.size(); ++i) {
            EXPECT_EQ(warm[i].index, i);
            EXPECT_EQ(warm[i].kind, sweep::RowOrigin::Kind::Cache);
        }
    }

#ifdef SWAN_TEST_HAVE_FORK
    // Sharded: rows surface from the parent merge, tagged with the
    // publishing shard; order stays point order.
    std::vector<Seen> merged;
    runWith(sweep::Backend::Sharded, 2, 2, false, collect(&merged));
    ASSERT_EQ(merged.size(), points_.size());
    bool anyShard = false;
    for (size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged[i].index, i);
        if (merged[i].kind == sweep::RowOrigin::Kind::Shard) {
            anyShard = true;
            EXPECT_GE(merged[i].shard, 0);
            EXPECT_LT(merged[i].shard, 2);
        }
    }
    EXPECT_TRUE(anyShard);
#endif

    const sweep::RowOrigin cacheOrigin{sweep::RowOrigin::Kind::Cache};
    EXPECT_EQ(sweep::describe(cacheOrigin), "cache");
    sweep::RowOrigin shardOrigin;
    shardOrigin.kind = sweep::RowOrigin::Kind::Shard;
    shardOrigin.shard = 2;
    EXPECT_EQ(sweep::describe(shardOrigin), "shard 2");
}
