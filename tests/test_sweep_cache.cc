/**
 * @file
 * Tests of the sweep result cache (sweep/cache.hh): fingerprint and key
 * stability, hit/miss accounting, the on-disk tier's round-trip
 * fidelity (cold and warm lookups must be byte-identical through the
 * emitters) and its corruption handling.
 */

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "sweep/cache.hh"
#include "sweep/emit.hh"
#include "sweep/scheduler.hh"

using namespace swan;

namespace
{

std::string
tempDir(const char *tag)
{
    const auto d = std::filesystem::temp_directory_path() /
                   (std::string("swan_sweep_cache_") + tag + "_" +
                    std::to_string(::getpid()));
    std::filesystem::remove_all(d);
    return d.string();
}

sweep::SweepSpec
adlerSpec()
{
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32"};
    spec.workingSets = {"tiny"};
    return spec;
}

} // namespace

TEST(SweepCache, FingerprintSeparatesConfigs)
{
    const auto prime = sweep::fingerprint(sim::primeConfig());
    EXPECT_EQ(prime, sweep::fingerprint(sim::primeConfig()));
    EXPECT_NE(prime, sweep::fingerprint(sim::goldConfig()));
    EXPECT_NE(prime, sweep::fingerprint(sim::silverConfig()));
    EXPECT_NE(sweep::fingerprint(sim::widerVectorConfig(256)),
              sweep::fingerprint(sim::widerVectorConfig(512)));

    auto tweaked = sim::primeConfig();
    tweaked.mshrs += 1;
    EXPECT_NE(prime, sweep::fingerprint(tweaked));
}

TEST(SweepCache, FingerprintSeparatesOptions)
{
    core::Options a, b;
    EXPECT_EQ(sweep::fingerprint(a), sweep::fingerprint(b));
    b.bufferBytes += 1;
    EXPECT_NE(sweep::fingerprint(a), sweep::fingerprint(b));
    b = a;
    b.seed ^= 1;
    EXPECT_NE(sweep::fingerprint(a), sweep::fingerprint(b));
}

TEST(SweepCache, KeyIdentityAndStability)
{
    std::string err;
    auto points = sweep::expand(adlerSpec(), &err);
    ASSERT_EQ(points.size(), 1u) << err;
    const auto k1 = sweep::keyFor(points[0], 1);
    const auto k2 = sweep::keyFor(points[0], 1);
    EXPECT_TRUE(k1 == k2);
    EXPECT_EQ(k1.hash(), k2.hash());
    EXPECT_EQ(k1.hex().size(), 16u);

    const auto k3 = sweep::keyFor(points[0], 2);
    EXPECT_FALSE(k1 == k3);
    EXPECT_NE(k1.hash(), k3.hash());
}

TEST(SweepCache, MemoryTierHitMissCounters)
{
    sweep::ResultCache cache;
    std::string err;
    auto points = sweep::expand(adlerSpec(), &err);
    ASSERT_EQ(points.size(), 1u) << err;

    sweep::SchedulerConfig sc;
    sc.cache = &cache;
    auto cold = sweep::runSweep(points, sc);
    ASSERT_EQ(cold.size(), 1u);
    EXPECT_FALSE(cold[0].cacheHit);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().stores, 1u);

    auto warm = sweep::runSweep(points, sc);
    ASSERT_EQ(warm.size(), 1u);
    EXPECT_TRUE(warm[0].cacheHit);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);

    EXPECT_EQ(cold[0].run.sim.cycles, warm[0].run.sim.cycles);
    EXPECT_EQ(cold[0].run.mix.total(), warm[0].run.mix.total());
}

TEST(SweepCache, DiskTierColdAndWarmRunsAreByteIdentical)
{
    const auto dir = tempDir("roundtrip");
    std::string err;
    sweep::SweepSpec spec = adlerSpec();
    spec.impls = {core::Impl::Scalar, core::Impl::Neon};
    spec.configs = {"prime", "silver"};
    auto points = sweep::expand(spec, &err);
    ASSERT_EQ(points.size(), 4u) << err;

    std::ostringstream cold, warm;
    {
        sweep::ResultCache cache(dir);
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        auto results = sweep::runSweep(points, sc);
        sweep::emitResults(cold, results, sweep::Format::JsonLines);
        EXPECT_EQ(cache.stats().misses, 4u);
    }
    {
        // Fresh in-process cache: every lookup must come off disk, and
        // nothing may re-simulate.
        sweep::ResultCache cache(dir);
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        auto results = sweep::runSweep(points, sc);
        sweep::emitResults(warm, results, sweep::Format::JsonLines);
        EXPECT_EQ(cache.stats().diskHits, 4u);
        EXPECT_EQ(cache.stats().misses, 0u);
        for (const auto &r : results)
            EXPECT_TRUE(r.cacheHit);
    }
    EXPECT_EQ(cold.str(), warm.str());
    std::filesystem::remove_all(dir);
}

TEST(SweepCache, CorruptDiskEntryDegradesToMiss)
{
    const auto dir = tempDir("corrupt");
    std::string err;
    auto points = sweep::expand(adlerSpec(), &err);
    ASSERT_EQ(points.size(), 1u) << err;
    const auto key = sweep::keyFor(points[0], 1);

    {
        sweep::ResultCache cache(dir);
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        sweep::runSweep(points, sc);
    }
    // Truncate the entry: the mix line disappears.
    const auto path = std::filesystem::path(dir) / (key.hex() + ".swr");
    ASSERT_TRUE(std::filesystem::exists(path));
    {
        std::ofstream os(path, std::ios::trunc);
        os << "swan-sweep-result v1\nkernel ZL/adler32\n";
    }
    sweep::ResultCache cache(dir);
    core::KernelRun run;
    EXPECT_FALSE(cache.lookup(key, &run));
    EXPECT_EQ(cache.stats().misses, 1u);
    // Truncation is structural damage: the entry is quarantined, not
    // left in place to fail validation on every future lookup.
    EXPECT_EQ(cache.stats().corruptEntriesQuarantined, 1u);
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(path.string() + ".quarantined"));
    std::filesystem::remove_all(dir);
}

TEST(SweepCache, FlippedResultEntryIsQuarantinedAndRecomputedIdentically)
{
    const auto dir = tempDir("bitflip");
    std::string err;
    auto points = sweep::expand(adlerSpec(), &err);
    ASSERT_EQ(points.size(), 1u) << err;
    const auto key = sweep::keyFor(points[0], 1);

    std::ostringstream cold;
    {
        sweep::ResultCache cache(dir);
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        sweep::emitResults(cold, sweep::runSweep(points, sc),
                           sweep::Format::JsonLines);
    }
    // Flip one body byte (a bad sector, not a truncation): the entry
    // still parses line-by-line but its checksum no longer matches.
    const auto path = std::filesystem::path(dir) / (key.hex() + ".swr");
    ASSERT_TRUE(std::filesystem::exists(path));
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekg(0, std::ios::end);
        const auto size = f.tellg();
        f.seekp(std::streamoff(size) - 2);
        char c = 0;
        f.seekg(std::streamoff(size) - 2);
        f.get(c);
        f.seekp(std::streamoff(size) - 2);
        f.put(c == '1' ? '2' : '1');
    }

    std::ostringstream recompute;
    {
        sweep::ResultCache cache(dir);
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        sweep::emitResults(recompute, sweep::runSweep(points, sc),
                           sweep::Format::JsonLines);
        EXPECT_EQ(cache.stats().misses, 1u);
        EXPECT_EQ(cache.stats().diskHits, 0u);
        EXPECT_EQ(cache.stats().corruptEntriesQuarantined, 1u);
        EXPECT_EQ(cache.stats().stores, 1u);
    }
    EXPECT_TRUE(std::filesystem::exists(path.string() + ".quarantined"));
    // The quarantined bytes must never be served again; the recompute
    // replays the pinned trace, so its report is byte-identical.
    EXPECT_EQ(cold.str(), recompute.str());
    std::filesystem::remove_all(dir);
}

TEST(SweepCache, CorruptTraceEntryIsQuarantinedAndRecaptured)
{
    const auto dir = tempDir("badtrace");
    std::string err;
    auto points = sweep::expand(adlerSpec(), &err);
    ASSERT_EQ(points.size(), 1u) << err;

    {
        sweep::ResultCache cache(dir);
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        sweep::runSweep(points, sc);
        EXPECT_EQ(cache.stats().traceStores, 1u);
    }
    // Damage the packed trace and drop the stored result so the next
    // run must reach for the trace tier.
    const auto tpath = std::filesystem::path(dir) /
                       (sweep::traceKeyFor(points[0]).hex() + ".swtp");
    ASSERT_TRUE(std::filesystem::exists(tpath));
    {
        std::fstream f(tpath, std::ios::in | std::ios::out |
                                  std::ios::binary);
        f.seekg(0, std::ios::end);
        const auto mid = std::streamoff(f.tellg()) / 2;
        char c = 0;
        f.seekg(mid);
        f.get(c);
        f.seekp(mid);
        f.put(char(c ^ 0x40));
    }
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().extension() == ".swr")
            std::filesystem::remove(e.path());

    std::ostringstream recapture, warm;
    {
        sweep::ResultCache cache(dir);
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        sweep::emitResults(recapture, sweep::runSweep(points, sc),
                           sweep::Format::JsonLines);
        // The damaged trace degrades to a capture (not an abort), is
        // quarantined, and a fresh trace is stored in its place.
        EXPECT_EQ(cache.stats().traceHits, 0u);
        EXPECT_EQ(cache.stats().traceMisses, 1u);
        EXPECT_EQ(cache.stats().traceStores, 1u);
        EXPECT_EQ(cache.stats().corruptEntriesQuarantined, 1u);
    }
    EXPECT_TRUE(
        std::filesystem::exists(tpath.string() + ".quarantined"));
    {
        // The re-stored trace and result serve a warm run byte-for-byte.
        sweep::ResultCache cache(dir);
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        sweep::emitResults(warm, sweep::runSweep(points, sc),
                           sweep::Format::JsonLines);
        EXPECT_EQ(cache.stats().diskHits, 1u);
        EXPECT_EQ(cache.stats().corruptEntriesQuarantined, 0u);
    }
    EXPECT_EQ(recapture.str(), warm.str());
    std::filesystem::remove_all(dir);
}

TEST(SweepCache, WrongKeyedEntryIsIgnored)
{
    const auto dir = tempDir("mismatch");
    std::string err;
    auto points = sweep::expand(adlerSpec(), &err);
    ASSERT_EQ(points.size(), 1u) << err;

    {
        sweep::ResultCache cache(dir);
        sweep::SchedulerConfig sc;
        sc.cache = &cache;
        sweep::runSweep(points, sc);
    }
    // Same file, different key (as after a hash collision or a stale
    // rename): the full-key check must reject it.
    const auto key = sweep::keyFor(points[0], 1);
    auto other = key;
    other.vecBits = 256;
    const auto from = std::filesystem::path(dir) / (key.hex() + ".swr");
    const auto to = std::filesystem::path(dir) / (other.hex() + ".swr");
    std::filesystem::copy_file(from, to);

    sweep::ResultCache cache(dir);
    core::KernelRun run;
    EXPECT_FALSE(cache.lookup(other, &run));
    EXPECT_TRUE(cache.lookup(key, &run));
    // Foreign-but-well-formed bytes are not corruption: the entry
    // stays in place and nothing is quarantined.
    EXPECT_EQ(cache.stats().corruptEntriesQuarantined, 0u);
    EXPECT_TRUE(std::filesystem::exists(to));
    std::filesystem::remove_all(dir);
}
