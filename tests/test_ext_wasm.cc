/**
 * @file
 * Integration tests for the Section 9 WebAssembly SIMD porting study
 * (workloads/ext/wasm_study.cc): every port must verify against its
 * scalar reference under every target ISA, and the instruction-stream
 * relations the study exists to demonstrate must hold — shuffle
 * cascades replace VLD3, horizontal folds replace ADDV, mul+add
 * replaces FMLA until relaxed-simd restores it, and the wasm SHA-256
 * carries no crypto instructions.
 */

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "sim/configs.hh"
#include "trace/stats.hh"
#include "workloads/ext/ext.hh"

using namespace swan;
using workloads::ext::WasmIsa;

namespace
{

core::Options
testOptions()
{
    core::Options o;
    o.imageWidth = 64;
    o.imageHeight = 24;
    o.audioSamples = 512;
    o.bufferBytes = 2048;
    return o;
}

/** Capture a port's vector-implementation trace mix. */
trace::MixStats
portMix(core::Workload &w)
{
    auto instrs = core::Runner::capture(w, core::Impl::Neon, 128);
    trace::MixStats mix;
    mix.addTrace(instrs);
    return mix;
}

using Factory = std::unique_ptr<core::Workload> (*)(const core::Options &,
                                                    WasmIsa);

struct PortCase
{
    const char *name;
    Factory make;
};

const PortCase kPorts[] = {
    {"rgb_to_y", &workloads::ext::makeWasmRgbToY},
    {"adler32", &workloads::ext::makeWasmAdler32},
    {"fir_filter", &workloads::ext::makeWasmFirFilter},
    {"sha256", &workloads::ext::makeWasmSha256},
};

} // namespace

// ---------------------------------------------------------------------
// Correctness: every port, every ISA.
// ---------------------------------------------------------------------

class WasmPortTest
    : public ::testing::TestWithParam<std::tuple<int, WasmIsa>>
{
  protected:
    const PortCase &port() const
    {
        return kPorts[size_t(std::get<0>(GetParam()))];
    }
    WasmIsa isa() const { return std::get<1>(GetParam()); }
};

TEST_P(WasmPortTest, VerifiesAgainstScalar)
{
    auto w = port().make(testOptions(), isa());
    w->runScalar();
    w->runNeon(128);
    EXPECT_TRUE(w->verify()) << port().name;
}

TEST_P(WasmPortTest, VectorizedPortReducesInstructions)
{
    // Every port except the wasm SHA-256 (which must fall back to
    // scalar rounds) should still beat the scalar instruction count.
    auto w = port().make(testOptions(), isa());
    auto scalar = core::Runner::capture(*w, core::Impl::Scalar);
    auto vec = core::Runner::capture(*w, core::Impl::Neon, 128);
    const bool scalar_fallback =
        std::string(port().name) == "sha256" &&
        isa() != WasmIsa::NeonNative;
    if (scalar_fallback)
        EXPECT_GE(vec.size(), scalar.size());
    else
        EXPECT_LT(vec.size(), scalar.size()) << port().name;
}

using PortParam = std::tuple<int, WasmIsa>;

static std::string
portParamName(const ::testing::TestParamInfo<PortParam> &info)
{
    static const char *isa_names[] = {"Neon", "Simd128", "Relaxed"};
    return std::string(kPorts[size_t(std::get<0>(info.param))].name) +
           "_" + isa_names[size_t(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    AllPorts, WasmPortTest,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(WasmIsa::NeonNative,
                                         WasmIsa::Simd128,
                                         WasmIsa::Relaxed)),
    portParamName);

// ---------------------------------------------------------------------
// Instruction-stream relations.
// ---------------------------------------------------------------------

TEST(WasmStudy, RgbShuffleCascadeReplacesVld3)
{
    auto opts = testOptions();
    auto neon = workloads::ext::makeWasmRgbToY(opts, WasmIsa::NeonNative);
    auto wasm = workloads::ext::makeWasmRgbToY(opts, WasmIsa::Simd128);
    auto nmix = portMix(*neon);
    auto wmix = portMix(*wasm);

    // Neon de-interleaves inside VLD3 (stride-3 tagged loads, no
    // permutes in the hot loop); the wasm port has three unit-stride
    // loads plus six shuffles per 16 pixels.
    EXPECT_GT(nmix.count(trace::StrideKind::Ld3), 0u);
    EXPECT_EQ(wmix.count(trace::StrideKind::Ld3), 0u);
    // Both variants widen with VMisc-class moves; the wasm port adds
    // six shuffles per 16 pixels on top (roughly +2/3 more VMisc).
    EXPECT_GT(double(wmix.count(trace::InstrClass::VMisc)),
              1.4 * double(nmix.count(trace::InstrClass::VMisc)));
    EXPECT_GT(wmix.count(trace::InstrClass::VLoad),
              nmix.count(trace::InstrClass::VLoad));
    // And wasm needs more total vector work (extmul+add vs VMLAL).
    EXPECT_GT(wmix.vectorInstrs(), nmix.vectorInstrs());
}

TEST(WasmStudy, AdlerHorizontalFoldCostsMoreThanAddv)
{
    auto opts = testOptions();
    auto neon = workloads::ext::makeWasmAdler32(opts, WasmIsa::NeonNative);
    auto wasm = workloads::ext::makeWasmAdler32(opts, WasmIsa::Simd128);
    auto nmix = portMix(*neon);
    auto wmix = portMix(*wasm);
    // No ADDV/VPADAL: the wasm accumulation needs extra adds and the
    // block reduction needs shuffles.
    EXPECT_GT(wmix.count(trace::InstrClass::VMisc),
              nmix.count(trace::InstrClass::VMisc));
    EXPECT_GT(wmix.vectorInstrs(), nmix.vectorInstrs());
}

TEST(WasmStudy, RelaxedMaddRestoresFirInstructionBudget)
{
    auto opts = testOptions();
    auto neon =
        workloads::ext::makeWasmFirFilter(opts, WasmIsa::NeonNative);
    auto base = workloads::ext::makeWasmFirFilter(opts, WasmIsa::Simd128);
    auto relaxed =
        workloads::ext::makeWasmFirFilter(opts, WasmIsa::Relaxed);
    const auto n = portMix(*neon).count(trace::InstrClass::VFloat);
    const auto b = portMix(*base).count(trace::InstrClass::VFloat);
    const auto r = portMix(*relaxed).count(trace::InstrClass::VFloat);
    // Base proposal: mul + add per tap (7 FP ops per vector); relaxed
    // and Neon: 4 fused ops.
    EXPECT_GT(b, r);
    EXPECT_EQ(r, n);
    EXPECT_GE(double(b), 1.6 * double(r));
}

TEST(WasmStudy, WasmSha256HasNoCryptoInstructions)
{
    auto opts = testOptions();
    auto neon = workloads::ext::makeWasmSha256(opts, WasmIsa::NeonNative);
    auto wasm = workloads::ext::makeWasmSha256(opts, WasmIsa::Simd128);
    auto nmix = portMix(*neon);
    auto wmix = portMix(*wasm);
    EXPECT_GT(nmix.count(trace::InstrClass::VCrypto), 0u);
    EXPECT_EQ(wmix.count(trace::InstrClass::VCrypto), 0u);
    EXPECT_EQ(wmix.vectorInstrs(), 0u); // falls back to scalar rounds
    EXPECT_GT(wmix.total(), nmix.total());
}

// ---------------------------------------------------------------------
// End-to-end timing relations on the Prime core model.
// ---------------------------------------------------------------------

TEST(WasmStudy, PortedKernelsStillBeatScalarOnPrime)
{
    auto opts = testOptions();
    core::Runner runner(opts);
    const auto cfg = sim::primeConfig();
    for (const auto &pc : kPorts) {
        if (std::string(pc.name) == "sha256")
            continue; // wasm port is scalar by construction
        auto w = pc.make(opts, WasmIsa::Simd128);
        auto scalar = runner.run(*w, core::Impl::Scalar, cfg);
        auto vec = runner.run(*w, core::Impl::Neon, cfg);
        EXPECT_LT(vec.sim.cycles, scalar.sim.cycles) << pc.name;
    }
}

TEST(WasmStudy, NeonNativeIsAtLeastAsFastAsWasmPort)
{
    auto opts = testOptions();
    core::Runner runner(opts);
    const auto cfg = sim::primeConfig();
    for (const auto &pc : kPorts) {
        auto wn = pc.make(opts, WasmIsa::NeonNative);
        auto ww = pc.make(opts, WasmIsa::Simd128);
        auto neon = runner.run(*wn, core::Impl::Neon, cfg);
        auto wasm = runner.run(*ww, core::Impl::Neon, cfg);
        EXPECT_LE(neon.sim.cycles, wasm.sim.cycles) << pc.name;
    }
}
