// Fixture layout header with no pins — paired with missing_pin.cc so
// the `layout-pin` check reports the tagged-but-unpinned type. A pin
// for a type no fixture tags exercises the stale-pin direction.
SWAN_PIN(fx::Ghost, 16)
