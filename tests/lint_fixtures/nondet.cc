// Fixture: nondeterminism sources — the `nondet` check. Never
// compiled — lint fodder for tests/test_lint.cc.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned bad()
{
    unsigned x = rand();                       // libc PRNG: flagged
    x ^= static_cast<unsigned>(time(nullptr)); // wall clock: flagged
    std::random_device rd;                     // entropy: flagged
    auto t = std::chrono::steady_clock::now(); // chrono clock: flagged
    (void)t;
    return x + rd();
}

unsigned fine(unsigned seed)
{
    // Seeded engine: deterministic, must not be flagged. The comment
    // mentioning rand() and time() must not be flagged either.
    std::mt19937 gen(seed);
    return gen();
}
