// Fixture: every class of allocation-capable construct the `noalloc`
// check must catch inside a SWAN_NOALLOC region, plus marker-balance
// errors. Never compiled — lint fodder for tests/test_lint.cc.
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

void hot(std::vector<int> &v)
{
    SWAN_NOALLOC_BEGIN("fixture::hot");
    int *p = new int[8];            // new-expression
    void *q = std::malloc(32);      // malloc-family call
    v.push_back(1);                 // container growth
    auto s = std::make_unique<int>(3); // smart-pointer allocation
    std::string t = std::to_string(42); // string allocation
    if (!p)
        throw 1;                    // throw allocates the exception
    std::free(q);                   // malloc-family call (free)
    SWAN_NOALLOC_END();
}

void placement_ok(void *slot)
{
    SWAN_NOALLOC_BEGIN("fixture::placement");
    // Placement new does NOT allocate — must not be flagged.
    int *p = new (slot) int(7);
    (void)p;
    SWAN_NOALLOC_END();
}

void paused(std::vector<int> &v)
{
    SWAN_NOALLOC_BEGIN("fixture::paused");
    { SWAN_NOALLOC_PAUSE(); v.push_back(2); } // same-line pause: ok
    SWAN_NOALLOC_END();
}

void never_closed()
{
    SWAN_NOALLOC_BEGIN("fixture::leaky"); // BEGIN without END: flagged
}

void never_opened()
{
    SWAN_NOALLOC_END(); // END without BEGIN: flagged
}

void cold(std::vector<int> &v)
{
    v.push_back(3); // outside any region: not flagged
}
