// Fixture: a suppression with no reason is itself a finding — the
// exception may be fine, but an undocumented exception is not part of
// any contract. Never compiled — lint fodder for tests/test_lint.cc.
#include <cstdlib>

int bad()
{
    // swan-lint: allow(nondet)
    return rand();
}
