// Fixture: a file the linter must pass with ZERO findings — a real
// nondet hit silenced by a documented suppression, plus prose and
// string literals that mention banned constructs. (The reasonless-
// suppression case lives in bare_suppression.cc.)
#include <ctime>
#include <string>
#include <vector>

// Comments may discuss malloc(), rand() and steady_clock::now()
// freely; the linter strips them before matching.

long watchdog_deadline()
{
    // swan-lint: allow(nondet) watchdog deadline only; never feeds results
    return time(nullptr) + 30;
}

std::string banner()
{
    return "usage: do not call rand() or time() in hot paths";
}

void warm_path(std::vector<int> &v)
{
    v.push_back(1); // outside any SWAN_NOALLOC region: fine
}
