// Fixture: iteration over unordered containers — the `unordered-iter`
// check. Never compiled — lint fodder for tests/test_lint.cc.
#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

void emit(const std::unordered_map<int, int> &)
{
}

void bad()
{
    std::unordered_map<int, long> counts;
    std::unordered_set<int> seen;
    for (const auto &kv : counts)           // range-for: flagged
        std::printf("%d\n", kv.first);
    for (auto it = seen.begin(); it != seen.end(); ++it) // flagged
        std::printf("%d\n", *it);
}

void fine()
{
    std::unordered_map<int, long> counts;
    std::vector<int> order;
    counts.clear();                         // mutation: not flagged
    (void)counts.size();                    // query: not flagged
    (void)counts.count(3);                  // point lookup: not flagged
    for (int k : order)                     // ordered container: fine
        (void)counts.find(k);
}
