// Fixture: a SWAN_CAPTURE_TYPE-tagged type with no pin in the layout
// header — the `layout-pin` check (run with --layout-header pointing
// at empty_layout.hh). Never compiled — lint fodder.
#include <cstdint>

namespace fx
{

struct SWAN_CAPTURE_TYPE Unpinned
{
    uint64_t a = 0;
    uint32_t b = 0;
};

struct Untagged // no tag, no pin: fine
{
    int c = 0;
};

} // namespace fx
