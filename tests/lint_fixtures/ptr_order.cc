// Fixture: ordered containers keyed on pointers — the `ptr-order`
// check. Never compiled — lint fodder for tests/test_lint.cc.
#include <map>
#include <set>
#include <string>

struct Node;

std::map<Node *, int> g_rank;       // pointer key: flagged
std::set<const Node *> g_live;      // pointer key: flagged

std::map<std::string, Node *> g_byName; // pointer VALUE: fine
std::set<long> g_ids;                   // value key: fine
