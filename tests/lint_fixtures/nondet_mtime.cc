// Fixture: filesystem-time reads in a cache-eviction path — the
// `nondet` check's mtime patterns. Never compiled — lint fodder for
// tests/test_lint.cc. File timestamps move with the wall clock,
// `cp -p`/rsync, and filesystem granularity, so an mtime-keyed
// eviction policy decides differently run to run; swan orders
// eviction by lookup hotness and first-lookup sequence instead.
#include <filesystem>
#include <utility>
#include <vector>

namespace fs = std::filesystem;

void badEvictionOrder(const fs::path &dir)
{
    std::vector<std::pair<fs::file_time_type, fs::path>> order;
    for (const auto &e : fs::directory_iterator(dir))
        order.emplace_back(fs::last_write_time(e.path()), // flagged
                           e.path());
    const auto now = fs::file_time_type::clock::now(); // flagged
    (void)now;
    // Oldest-mtime-first is the classic LRU-by-timestamp bug.
}

void fine(const fs::path &p)
{
    // A file_time_type value merely passed through is deterministic
    // data, not a clock read: must not be flagged. Neither must the
    // comments above naming last_write_time().
    fs::file_time_type stamp{};
    (void)stamp;
    (void)p;
}
