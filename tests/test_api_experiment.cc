/**
 * @file
 * Tests of the swan::Experiment façade (swan/experiment.hh): fluent
 * spec accumulation, error paths (unknown kernel / config / working
 * set, empty grids) through both the throwing and non-throwing run()
 * forms, the Results view (find / where / emit), and byte-identity of
 * a façade run against the direct sweep::runSweep path it wraps.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "swan/swan.hh"

using namespace swan;

TEST(ApiExperiment, FluentCallsAccumulateIntoTheSpec)
{
    Session session(SessionOptions{}.withWarmupPasses(3));
    Experiment e(session);
    e.kernel("ZL/adler32")
        .kernel("ZL/crc32")
        .library("ZL")
        .widerOnly(false)
        .includeExcluded()
        .impls({core::Impl::Scalar, core::Impl::Neon})
        .vecBits({128, 256})
        .configs({"prime", "silver"})
        .workingSet("tiny");

    const sweep::SweepSpec &spec = e.spec();
    ASSERT_EQ(spec.kernels.names.size(), 2u);
    EXPECT_EQ(spec.kernels.names[0], "ZL/adler32");
    EXPECT_EQ(spec.kernels.names[1], "ZL/crc32");
    EXPECT_EQ(spec.kernels.library, "ZL");
    EXPECT_FALSE(spec.kernels.widerOnly);
    EXPECT_TRUE(spec.kernels.includeExcluded);
    ASSERT_EQ(spec.impls.size(), 2u);
    EXPECT_EQ(spec.vecBits, (std::vector<int>{128, 256}));
    EXPECT_EQ(spec.configs,
              (std::vector<std::string>{"prime", "silver"}));
    EXPECT_EQ(spec.workingSets, (std::vector<std::string>{"tiny"}));
    // Session warm-up is the default; an explicit call overrides it.
    EXPECT_EQ(spec.warmupPasses, 3);
    e.warmupPasses(2);
    EXPECT_EQ(e.spec().warmupPasses, 2);
}

TEST(ApiExperiment, UnknownKernelReportsAndThrows)
{
    Session session;
    Experiment e(session);
    e.kernel("ZL/no_such_kernel").workingSet("tiny");

    std::string err;
    const Results r = e.run(&err);
    EXPECT_TRUE(r.empty());
    EXPECT_NE(err.find("unknown kernel"), std::string::npos) << err;

    EXPECT_THROW(e.run(), Error);
    try {
        e.run();
    } catch (const Error &ex) {
        EXPECT_NE(std::string(ex.what()).find("no_such_kernel"),
                  std::string::npos);
    }
}

TEST(ApiExperiment, BadGridAxesReport)
{
    Session session;

    std::string err;
    EXPECT_TRUE(Experiment(session)
                    .kernel("ZL/adler32")
                    .config("turbo9000")
                    .run(&err)
                    .empty());
    EXPECT_NE(err.find("unknown core config"), std::string::npos) << err;

    err.clear();
    EXPECT_TRUE(Experiment(session)
                    .kernel("ZL/adler32")
                    .workingSet("galactic")
                    .run(&err)
                    .empty());
    EXPECT_NE(err.find("unknown working set"), std::string::npos) << err;

    err.clear();
    EXPECT_TRUE(
        Experiment(session).library("NOPE").run(&err).empty());
    EXPECT_NE(err.find("matches no kernels"), std::string::npos) << err;

    err.clear();
    EXPECT_TRUE(Experiment(session)
                    .kernel("ZL/adler32")
                    .impls({})
                    .run(&err)
                    .empty());
    EXPECT_NE(err.find("empty axis"), std::string::npos) << err;

    err.clear();
    EXPECT_TRUE(Experiment(session)
                    .kernel("ZL/adler32")
                    .vecBits({192})
                    .run(&err)
                    .empty());
    EXPECT_NE(err.find("128/256/512/1024"), std::string::npos) << err;
}

TEST(ApiExperiment, ResultsViewFindWhereEmit)
{
    Session session;
    const Results results = Experiment(session)
                                .kernel("ZL/adler32")
                                .impls({core::Impl::Scalar,
                                        core::Impl::Neon})
                                .config("prime")
                                .workingSet("tiny")
                                .run();
    ASSERT_EQ(results.size(), 2u);

    const auto *scalar =
        results.find("ZL/adler32", core::Impl::Scalar, 128);
    const auto *neon = results.find("ZL/adler32", core::Impl::Neon, 128);
    ASSERT_NE(scalar, nullptr);
    ASSERT_NE(neon, nullptr);
    EXPECT_GT(scalar->run.sim.cycles, neon->run.sim.cycles);
    EXPECT_EQ(results.find("ZL/adler32", core::Impl::Auto, 128), nullptr);

    const Results neonOnly = results.where([](const auto &r) {
        return r.point.impl == core::Impl::Neon;
    });
    ASSERT_EQ(neonOnly.size(), 1u);
    EXPECT_EQ(neonOnly[0].point.impl, core::Impl::Neon);

    std::ostringstream table, csv;
    results.emit(table, sweep::Format::Table);
    results.emit(csv, sweep::Format::Csv);
    EXPECT_NE(table.str().find("ZL/adler32"), std::string::npos);
    EXPECT_NE(csv.str().find("ZL/adler32,Scalar"), std::string::npos);

    // The run snapshots the session cache counters: two cold points.
    EXPECT_EQ(results.cacheStats().misses, 2u);
    EXPECT_EQ(results.cacheStats().stores, 2u);
    EXPECT_NE(results.cacheSummary().find("2 misses"),
              std::string::npos)
        << results.cacheSummary();
}

TEST(ApiExperiment, ByteIdenticalToDirectSchedulerPath)
{
    // The façade must add nothing to the measurement: the same grid
    // run through Experiment::run() and through sweep::runSweep with
    // the session's own SchedulerConfig must agree bit-for-bit through
    // the emitters (same process, so both runs see equivalent heap
    // construction; the session cache is shared, so the second pass is
    // served from it — which *is* the equivalence guarantee the cache
    // documents for warm replays).
    Session session;
    Experiment e(session);
    e.kernels({"ZL/adler32", "LJ/rgb_to_ycbcr"})
        .impls({core::Impl::Scalar, core::Impl::Neon})
        .configs({"prime", "silver"})
        .workingSet("tiny");

    const Results viaFacade = e.run();

    std::string err;
    const auto direct =
        sweep::runSweep(e.spec(), session.schedulerConfig(), &err);
    ASSERT_FALSE(direct.empty()) << err;
    ASSERT_EQ(direct.size(), viaFacade.size());

    std::ostringstream a, b;
    sweep::emitResults(a, viaFacade.points(), sweep::Format::JsonLines);
    sweep::emitResults(b, direct, sweep::Format::JsonLines);
    EXPECT_EQ(a.str(), b.str());

    // And per-point, the raw cycle counts match exactly.
    for (size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(direct[i].run.sim.cycles,
                  viaFacade[i].run.sim.cycles)
            << "point " << i;
}
