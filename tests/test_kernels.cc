/**
 * @file
 * Kernel correctness: for every registered kernel, the Neon
 * implementation's outputs must match the Scalar reference (the paper's
 * own validation methodology, Section 4.1), at two input scales and
 * under tracing. Parameterized over the whole registry.
 */

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "core/runner.hh"
#include "trace/stats.hh"

using namespace swan;

namespace
{

core::Options
tinyOptions()
{
    core::Options o;
    o.imageWidth = 64;
    o.imageHeight = 32;
    o.audioSamples = 600;
    o.bufferBytes = 1536;
    o.gemmM = 9;
    o.gemmN = 13;
    o.gemmK = 17;
    o.videoBlocks = 3;
    return o;
}

core::Options
smallOptions()
{
    core::Options o;
    o.imageWidth = 96;
    o.imageHeight = 64;
    o.audioSamples = 2048;
    o.bufferBytes = 4096;
    o.gemmM = 16;
    o.gemmN = 20;
    o.gemmK = 24;
    o.videoBlocks = 8;
    return o;
}

class KernelTest
    : public ::testing::TestWithParam<const core::KernelSpec *>
{
};

std::string
kernelName(const ::testing::TestParamInfo<const core::KernelSpec *> &info)
{
    std::string n = info.param->info.symbol + "_" + info.param->info.name;
    for (auto &c : n)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

std::vector<const core::KernelSpec *>
allKernels()
{
    std::vector<const core::KernelSpec *> out;
    for (const auto &k : core::Registry::instance().kernels())
        out.push_back(&k);
    return out;
}

} // namespace

TEST_P(KernelTest, NeonMatchesScalarTiny)
{
    auto w = GetParam()->make(tinyOptions());
    w->runScalar();
    w->runNeon(128);
    EXPECT_TRUE(w->verify()) << GetParam()->info.qualifiedName();
}

TEST_P(KernelTest, NeonMatchesScalarSmall)
{
    auto w = GetParam()->make(smallOptions());
    w->runScalar();
    w->runNeon(128);
    EXPECT_TRUE(w->verify()) << GetParam()->info.qualifiedName();
}

TEST_P(KernelTest, AutoIsWellFormed)
{
    // Auto must run and leave Scalar/Neon agreement intact.
    auto w = GetParam()->make(tinyOptions());
    w->runScalar();
    w->runAuto();
    w->runNeon(128);
    EXPECT_TRUE(w->verify()) << GetParam()->info.qualifiedName();
}

TEST_P(KernelTest, TracedRunsMatchUntracedOutputs)
{
    auto w = GetParam()->make(tinyOptions());
    auto scalar_trace = core::Runner::capture(*w, core::Impl::Scalar);
    auto neon_trace = core::Runner::capture(*w, core::Impl::Neon);
    EXPECT_TRUE(w->verify()) << GetParam()->info.qualifiedName();
    EXPECT_GT(scalar_trace.size(), 0u);
    EXPECT_GT(neon_trace.size(), 0u);
}

TEST_P(KernelTest, VerifyIsNotVacuous)
{
    // The paper's validation compares Neon outputs against Scalar; that
    // check is only meaningful if it can fail. Running the scalar
    // reference alone must leave verify() false (every workload
    // initializes its implementation outputs differently), and running
    // the Neon implementation must then flip it to true.
    auto w = GetParam()->make(tinyOptions());
    w->runScalar();
    EXPECT_FALSE(w->verify()) << GetParam()->info.qualifiedName()
                              << ": verify passes without a Neon run";
    w->runNeon(128);
    EXPECT_TRUE(w->verify()) << GetParam()->info.qualifiedName();
}

TEST_P(KernelTest, NeonReducesInstructions)
{
    auto w = GetParam()->make(smallOptions());
    auto scalar_trace = core::Runner::capture(*w, core::Impl::Scalar);
    auto neon_trace = core::Runner::capture(*w, core::Impl::Neon);
    // DES-style LUT kernels are the only ones allowed not to reduce.
    if (!GetParam()->info.excluded) {
        EXPECT_GT(double(scalar_trace.size()) / double(neon_trace.size()),
                  1.0)
            << GetParam()->info.qualifiedName();
    }
}

TEST_P(KernelTest, NeonTraceContainsVectorInstructions)
{
    auto w = GetParam()->make(tinyOptions());
    auto neon_trace = core::Runner::capture(*w, core::Impl::Neon);
    trace::MixStats mix;
    mix.addTrace(neon_trace);
    EXPECT_GT(mix.vectorInstrs(), 0u)
        << GetParam()->info.qualifiedName();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTest,
                         ::testing::ValuesIn(allKernels()), kernelName);
