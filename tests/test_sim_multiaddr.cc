/**
 * @file
 * Timing-model tests for the future-ISA multi-address memory operations
 * (gather/scatter, arbitrary-stride): per-element LSU cracking, cache
 * footprint reconstruction from the trace record, load-pipe occupancy,
 * and the cost asymmetry between cache-resident and cache-hostile
 * gathers that the extension studies rely on.
 */

#include <gtest/gtest.h>

#include "sim/core_model.hh"
#include "simd/emit.hh"

using namespace swan;
using namespace swan::sim;
using trace::Fu;
using trace::Instr;
using trace::InstrClass;
using trace::StrideKind;

namespace
{

/** A gather/scatter/strided record over [base, base + span). */
Instr
multi(uint64_t id, StrideKind kind, uint64_t base, uint64_t span,
      int lanes, int elem_bytes, int32_t elem_stride = 0)
{
    Instr i;
    i.id = id;
    const bool isStore =
        kind == StrideKind::Scatter || kind == StrideKind::StS;
    i.cls = isStore ? InstrClass::VStore : InstrClass::VLoad;
    i.fu = isStore ? Fu::Store : Fu::Load;
    i.latency = 6;
    i.addr = base;
    i.addr2 = base + span - uint64_t(elem_bytes);
    i.size = uint32_t(lanes * elem_bytes);
    i.elemStride = elem_stride;
    i.vecBytes = 16;
    i.lanes = uint8_t(lanes);
    i.activeLanes = uint8_t(lanes);
    i.stride = kind;
    return i;
}

Instr
contiguousLoad(uint64_t id, uint64_t addr, uint32_t size)
{
    Instr i;
    i.id = id;
    i.cls = InstrClass::VLoad;
    i.fu = Fu::Load;
    i.latency = 4;
    i.addr = addr;
    i.size = size;
    i.vecBytes = 16;
    i.lanes = 4;
    i.activeLanes = 4;
    return i;
}

} // namespace

TEST(SimMultiAddr, GatherSlowerThanContiguousLoad)
{
    // Same bytes, same L1 residency: the gather pays per-element
    // cracking; the unit-stride load does not.
    const uint64_t base = 0x10000;
    std::vector<Instr> gathers, loads;
    for (uint64_t i = 1; i <= 2000; ++i) {
        gathers.push_back(
            multi(i, StrideKind::Gather, base, 4096, 4, 4));
        gathers.back().dep0 = i - 1; // serialize: expose latency
        loads.push_back(contiguousLoad(i, base, 16));
        loads.back().dep0 = i - 1;
    }
    auto g = simulateTrace(gathers, primeConfig(), 1);
    auto l = simulateTrace(loads, primeConfig(), 1);
    EXPECT_GT(g.cycles, l.cycles);
}

TEST(SimMultiAddr, GatherFootprintDrivesCacheAccesses)
{
    // Both gathers crack into one demand access per element (>= 4);
    // the 4 KiB-spread one misses on every element, so its demand +
    // prefetch-probe access count and MPKI exceed the line-local one.
    auto narrow = simulateTrace(
        {multi(1, StrideKind::Gather, 0x10000, 64, 4, 4)},
        primeConfig(), 0);
    auto wide = simulateTrace(
        {multi(1, StrideKind::Gather, 0x10000, 4096, 4, 4)},
        primeConfig(), 0);
    EXPECT_GE(narrow.l1Accesses, 4u);
    EXPECT_GT(wide.l1Accesses, narrow.l1Accesses);
    EXPECT_GT(wide.l1Mpki, narrow.l1Mpki);
}

TEST(SimMultiAddr, ColdWideGatherMissesMoreThanNarrow)
{
    // Cold caches: a page-spread gather misses on every element; a
    // line-local gather misses once and hits the rest.
    std::vector<Instr> narrow, wide;
    for (uint64_t i = 1; i <= 64; ++i) {
        narrow.push_back(
            multi(i, StrideKind::Gather, 0x40000, 64, 4, 4));
        wide.push_back(multi(i, StrideKind::Gather,
                             0x40000 + i * 0x10000, 64 * 4096, 4, 4));
    }
    auto n = simulateTrace(narrow, primeConfig(), 0);
    auto w = simulateTrace(wide, primeConfig(), 0);
    EXPECT_GT(w.l1Mpki, n.l1Mpki);
    EXPECT_GT(w.cycles, n.cycles);
}

TEST(SimMultiAddr, StridedLoadReconstructsElementAddresses)
{
    // elemStride is reconstructed exactly: stride 256 B puts all four
    // elements on distinct lines (4 misses); stride 4 B keeps them on
    // one line (1 miss + 3 hits). Both crack into 4 demand accesses.
    auto spread = simulateTrace(
        {multi(1, StrideKind::LdS, 0x20000, 4 * 256, 4, 4, 256)},
        primeConfig(), 0);
    auto local = simulateTrace(
        {multi(1, StrideKind::LdS, 0x20000, 16, 4, 4, 4)},
        primeConfig(), 0);
    EXPECT_GE(spread.l1Accesses, 4u);
    EXPECT_GE(local.l1Accesses, 4u);
    EXPECT_GT(spread.l1Mpki, local.l1Mpki);
    EXPECT_GT(spread.cycles, local.cycles);
}

TEST(SimMultiAddr, ScatterOccupiesStorePipeOnly)
{
    // Scatters crack on the store side; they must not consume load
    // bandwidth (dramReads unaffected, writes appear on eviction only).
    std::vector<Instr> t;
    for (uint64_t i = 1; i <= 100; ++i)
        t.push_back(multi(i, StrideKind::Scatter, 0x30000, 4096, 4, 4));
    auto r = simulateTrace(t, primeConfig(), 0);
    EXPECT_EQ(r.byClass[size_t(InstrClass::VStore)], 100u);
    EXPECT_EQ(r.byClass[size_t(InstrClass::VLoad)], 0u);
}

TEST(SimMultiAddr, WideGatherOccupiesLoadPipeLonger)
{
    // 16 active lanes crack at 2/cycle: back-to-back *independent*
    // gathers throughput-limit at ~8 cycles each on one port; 4-lane
    // gathers at ~2 cycles. Cycle ratio should reflect that.
    std::vector<Instr> wide, narrow;
    for (uint64_t i = 1; i <= 1000; ++i) {
        auto w = multi(i, StrideKind::Gather, 0x10000, 1024, 16, 4);
        w.vecBytes = 64;
        wide.push_back(w);
        narrow.push_back(
            multi(i, StrideKind::Gather, 0x10000, 1024, 4, 4));
    }
    auto w = simulateTrace(wide, primeConfig(), 1);
    auto n = simulateTrace(narrow, primeConfig(), 1);
    EXPECT_GT(double(w.cycles), 1.5 * double(n.cycles));
}

TEST(SimMultiAddr, InOrderCoreHandlesMultiAddressOps)
{
    std::vector<Instr> t;
    for (uint64_t i = 1; i <= 500; ++i)
        t.push_back(multi(i, StrideKind::Gather, 0x10000, 2048, 4, 4));
    auto r = simulateTrace(t, silverConfig(), 1);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.instrs, 500u);
}

TEST(SimMultiAddr, SingleLaneGatherDegeneratesToLoad)
{
    // One active lane: no cracking penalty beyond the base latency.
    std::vector<Instr> g, l;
    for (uint64_t i = 1; i <= 1000; ++i) {
        auto gi = multi(i, StrideKind::Gather, 0x10000, 4, 1, 4);
        gi.latency = 4;
        g.push_back(gi);
        l.push_back(contiguousLoad(i, 0x10000, 4));
    }
    auto rg = simulateTrace(g, primeConfig(), 1);
    auto rl = simulateTrace(l, primeConfig(), 1);
    EXPECT_NEAR(double(rg.cycles), double(rl.cycles),
                0.1 * double(rl.cycles));
}

TEST(SimMultiAddr, CrackRateMonotonicallyImprovesGatherThroughput)
{
    // The lsuCrackPerCycle ablation knob: faster cracking never slows a
    // gather-bound loop, and 8/cycle beats 1/cycle clearly.
    std::vector<Instr> t;
    for (uint64_t i = 1; i <= 2000; ++i) {
        auto g = multi(i, StrideKind::Gather, 0x10000, 1024, 16, 4);
        g.vecBytes = 64;
        t.push_back(g);
    }
    uint64_t prev = ~uint64_t(0);
    uint64_t first = 0, last = 0;
    for (int crack : {1, 2, 4, 8}) {
        auto cfg = primeConfig();
        cfg.lsuCrackPerCycle = crack;
        auto r = simulateTrace(t, cfg, 1);
        EXPECT_LE(r.cycles, prev) << "crack " << crack;
        prev = r.cycles;
        if (crack == 1)
            first = r.cycles;
        last = r.cycles;
    }
    EXPECT_GT(double(first), 2.0 * double(last));
}
