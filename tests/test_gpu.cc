/**
 * @file
 * Tests for the GPU/DSP offload model (Section 8 / Table 7 / Figure 6).
 */

#include <gtest/gtest.h>

#include "gpu/offload_model.hh"

using namespace swan::gpu;

TEST(Gpu, LaunchOverheadDominatesSmallKernels)
{
    OffloadParams p;
    const double t = gpuTimeSec(1000, false, p);
    EXPECT_GT(t, p.gpuLaunchUs * 1e-6);
    EXPECT_LT(t, 2.0 * p.gpuLaunchUs * 1e-6 + p.minKernelUs * 1e-6);
}

TEST(Gpu, ComputeScalesLinearlyForLargeKernels)
{
    const double t1 = gpuComputeTimeSec(100'000'000, false);
    const double t2 = gpuComputeTimeSec(200'000'000, false);
    EXPECT_NEAR(t2 / t1, 2.0, 0.01);
}

TEST(Gpu, SparseIsLessEfficient)
{
    const uint64_t macs = 50'000'000;
    EXPECT_GT(gpuComputeTimeSec(macs, true),
              gpuComputeTimeSec(macs, false));
}

TEST(Gpu, MinKernelTimeFloor)
{
    OffloadParams p;
    EXPECT_DOUBLE_EQ(gpuComputeTimeSec(1, false, p),
                     p.minKernelUs * 1e-6);
}

TEST(Gpu, CrossoverNearFourMegaOps)
{
    // Neon FP32 MAC throughput from the paper's setup: 2 x 128-bit FMA
    // units at 2.8 GHz = 22.4 GMAC/s peak; assume ~80% achieved.
    const double neon_rate = 22.4e9 * 0.8;
    auto neon_time = [&](uint64_t macs) {
        return double(macs) / neon_rate;
    };
    // Find where the GPU starts winning.
    uint64_t crossover = 0;
    for (uint64_t macs = 100'000; macs < 100'000'000;
         macs += 100'000) {
        if (gpuTimeSec(macs, false) < neon_time(macs)) {
            crossover = macs;
            break;
        }
    }
    ASSERT_GT(crossover, 0u);
    EXPECT_GT(crossover, 1'000'000u);   // paper: ~4M, allow 1M..16M
    EXPECT_LT(crossover, 16'000'000u);
}

TEST(Gpu, DspLaunchMuchCheaperThanGpu)
{
    OffloadParams p;
    EXPECT_LT(p.dspLaunchUs * 10, p.gpuLaunchUs * 1.0 + 1e-9);
}
