/**
 * @file
 * Fault-injection tests (sim/faults.hh): FaultSpec parsing, the
 * catalog-embedding error path, fingerprint separation, determinism of
 * an injected scenario (same seed, same bytes — including across every
 * execution backend), the disabled-spec clean-path bit-identity, and
 * the cache-tier separation of faulted vs clean points.
 */

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "sim/faults.hh"
#include "sweep/cache.hh"
#include "sweep/emit.hh"
#include "sweep/scheduler.hh"
#include "trace/packed.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define SWAN_TEST_HAVE_FORK 1
#endif

using namespace swan;
using trace::Instr;
using trace::PackedTrace;

namespace
{

/** Recorder-shaped randomized trace (same idiom as test_sim_fused). */
std::vector<Instr>
randomTrace(size_t n, uint32_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<Instr> out;
    out.reserve(n);
    uint64_t addr = 0x7f0000001000ull + (seed % 7) * 4096;
    for (size_t i = 0; i < n; ++i) {
        Instr ins;
        ins.id = i + 1;
        const auto dep = [&]() -> uint64_t {
            if (i == 0 || rng() % 3 == 0)
                return 0;
            return 1 + rng() % i;
        };
        ins.dep0 = dep();
        ins.dep1 = dep();
        ins.cls = trace::InstrClass(
            rng() % uint64_t(trace::InstrClass::NumClasses));
        ins.fu = trace::Fu(rng() % uint64_t(trace::Fu::NumFus));
        ins.latency = uint8_t(1 + rng() % 20);
        if (ins.isVector()) {
            ins.vecBytes = uint8_t(16 << (rng() % 3));
            ins.lanes = uint8_t(1 + rng() % 16);
            ins.activeLanes = uint8_t(1 + rng() % ins.lanes);
        }
        if (ins.isMem()) {
            addr += rng() % 16 == 0 ? (rng() % (1 << 20)) : (rng() % 256);
            ins.addr = addr;
            ins.size = uint32_t(1 << (rng() % 7));
        }
        out.push_back(ins);
    }
    return out;
}

void
expectSameResult(const sim::SimResult &a, const sim::SimResult &b)
{
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.l1Mpki, b.l1Mpki);
    EXPECT_EQ(a.llcMpki, b.llcMpki);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.vecBytes, b.vecBytes);
}

sim::FaultSpec
mustParse(const std::string &text)
{
    sim::FaultSpec spec;
    std::string err;
    EXPECT_TRUE(sim::FaultSpec::parse(text, &spec, &err))
        << text << ": " << err;
    return spec;
}

/** Dense scenarios guaranteed to fire several windows inside even a
 *  short trace (period 2000, open 1000 of every slot). */
const char *kDenseSpike = "dram-spike:seed=3:period=2000:duration=1000"
                          ":intensity=32";
const char *kDenseFlush = "cache-flush:seed=3:period=500:duration=250";

/** A load stream that streams through ~1 GB, so a healthy share of
 *  accesses misses the LLC and reaches DRAM — dram-spike needs DRAM
 *  traffic to have anything to inflate. */
std::vector<Instr>
dramHeavyTrace(size_t n, uint32_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<Instr> out;
    out.reserve(n);
    uint64_t addr = 0x7f0000001000ull;
    for (size_t i = 0; i < n; ++i) {
        Instr ins;
        ins.id = i + 1;
        ins.cls = trace::InstrClass::SLoad;
        ins.fu = trace::Fu::Load;
        ins.latency = 4;
        addr += (1 << 20) + (rng() % 4096) * 64;
        ins.addr = (addr & ((1ull << 30) - 1)) | 0x7f0000000000ull;
        ins.size = 8;
        out.push_back(ins);
    }
    return out;
}

/** randomTrace plus the test_sim_fused stride block: a healthy share
 *  of memory ops become multi-element gathers/scatters/strided
 *  accesses — the only shape firstfault truncation applies to (the
 *  paper's Neon kernels never emit it; SVE-style traces do). */
std::vector<Instr>
gatherTrace(size_t n, uint32_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<Instr> out;
    out.reserve(n);
    uint64_t addr = 0x7f0000001000ull + (seed % 7) * 4096;
    for (size_t i = 0; i < n; ++i) {
        Instr ins;
        ins.id = i + 1;
        const auto dep = [&]() -> uint64_t {
            if (i == 0 || rng() % 3 == 0)
                return 0;
            return 1 + rng() % i;
        };
        ins.dep0 = dep();
        ins.dep1 = dep();
        ins.cls = trace::InstrClass(
            rng() % uint64_t(trace::InstrClass::NumClasses));
        ins.fu = trace::Fu(rng() % uint64_t(trace::Fu::NumFus));
        ins.latency = uint8_t(1 + rng() % 20);
        if (ins.isVector()) {
            ins.vecBytes = uint8_t(16 << (rng() % 3));
            ins.lanes = uint8_t(1 + rng() % 16);
            ins.activeLanes = uint8_t(1 + rng() % ins.lanes);
        }
        if (ins.isMem()) {
            addr += rng() % 16 == 0 ? (rng() % (1 << 20)) : (rng() % 256);
            ins.addr = addr;
            ins.size = uint32_t(1 << (rng() % 7));
            if (rng() % 8 == 0) {
                static const trace::StrideKind kinds[] = {
                    trace::StrideKind::Gather, trace::StrideKind::Scatter,
                    trace::StrideKind::LdS, trace::StrideKind::StS};
                ins.stride = kinds[rng() % 4];
                ins.activeLanes = uint8_t(1 + rng() % 8);
                ins.lanes = std::max(ins.lanes, ins.activeLanes);
                if (ins.stride == trace::StrideKind::LdS ||
                    ins.stride == trace::StrideKind::StS)
                    ins.elemStride = int32_t(rng() % 4096) - 2048;
                ins.addr2 = ins.addr + rng() % (1 << 16);
            }
        }
        out.push_back(ins);
    }
    return out;
}

} // namespace

TEST(FaultSpec, ParseRoundTripsThroughDescribe)
{
    const auto spec = mustParse("dram-spike:seed=7:intensity=16");
    EXPECT_EQ(spec.scenario, sim::FaultScenario::DramSpike);
    EXPECT_TRUE(spec.enabled());
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_EQ(spec.intensity, 16.0);
    EXPECT_EQ(spec.effectiveIntensity(), 16.0);

    const auto again = mustParse(spec.describe());
    EXPECT_EQ(spec.fingerprint(), again.fingerprint());
    EXPECT_EQ(spec.describe(), again.describe());
}

TEST(FaultSpec, EmptyAndNoneAreDisabledWithZeroFingerprint)
{
    for (const char *text : {"", "none"}) {
        const auto spec = mustParse(text);
        EXPECT_FALSE(spec.enabled()) << text;
        EXPECT_EQ(spec.fingerprint(), 0u) << text;
    }
}

TEST(FaultSpec, PerScenarioIntensityDefaults)
{
    EXPECT_EQ(mustParse("dram-spike").effectiveIntensity(), 8.0);
    EXPECT_EQ(mustParse("cache-flush").effectiveIntensity(), 4.0);
    EXPECT_EQ(mustParse("mispredict-burst").effectiveIntensity(), 0.25);
    EXPECT_EQ(mustParse("firstfault").effectiveIntensity(), 1.0);
}

TEST(FaultSpec, BadInputFailsWithCatalogInTheMessage)
{
    sim::FaultSpec spec;
    for (const char *bad : {"dram-spikes", "dram-spike:bogus=1",
                            "dram-spike:seed=x", "dram-spike:period=0"}) {
        std::string err;
        EXPECT_FALSE(sim::FaultSpec::parse(bad, &spec, &err)) << bad;
        // The message must teach the valid catalog, not just reject.
        for (const char *scen : {"dram-spike", "cache-flush",
                                 "mispredict-burst", "firstfault"})
            EXPECT_NE(err.find(scen), std::string::npos)
                << bad << " -> " << err;
    }
}

TEST(FaultSpec, FingerprintSeparatesScenariosAndParameters)
{
    const std::vector<std::string> specs = {
        "dram-spike",          "cache-flush",
        "mispredict-burst",    "firstfault",
        "dram-spike:seed=2",   "dram-spike:period=1000",
        "dram-spike:duration=100", "dram-spike:intensity=2",
    };
    std::vector<uint64_t> fps;
    for (const auto &s : specs)
        fps.push_back(mustParse(s).fingerprint());
    for (size_t i = 0; i < fps.size(); ++i) {
        EXPECT_NE(fps[i], 0u) << specs[i];
        for (size_t j = i + 1; j < fps.size(); ++j)
            EXPECT_NE(fps[i], fps[j]) << specs[i] << " vs " << specs[j];
    }
}

TEST(FaultSim, DisabledSpecIsBitIdenticalToCleanSimulation)
{
    const auto packed = PackedTrace::pack(randomTrace(4000, 17));
    const std::vector<sim::CoreConfig> cfgs = {sim::primeConfig(),
                                               sim::goldConfig()};
    const auto clean = sim::simulateTraceMany(packed, cfgs, 2);
    const auto viaFault =
        sim::simulateTraceMany(packed, cfgs, mustParse("none"), 2);
    ASSERT_EQ(clean.size(), viaFault.size());
    for (size_t i = 0; i < clean.size(); ++i)
        expectSameResult(clean[i], viaFault[i]);
}

TEST(FaultSim, ScenarioPerturbsResultsDeterministically)
{
    // DRAM-heavy stream: the spike multiplies DRAM latency, so it
    // needs LLC misses to have anything to inflate.
    const auto packed = PackedTrace::pack(dramHeavyTrace(6000, 23));
    const std::vector<sim::CoreConfig> cfgs = {sim::primeConfig()};
    const auto spec = mustParse(kDenseSpike);

    const auto clean = sim::simulateTraceMany(packed, cfgs, 1);
    ASSERT_GT(clean[0].dramReads, 0u);
    const auto hurt = sim::simulateTraceMany(packed, cfgs, spec, 1);
    const auto hurtAgain = sim::simulateTraceMany(packed, cfgs, spec, 1);
    ASSERT_EQ(hurt.size(), 1u);

    // The fault must actually bite (DRAM 32x slower inside half of
    // every 2000-instruction slot), and bite the same way every time.
    EXPECT_GT(hurt[0].cycles, clean[0].cycles);
    expectSameResult(hurt[0], hurtAgain[0]);

    // A different seed shifts the windows: same scenario, different
    // (but still deterministic) trajectory.
    auto reseeded = spec;
    reseeded.seed = 99;
    const auto other = sim::simulateTraceMany(packed, cfgs, reseeded, 1);
    EXPECT_NE(other[0].cycles, hurt[0].cycles);

    // A cache-flush storm perturbs even a cache-friendly stream (the
    // re-cooled hierarchy must re-fill).
    const auto friendly = PackedTrace::pack(randomTrace(6000, 23));
    const auto fclean = sim::simulateTraceMany(friendly, cfgs, 1);
    const auto fhurt =
        sim::simulateTraceMany(friendly, cfgs, mustParse(kDenseFlush), 1);
    EXPECT_GT(fhurt[0].cycles, fclean[0].cycles);
}

TEST(FaultSim, FirstFaultTruncatesMultiElementAccesses)
{
    // Truncation applies only to multi-element (gather/scatter/
    // strided) accesses; gatherTrace carries a healthy share of them.
    const auto packed = PackedTrace::pack(gatherTrace(6000, 23));
    const std::vector<sim::CoreConfig> cfgs = {sim::primeConfig()};
    const auto spec =
        mustParse("firstfault:seed=3:period=2000:duration=1000");

    const auto clean = sim::simulateTraceMany(packed, cfgs, 2);
    const auto hurt = sim::simulateTraceMany(packed, cfgs, spec, 2);
    const auto hurtAgain = sim::simulateTraceMany(packed, cfgs, spec, 2);

    // Clamping lanes changes the memory footprint the cache hierarchy
    // sees — deterministically so.
    EXPECT_NE(hurt[0].cycles, clean[0].cycles);
    EXPECT_NE(hurt[0].l1Mpki, clean[0].l1Mpki);
    expectSameResult(hurt[0], hurtAgain[0]);

    // The same spec leaves a no-multi-op stream untouched: nothing to
    // truncate means bit-identical to clean (the paper's Neon kernel
    // set is in this regime — no hardware gather).
    const auto scalarish = PackedTrace::pack(randomTrace(4000, 17));
    const auto sclean = sim::simulateTraceMany(scalarish, cfgs, 2);
    const auto shurt = sim::simulateTraceMany(scalarish, cfgs, spec, 2);
    expectSameResult(sclean[0], shurt[0]);
}

TEST(FaultCache, FaultedAndCleanPointsNeverShareEntries)
{
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32"};
    spec.workingSets = {"tiny"};
    spec.faults = {"none", kDenseFlush};
    std::string err;
    auto points = sweep::expand(spec, &err);
    ASSERT_EQ(points.size(), 2u) << err;

    const auto clean = sweep::keyFor(points[0], 1);
    const auto faulted = sweep::keyFor(points[1], 1);
    EXPECT_EQ(clean.faultFp, 0u);
    EXPECT_NE(faulted.faultFp, 0u);
    EXPECT_FALSE(clean == faulted);
    EXPECT_NE(clean.hash(), faulted.hash());

    // Cold run: both points simulate and store under their own keys;
    // a warm rerun serves each point from its own entry.
    sweep::ResultCache cache;
    sweep::SchedulerConfig sc;
    sc.cache = &cache;
    auto cold = sweep::runSweep(points, sc);
    ASSERT_EQ(cold.size(), 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().stores, 2u);
    auto warm = sweep::runSweep(points, sc);
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cold[0].run.sim.cycles, warm[0].run.sim.cycles);
    EXPECT_EQ(cold[1].run.sim.cycles, warm[1].run.sim.cycles);
    // The two entries hold genuinely different results.
    EXPECT_NE(cold[0].run.sim.cycles, cold[1].run.sim.cycles);
}

namespace
{

/** Scratch disk cache primed with traces so every backend run replays
 *  identical pinned instruction streams (the test_sweep_backend
 *  protocol), with a fault axis on the grid. */
class FaultBackendFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sweep::SweepSpec spec;
        spec.kernels.names = {"ZL/adler32", "OR/memcpy"};
        spec.impls = {core::Impl::Neon};
        spec.configs = {"prime"};
        spec.workingSets = {"tiny"};
        spec.faults = {"none", kDenseSpike, "firstfault:seed=3"};
        std::string err;
        points_ = sweep::expand(spec, &err);
        ASSERT_EQ(points_.size(), 6u) << err;
        dir_ = std::filesystem::temp_directory_path() /
               ("swan_fault_backend_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        sweep::ResultCache prime(dir_.string());
        sweep::SchedulerConfig sc;
        sc.cache = &prime;
        sc.warmupPasses = 2; // prime traces, never the default results
        sweep::runSweep(points_, sc);
        dropResults();
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    void
    dropResults()
    {
        for (const auto &e : std::filesystem::directory_iterator(dir_))
            if (e.path().extension() == ".swr")
                std::filesystem::remove(e.path());
    }

    std::string
    runWith(sweep::Backend backend, int jobs, int shards)
    {
        dropResults();
        sweep::ResultCache cache(dir_.string());
        sweep::SchedulerConfig sc;
        sc.backend = backend;
        sc.jobs = jobs;
        sc.shards = shards;
        sc.cache = &cache;
        auto results = sweep::runSweep(points_, sc);
        EXPECT_TRUE(sweep::anyFaulted(results));
        std::ostringstream os;
        sweep::emitResults(os, results, sweep::Format::JsonLines);
        return os.str();
    }

    std::vector<sweep::SweepPoint> points_;
    std::filesystem::path dir_;
};

} // namespace

TEST_F(FaultBackendFixture, SameSeedIsByteIdenticalAcrossBackends)
{
    const std::string reference = runWith(sweep::Backend::Inline, 1, 1);
    ASSERT_FALSE(reference.empty());

    // The fault column is present and carries the scenario label.
    EXPECT_NE(reference.find("\"fault\":\"none\""), std::string::npos);
    EXPECT_NE(reference.find("\"fault\":\"dram-spike"), std::string::npos);
    EXPECT_NE(reference.find("\"fault\":\"firstfault"), std::string::npos);

    for (int jobs : {1, 4})
        EXPECT_EQ(reference, runWith(sweep::Backend::Threaded, jobs, 1))
            << "threaded jobs=" << jobs;
#ifdef SWAN_TEST_HAVE_FORK
    for (int shards : {2, 3})
        EXPECT_EQ(reference, runWith(sweep::Backend::Sharded, 2, shards))
            << "sharded shards=" << shards;
#endif
}
