/**
 * @file
 * IEEE binary16 (Half) conversion tests: known encodings, round-trip
 * properties across the representable range, rounding behavior,
 * subnormals, infinities and NaN.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "simd/half.hh"

using swan::simd::Half;

TEST(Half, KnownEncodings)
{
    EXPECT_EQ(Half(0.0f).bits, 0x0000);
    EXPECT_EQ(Half(-0.0f).bits, 0x8000);
    EXPECT_EQ(Half(1.0f).bits, 0x3c00);
    EXPECT_EQ(Half(-1.0f).bits, 0xbc00);
    EXPECT_EQ(Half(2.0f).bits, 0x4000);
    EXPECT_EQ(Half(0.5f).bits, 0x3800);
    EXPECT_EQ(Half(65504.0f).bits, 0x7bff); // max normal
}

TEST(Half, DecodesKnownBits)
{
    Half h;
    h.bits = 0x3555; // ~0.333251953125
    EXPECT_NEAR(float(h), 0.333251953125f, 1e-7f);
}

TEST(Half, OverflowToInfinity)
{
    EXPECT_EQ(Half(70000.0f).bits, 0x7c00);
    EXPECT_EQ(Half(-70000.0f).bits, 0xfc00);
    Half inf;
    inf.bits = 0x7c00;
    EXPECT_TRUE(std::isinf(float(inf)));
}

TEST(Half, NanPreserved)
{
    Half h(std::nanf(""));
    EXPECT_TRUE(std::isnan(float(h)));
}

TEST(Half, SubnormalsRoundTrip)
{
    Half smallest;
    smallest.bits = 0x0001; // 2^-24
    EXPECT_FLOAT_EQ(float(smallest), std::ldexp(1.0f, -24));
    EXPECT_EQ(Half(std::ldexp(1.0f, -24)).bits, 0x0001);
}

TEST(Half, UnderflowToZero)
{
    EXPECT_EQ(Half(1e-10f).bits, 0x0000);
    EXPECT_EQ(Half(-1e-10f).bits, 0x8000);
}

TEST(Half, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and the next half; ties
    // to even keeps 1.0.
    EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11)).bits, 0x3c00);
    // 1 + 3*2^-11 rounds up to 1 + 2^-10 + ... -> odd+half rounds up.
    EXPECT_EQ(Half(1.0f + 3 * std::ldexp(1.0f, -11)).bits, 0x3c02);
}

TEST(Half, ExhaustiveRoundTripAllFiniteBitPatterns)
{
    // Every finite half value must round-trip exactly through float.
    for (uint32_t bits = 0; bits < 0x10000; ++bits) {
        const uint32_t exp = (bits >> 10) & 0x1f;
        if (exp == 0x1f)
            continue; // inf/NaN handled elsewhere
        Half h;
        h.bits = uint16_t(bits);
        Half back{float(h)};
        EXPECT_EQ(back.bits, h.bits) << "bits=" << bits;
    }
}

TEST(Half, ArithmeticRoundsPerOperation)
{
    Half a(1.0f), b(0.0004f); // b is below half the ulp at 1.0
    Half s = a + b;
    EXPECT_FLOAT_EQ(float(s), 1.0f);
    EXPECT_FLOAT_EQ(float(Half(2.0f) * Half(3.0f)), 6.0f);
    EXPECT_LT(float(Half(1.0f) / Half(3.0f)) - 1.0f / 3.0f, 1e-3f);
}
