/**
 * @file
 * Tests of the three-tier cache hierarchy (sweep/cache.hh): far-tier
 * write-through and promotion, the shard-side far-publish gate,
 * deterministic cold-first pruning (stable even for entries written in
 * the same second — mtimes never enter the decision), RAM pinning of
 * hot packed traces, fleet stats absorption, and the determinism
 * matrix: one grid replayed across backend x jobs x shards x
 * memo-budget x far on/off must emit byte-identical results and leave
 * identical durable placement.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "core/runner.hh"
#include "sweep/cache.hh"
#include "sweep/emit.hh"
#include "sweep/scheduler.hh"
#include "trace/stats.hh"

using namespace swan;

namespace
{

std::string
tempDir(const char *tag)
{
    const auto d = std::filesystem::temp_directory_path() /
                   (std::string("swan_cache_tiers_") + tag + "_" +
                    std::to_string(::getpid()));
    std::filesystem::remove_all(d);
    return d.string();
}

sweep::SweepSpec
adlerSpec()
{
    sweep::SweepSpec spec;
    spec.kernels.names = {"ZL/adler32"};
    spec.workingSets = {"tiny"};
    return spec;
}

core::KernelRun
runWithCycles(uint64_t cycles)
{
    core::KernelRun r;
    r.sim.cycles = cycles;
    r.sim.instrs = 100;
    return r;
}

sweep::CacheKey
keyNamed(const std::string &kernel)
{
    sweep::CacheKey k;
    k.kernel = kernel;
    k.configFp = 0x1234;
    k.optionsFp = 0x5678;
    return k;
}

/** Restore the process-wide far-publish gate whatever the test does. */
struct FarPublishGuard
{
    ~FarPublishGuard() { sweep::ResultCache::setFarPublishEnabled(true); }
};

} // namespace

TEST(CacheTiers, StoreWritesThroughToFarTier)
{
    namespace fs = std::filesystem;
    const auto local = tempDir("wt_local");
    const auto far = tempDir("wt_far");
    const auto key = keyNamed("K/wt");

    sweep::ResultCache cache(local, 0, far);
    core::KernelRun got;
    EXPECT_FALSE(cache.lookup(key, &got));
    cache.store(key, runWithCycles(7));

    EXPECT_TRUE(fs::exists(fs::path(local) / (key.hex() + ".swr")));
    EXPECT_TRUE(fs::exists(fs::path(far) / (key.hex() + ".swr")));
    EXPECT_EQ(cache.stats().farStores, 1u);
    // The miss probed T2 before giving up.
    EXPECT_EQ(cache.stats().farMisses, 1u);

    fs::remove_all(local);
    fs::remove_all(far);
}

TEST(CacheTiers, FarHitIsPromotedIntoLocalDisk)
{
    namespace fs = std::filesystem;
    const auto seedDir = tempDir("promo_seed");
    const auto far = tempDir("promo_far");
    const auto local = tempDir("promo_local");
    const auto key = keyNamed("K/promo");

    {
        sweep::ResultCache seeder(seedDir, 0, far);
        seeder.store(key, runWithCycles(42));
    }
    fs::remove_all(seedDir);

    // A host with a cold local tier: the far hit must serve the result
    // AND leave a local copy (write-through promotion), so the next
    // process on this host never pays the far round-trip again.
    sweep::ResultCache cache(local, 0, far);
    core::KernelRun got;
    ASSERT_TRUE(cache.lookup(key, &got));
    EXPECT_EQ(got.sim.cycles, 42u);
    EXPECT_EQ(cache.stats().farHits, 1u);
    EXPECT_EQ(cache.stats().farPromotions, 1u);
    EXPECT_EQ(cache.stats().diskHits, 0u);
    EXPECT_TRUE(fs::exists(fs::path(local) / (key.hex() + ".swr")));

    sweep::ResultCache next(local, 0, far);
    ASSERT_TRUE(next.lookup(key, &got));
    EXPECT_EQ(next.stats().diskHits, 1u);
    EXPECT_EQ(next.stats().farHits, 0u);

    fs::remove_all(local);
    fs::remove_all(far);
}

TEST(CacheTiers, FarPublishGateBlocksStoresUntilPublishFar)
{
    namespace fs = std::filesystem;
    const auto local = tempDir("gate_local");
    const auto far = tempDir("gate_far");
    const auto key = keyNamed("K/gate");
    FarPublishGuard guard;

    // A shard child's view: far publishing off, stores reach T1 only.
    sweep::ResultCache::setFarPublishEnabled(false);
    sweep::ResultCache cache(local, 0, far);
    cache.store(key, runWithCycles(5));
    EXPECT_TRUE(fs::exists(fs::path(local) / (key.hex() + ".swr")));
    EXPECT_FALSE(fs::exists(fs::path(far) / (key.hex() + ".swr")));
    EXPECT_EQ(cache.stats().farStores, 0u);

    // The parent's view: one publishFar per merged entry syncs T2.
    sweep::ResultCache::setFarPublishEnabled(true);
    cache.publishFar(key);
    EXPECT_TRUE(fs::exists(fs::path(far) / (key.hex() + ".swr")));
    EXPECT_EQ(cache.stats().farStores, 1u);

    // Already published: no second write.
    cache.publishFar(key);
    EXPECT_EQ(cache.stats().farStores, 1u);

    fs::remove_all(local);
    fs::remove_all(far);
}

TEST(CacheTiers, SameSecondEntriesEvictInStableOrder)
{
    namespace fs = std::filesystem;

    // Two entries written within one mtime granule (enforced with an
    // explicit identical timestamp) plus a cap that forces one out:
    // the victim must be the same on every run of the same sequence —
    // the old mtime-LRU tie was filesystem roulette here.
    const auto runOnce = [](const std::string &dir, uint64_t cap) {
        sweep::ResultCache cache(dir, cap);
        cache.store(keyNamed("K/tie-a"), runWithCycles(1));
        cache.store(keyNamed("K/tie-b"), runWithCycles(2));
        const auto stamp = fs::last_write_time(
            fs::path(dir) / (keyNamed("K/tie-a").hex() + ".swr"));
        fs::last_write_time(
            fs::path(dir) / (keyNamed("K/tie-b").hex() + ".swr"), stamp);
        core::KernelRun got;
        EXPECT_FALSE(cache.lookup(keyNamed("K/tie-c"), &got));
        cache.store(keyNamed("K/tie-c"), runWithCycles(3));
        EXPECT_EQ(cache.stats().evictions, 1u);
        std::vector<std::string> left;
        for (const auto &e : fs::directory_iterator(dir))
            if (e.path().extension() == ".swr")
                left.push_back(e.path().filename().string());
        std::sort(left.begin(), left.end());
        return left;
    };

    uint64_t entryBytes = 0;
    const auto probeDir = tempDir("tie_probe");
    {
        sweep::ResultCache probe(probeDir);
        probe.store(keyNamed("K/probe"), runWithCycles(1));
        entryBytes = probe.diskBytes();
        ASSERT_GT(entryBytes, 0u);
    }
    fs::remove_all(probeDir);
    const uint64_t cap = 2 * entryBytes + entryBytes / 2;

    const auto dirA = tempDir("tie_a");
    const auto dirB = tempDir("tie_b");
    const auto first = runOnce(dirA, cap);
    const auto second = runOnce(dirB, cap);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first, second);
    // Neither tied entry has lookup history, so the name tiebreak
    // picks the victim; K/tie-c was looked up and must survive.
    EXPECT_NE(std::find(first.begin(), first.end(),
                        keyNamed("K/tie-c").hex() + ".swr"),
              first.end());
    fs::remove_all(dirA);
    fs::remove_all(dirB);
}

TEST(CacheTiers, HotTraceIsPinnedIntoRamAndServedFromIt)
{
    const auto dir = tempDir("pin");
    const auto *spec = core::Registry::instance().find("ZL/adler32");
    ASSERT_NE(spec, nullptr);
    auto w = spec->make(core::Options());
    const auto instrs = core::Runner::capture(*w, core::Impl::Neon, 128);
    ASSERT_FALSE(instrs.empty());
    const auto packed = trace::PackedTrace::pack(instrs);
    trace::MixStats mix;
    mix.addTrace(instrs);

    sweep::TraceKey key;
    key.kernel = "ZL/adler32";

    sweep::ResultCache cache(dir);
    cache.setRamTraceBudget(64ull << 20);
    cache.storeTrace(key, packed, mix);
    EXPECT_EQ(cache.stats().traceStores, 1u);

    trace::PackedTrace got;
    trace::MixStats gotMix;
    // First hit: disk, below the pin threshold (kPinHits = 2).
    ASSERT_TRUE(cache.lookupTrace(key, &got, &gotMix));
    EXPECT_EQ(cache.stats().traceHits, 1u);
    EXPECT_EQ(cache.stats().ramPromotions, 0u);
    // Second hit earns the pin.
    ASSERT_TRUE(cache.lookupTrace(key, &got, &gotMix));
    EXPECT_EQ(cache.stats().ramPromotions, 1u);
    EXPECT_EQ(cache.stats().traceRamHits, 0u);
    // Third hit is served from T0: same bytes, no disk read.
    ASSERT_TRUE(cache.lookupTrace(key, &got, &gotMix));
    EXPECT_EQ(cache.stats().traceRamHits, 1u);
    EXPECT_EQ(cache.stats().traceHits, 2u);
    EXPECT_EQ(got.byteSize(), packed.byteSize());
    EXPECT_EQ(gotMix.total(), mix.total());

    // With T0 serving gated off (capture-phase rule), the same lookup
    // falls back to the disk tier.
    cache.setRamTraceServe(false);
    ASSERT_TRUE(cache.lookupTrace(key, &got, &gotMix));
    EXPECT_EQ(cache.stats().traceRamHits, 1u);
    EXPECT_EQ(cache.stats().traceHits, 3u);
    cache.setRamTraceServe(true);

    std::filesystem::remove_all(dir);
}

TEST(CacheTiers, UndersizedTraceBudgetNeverPins)
{
    const auto dir = tempDir("nopin");
    const auto *spec = core::Registry::instance().find("ZL/adler32");
    ASSERT_NE(spec, nullptr);
    auto w = spec->make(core::Options());
    const auto instrs = core::Runner::capture(*w, core::Impl::Neon, 128);
    const auto packed = trace::PackedTrace::pack(instrs);
    trace::MixStats mix;
    mix.addTrace(instrs);

    sweep::TraceKey key;
    key.kernel = "ZL/adler32";

    sweep::ResultCache cache(dir);
    cache.setRamTraceBudget(1); // smaller than any real trace
    cache.storeTrace(key, packed, mix);
    trace::PackedTrace got;
    trace::MixStats gotMix;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(cache.lookupTrace(key, &got, &gotMix));
    EXPECT_EQ(cache.stats().ramPromotions, 0u);
    EXPECT_EQ(cache.stats().traceRamHits, 0u);
    EXPECT_EQ(cache.stats().traceHits, 4u);
    std::filesystem::remove_all(dir);
}

TEST(CacheTiers, AbsorbStatsCarriesTierCounters)
{
    sweep::ResultCache cache;
    sweep::CacheStats d;
    d.traceRamHits = 1;
    d.farHits = 2;
    d.farMisses = 3;
    d.farStores = 4;
    d.farPromotions = 5;
    d.ramPromotions = 6;
    d.ramDemotions = 7;
    cache.absorbStats(d);
    const auto s = cache.stats();
    EXPECT_EQ(s.traceRamHits, 1u);
    EXPECT_EQ(s.farHits, 2u);
    EXPECT_EQ(s.farMisses, 3u);
    EXPECT_EQ(s.farStores, 4u);
    EXPECT_EQ(s.farPromotions, 5u);
    EXPECT_EQ(s.ramPromotions, 6u);
    EXPECT_EQ(s.ramDemotions, 7u);
}

TEST(CacheTiers, DeterminismMatrixEmitsIdenticalBytesAndPlacement)
{
    namespace fs = std::filesystem;
    std::string err;
    sweep::SweepSpec spec = adlerSpec();
    spec.impls = {core::Impl::Scalar, core::Impl::Neon};
    spec.configs = {"prime", "silver"};
    auto points = sweep::expand(spec, &err);
    ASSERT_EQ(points.size(), 4u) << err;

    struct Leg
    {
        uint64_t budget;
        int jobs;
        int shards;
        bool far;
    };
    const Leg legs[] = {
        {0, 1, 1, true},       // uncapped memo, serial
        {0, 8, 1, true},       // uncapped memo, threaded
        {0, 2, 3, true},       // uncapped memo, sharded fleet
        {1, 1, 1, true},       // tiny memo: every trace spills
        {1, 2, 3, true},       // tiny memo under sharding
        {1u << 16, 8, 1, true},// mid memo, threaded
        {0, 1, 1, false},      // no far tier at all
    };

    // Every leg runs in a forked child, so each starts from the same
    // heap image (capture records real buffer addresses; a prior leg's
    // allocator history is warm-heap noise the contract scopes out —
    // fresh processes of the same command are byte-identical, and fork
    // gives every leg exactly that).
    const char *kSep = "\n--SWAN-LEG-SEP--\n";
    const auto runLeg = [&](const Leg &leg, const std::string &local,
                            const std::string &far,
                            const std::string &outPath) {
        const pid_t pid = ::fork();
        if (pid < 0)
            return false;
        if (pid == 0) {
            std::ostringstream cold, warm;
            uint64_t warmMisses = ~0ull;
            std::string placement;
            {
                sweep::ResultCache cache(local, 0,
                                         leg.far ? far : std::string());
                sweep::SchedulerConfig sc;
                sc.cache = &cache;
                sc.jobs = leg.jobs;
                sc.shards = leg.shards;
                sc.traceMemoBytes = leg.budget;
                sweep::emitResults(cold, sweep::runSweep(points, sc),
                                   sweep::Format::JsonLines);
            }
            {
                // Fresh cache on the same directories: the warm run
                // must be served entirely from the durable tiers.
                sweep::ResultCache cache(local, 0,
                                         leg.far ? far : std::string());
                sweep::SchedulerConfig sc;
                sc.cache = &cache;
                sc.jobs = leg.jobs;
                sc.shards = leg.shards;
                sc.traceMemoBytes = leg.budget;
                sweep::emitResults(warm, sweep::runSweep(points, sc),
                                   sweep::Format::JsonLines);
                warmMisses = cache.stats().misses;
                placement = cache.placementMap();
            }
            {
                std::ofstream os(outPath, std::ios::binary);
                os << cold.str() << kSep << warm.str() << kSep
                   << placement << kSep << warmMisses << "\n";
            }
            std::_Exit(0);
        }
        int st = 0;
        return ::waitpid(pid, &st, 0) == pid && WIFEXITED(st) &&
               WEXITSTATUS(st) == 0;
    };

    const size_t nLegs = sizeof legs / sizeof legs[0];
    std::vector<std::string> locals, fars, outs;
    for (size_t i = 0; i < nLegs; ++i) {
        locals.push_back(tempDir(("mx_l" + std::to_string(i)).c_str()));
        fars.push_back(tempDir(("mx_f" + std::to_string(i)).c_str()));
        outs.push_back(tempDir(("mx_o" + std::to_string(i)).c_str()));
    }
    // Fork every leg before reading any result: the parent allocates
    // nothing between forks, so all legs inherit one heap image.
    std::vector<bool> ok(nLegs, false);
    for (size_t i = 0; i < nLegs; ++i)
        ok[i] = runLeg(legs[i], locals[i], fars[i], outs[i]);

    std::string coldRef, warmRef, placementRef;
    int tag = 0;
    for (const Leg &leg : legs) {
        const size_t i = size_t(tag);
        const auto &local = locals[i];
        const auto &far = fars[i];
        const auto &outPath = outs[i];
        ++tag;

        ASSERT_TRUE(ok[i]) << "leg " << tag;
        std::string blob;
        {
            std::ifstream is(outPath, std::ios::binary);
            std::ostringstream ss;
            ss << is.rdbuf();
            blob = ss.str();
        }
        const auto cut1 = blob.find(kSep);
        ASSERT_NE(cut1, std::string::npos) << "leg " << tag;
        const auto cut2 = blob.find(kSep, cut1 + 1);
        ASSERT_NE(cut2, std::string::npos) << "leg " << tag;
        const auto cut3 = blob.find(kSep, cut2 + 1);
        ASSERT_NE(cut3, std::string::npos) << "leg " << tag;
        const size_t sep = std::string(kSep).size();
        const std::string cold = blob.substr(0, cut1);
        const std::string warm =
            blob.substr(cut1 + sep, cut2 - cut1 - sep);
        const std::string placement =
            blob.substr(cut2 + sep, cut3 - cut2 - sep);
        EXPECT_EQ(blob.substr(cut3 + sep), "0\n")
            << "leg " << tag << " recomputed a warm point";

        EXPECT_EQ(cold, warm) << "leg " << tag;
        if (coldRef.empty()) {
            coldRef = cold;
            warmRef = warm;
        } else {
            EXPECT_EQ(cold, coldRef) << "leg " << tag;
            EXPECT_EQ(warm, warmRef) << "leg " << tag;
        }
        if (leg.far) {
            if (placementRef.empty())
                placementRef = placement;
            else
                EXPECT_EQ(placement, placementRef) << "leg " << tag;
        }

        fs::remove_all(local);
        fs::remove_all(far);
        fs::remove_all(outPath);
    }
    ASSERT_FALSE(coldRef.empty());
    EXPECT_EQ(coldRef, warmRef);
    ASSERT_FALSE(placementRef.empty());
    // Every entry of the far-enabled placement lives in both durable
    // tiers after the cold run published it.
    std::istringstream lines(placementRef);
    std::string line;
    size_t entries = 0;
    while (std::getline(lines, line)) {
        ++entries;
        EXPECT_NE(line.find(" disk=1"), std::string::npos) << line;
        EXPECT_NE(line.find(" far=1"), std::string::npos) << line;
    }
    // 4 results + 2 captured traces (Scalar and Neon share per-impl
    // traces across the two core configs).
    EXPECT_EQ(entries, 6u) << placementRef;
}
