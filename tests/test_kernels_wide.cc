/**
 * @file
 * Wider-register correctness: the eight Figure-5 kernels must produce
 * Scalar-matching outputs at every emulated register width
 * (128/256/512/1024 bits). Parameterized over (kernel, width).
 */

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "core/runner.hh"
#include "trace/stats.hh"

using namespace swan;

namespace
{

core::Options
wideOptions()
{
    core::Options o;
    o.imageWidth = 160;  // multiple of the widest lane count
    o.imageHeight = 48;
    o.audioSamples = 2048;
    o.bufferBytes = 4096;
    o.gemmM = 12;
    o.gemmN = 50;
    o.gemmK = 24;
    o.videoBlocks = 4;
    return o;
}

using WideParam = std::tuple<const core::KernelSpec *, int>;

class WideKernelTest : public ::testing::TestWithParam<WideParam>
{
};

std::vector<const core::KernelSpec *>
widerKernels()
{
    std::vector<const core::KernelSpec *> out;
    for (const auto &k : core::Registry::instance().kernels())
        if (k.info.widerWidths)
            out.push_back(&k);
    return out;
}

std::string
wideName(const ::testing::TestParamInfo<WideParam> &info)
{
    std::string n = std::get<0>(info.param)->info.symbol + "_" +
                    std::get<0>(info.param)->info.name + "_" +
                    std::to_string(std::get<1>(info.param)) + "b";
    for (auto &c : n)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

} // namespace

TEST_P(WideKernelTest, NeonMatchesScalarAtWidth)
{
    const auto *spec = std::get<0>(GetParam());
    const int bits = std::get<1>(GetParam());
    auto w = spec->make(wideOptions());
    w->runScalar();
    w->runNeon(bits);
    EXPECT_TRUE(w->verify())
        << spec->info.qualifiedName() << " @ " << bits << "b";
}

TEST_P(WideKernelTest, WiderRegistersReduceVectorInstructions)
{
    const auto *spec = std::get<0>(GetParam());
    const int bits = std::get<1>(GetParam());
    if (bits == 128)
        GTEST_SKIP() << "baseline width";
    auto w = spec->make(wideOptions());
    auto base = core::Runner::capture(*w, core::Impl::Neon, 128);
    auto wide = core::Runner::capture(*w, core::Impl::Neon, bits);
    EXPECT_LT(wide.size(), base.size())
        << spec->info.qualifiedName() << " @ " << bits << "b";
}

INSTANTIATE_TEST_SUITE_P(
    WiderKernels, WideKernelTest,
    ::testing::Combine(::testing::ValuesIn(widerKernels()),
                       ::testing::Values(128, 256, 512, 1024)),
    wideName);

TEST(WideKernels, ExactlyEight)
{
    EXPECT_EQ(widerKernels().size(), 8u);
}
