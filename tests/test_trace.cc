/**
 * @file
 * Tests for the trace substrate: recorder id assignment, buffered vs
 * streaming modes, instruction classification mapping (Figure 1 buckets),
 * MixStats accounting and the scalar instrumentation layer (Sc<T>).
 */

#include <gtest/gtest.h>

#include "simd/scalar.hh"
#include "trace/instr.hh"
#include "trace/recorder.hh"
#include "trace/stats.hh"

using namespace swan;
using namespace swan::simd;
using trace::Instr;
using trace::InstrClass;
using trace::PaperClass;

TEST(Trace, RecorderAssignsSequentialIds)
{
    trace::Recorder rec;
    Instr i;
    EXPECT_EQ(rec.emit(i), 1u);
    EXPECT_EQ(rec.emit(i), 2u);
    EXPECT_EQ(rec.count(), 2u);
    EXPECT_EQ(rec.instrs().size(), 2u);
    EXPECT_EQ(rec.instrs()[0].id, 1u);
}

TEST(Trace, StreamingRecorderForwardsWithoutBuffering)
{
    struct Counter : trace::Sink
    {
        int n = 0;
        void onInstr(const Instr &) override { ++n; }
    } sink;
    trace::Recorder rec(&sink);
    Instr i;
    rec.emit(i);
    rec.emit(i);
    EXPECT_EQ(sink.n, 2);
    EXPECT_TRUE(rec.instrs().empty());
}

TEST(Trace, ScopedRecorderInstallsAndRestores)
{
    EXPECT_EQ(trace::currentRecorder(), nullptr);
    {
        trace::Recorder rec;
        trace::ScopedRecorder scoped(&rec);
        EXPECT_EQ(trace::currentRecorder(), &rec);
        {
            trace::Recorder inner;
            trace::ScopedRecorder scoped2(&inner);
            EXPECT_EQ(trace::currentRecorder(), &inner);
        }
        EXPECT_EQ(trace::currentRecorder(), &rec);
    }
    EXPECT_EQ(trace::currentRecorder(), nullptr);
}

TEST(Trace, PaperClassMapping)
{
    EXPECT_EQ(trace::paperClass(InstrClass::SInt), PaperClass::SInteger);
    EXPECT_EQ(trace::paperClass(InstrClass::SLoad), PaperClass::SInteger);
    EXPECT_EQ(trace::paperClass(InstrClass::SStore),
              PaperClass::SInteger);
    EXPECT_EQ(trace::paperClass(InstrClass::Branch),
              PaperClass::SInteger);
    EXPECT_EQ(trace::paperClass(InstrClass::SFloat), PaperClass::SFloat);
    EXPECT_EQ(trace::paperClass(InstrClass::VLoad), PaperClass::VLoad);
    EXPECT_EQ(trace::paperClass(InstrClass::VCrypto),
              PaperClass::VCrypto);
    EXPECT_EQ(trace::paperClass(InstrClass::VMisc), PaperClass::VMisc);
}

TEST(Trace, MixStatsFractionsSumToOne)
{
    trace::Recorder rec;
    {
        trace::ScopedRecorder scoped(&rec);
        Sc<int32_t> a(1), b(2);
        auto c = a + b;
        Sc<float> f(1.5f), g(2.5f);
        auto h = f * g;
        (void)c;
        (void)h;
        ctl::loop();
    }
    trace::MixStats mix;
    mix.addTrace(rec.instrs());
    EXPECT_EQ(mix.total(), rec.count());
    double sum = 0;
    for (size_t c = 0; c < size_t(PaperClass::NumClasses); ++c)
        sum += mix.fraction(PaperClass(c));
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Trace, ScalarOpsClassified)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    Sc<int32_t> a(1), b(2);
    (void)(a + b);
    EXPECT_EQ(rec.instrs().back().cls, InstrClass::SInt);
    (void)(a * b);
    EXPECT_EQ(rec.instrs().back().cls, InstrClass::SInt);
    EXPECT_EQ(rec.instrs().back().fu, trace::Fu::SMul);
    Sc<float> f(1.0f), g(2.0f);
    (void)(f + g);
    EXPECT_EQ(rec.instrs().back().cls, InstrClass::SFloat);
    (void)(a < b); // emits compare + branch
    EXPECT_EQ(rec.instrs().back().cls, InstrClass::Branch);
}

TEST(Trace, ScalarMemoryCarriesAddressAndDeps)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    int32_t x = 42;
    Sc<int32_t> v = sload(&x);
    EXPECT_EQ(v.v, 42);
    EXPECT_GT(v.src, 0u);
    const auto &load = rec.instrs().back();
    EXPECT_EQ(load.cls, InstrClass::SLoad);
    EXPECT_EQ(load.addr, reinterpret_cast<uint64_t>(&x));
    EXPECT_EQ(load.size, 4u);

    sstore(&x, v + Sc<int32_t>(1));
    const auto &store = rec.instrs().back();
    EXPECT_EQ(store.cls, InstrClass::SStore);
    EXPECT_NE(store.dep0, 0u);
    EXPECT_EQ(x, 43);
}

TEST(Trace, ConstantsCarryNoProvenance)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    Sc<int32_t> c(7);
    EXPECT_EQ(c.src, 0u);
    Sc<int32_t> d = c + Sc<int32_t>(1);
    EXPECT_GT(d.src, 0u);
    EXPECT_EQ(rec.instrs().back().dep0, 0u); // both operands constants
}

TEST(Trace, CtlLoopEmitsUpdateAndBranch)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    ctl::loop();
    ASSERT_EQ(rec.count(), 2u);
    EXPECT_EQ(rec.instrs()[0].cls, InstrClass::SInt);
    EXPECT_EQ(rec.instrs()[1].cls, InstrClass::Branch);
    EXPECT_EQ(rec.instrs()[1].dep0, rec.instrs()[0].id);
}

TEST(Trace, SelectAndMinMaxAreBranchless)
{
    trace::Recorder rec;
    trace::ScopedRecorder scoped(&rec);
    Sc<int32_t> a(1), b(2);
    (void)sselect(true, a, b);
    (void)smin(a, b);
    (void)smax(a, b);
    for (const auto &i : rec.instrs())
        EXPECT_NE(i.cls, InstrClass::Branch);
}

TEST(Trace, MixStatsLoadStoreBytes)
{
    trace::Recorder rec;
    {
        trace::ScopedRecorder scoped(&rec);
        int64_t x = 0;
        sstore(&x, sload(&x));
    }
    trace::MixStats mix;
    mix.addTrace(rec.instrs());
    EXPECT_EQ(mix.loadBytes(), 8u);
    EXPECT_EQ(mix.storeBytes(), 8u);
}

TEST(Trace, TakeMovesTraceOut)
{
    trace::Recorder rec;
    {
        trace::ScopedRecorder scoped(&rec);
        ctl::loop();
    }
    auto instrs = rec.take();
    EXPECT_EQ(instrs.size(), 2u);
    EXPECT_TRUE(rec.instrs().empty());
    EXPECT_EQ(rec.count(), 0u);
}
