#!/usr/bin/env python3
"""swan-lint: determinism-contract static analysis for the swan tree.

The sweep engine's standing guarantee — byte-identical emitter output
across any backend x jobs x shards x memo-budget combination — rests
on a handful of invariants that used to live only in comments and
after-the-fact byte-diffing. This pass encodes them as checks over the
library sources (src/ and include/), enumerated via the build's
compile_commands.json:

  noalloc         allocation-capable constructs inside a
                  SWAN_NOALLOC_BEGIN/END region (the fused replay loop,
                  the step core, the telemetry recording path). Heap
                  traffic there shifts capture-time addresses, which the
                  address-sensitive cache models observe.
  unordered-iter  iteration over std::unordered_{map,set}: hash-table
                  order is libstdc++-internal and must never feed an
                  emitter, a cache file order, or a stats merge.
  nondet          nondeterminism sources (libc PRNGs, wall clocks,
                  file mtimes / the filesystem clock) outside src/obs/
                  — telemetry may read clocks; results and cache
                  eviction order must be a pure function of the grid
                  and its lookup history.
  ptr-order       ordered containers keyed on pointers: ASLR makes the
                  iteration order a fresh coin flip per run.
  layout-pin      every SWAN_CAPTURE_TYPE-tagged type has a size pin in
                  include/swan/internal/layout.hh, every pin names a
                  tagged type, and the known capture-phase types stay
                  tagged (they are allocated while a sweep is still
                  capturing; growing one drifts capture heap layout).

Suppress a finding by annotating the offending line (or the line
before) with a reason:

    // swan-lint: allow(nondet) watchdog deadline, never feeds results

A suppression without a reason is itself a finding: intentional
exceptions are part of the contract and must say why they are safe.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
See docs/lint.md for the full story.
"""

import argparse
import json
import os
import re
import sys

REQUIRED_PINNED = ("SweepPoint", "CacheKey", "StepState", "CoreModel",
                   "Decoded", "LaneBlock")

LINT_DIRS = ("src", "include")  # library scope, relative to the root

CHECKS = {
    "noalloc": "allocation-capable construct in a SWAN_NOALLOC region",
    "unordered-iter": "iteration over an unordered container",
    "nondet": "nondeterminism source outside src/obs/",
    "ptr-order": "ordered container keyed on a pointer",
    "layout-pin": "SWAN_CAPTURE_TYPE tag/pin bookkeeping",
}


class Finding:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.check,
                                   self.message)


def strip_code(text):
    """Blank comments and string/char literals, preserving newlines
    and column positions, so checks never fire on prose (this tree's
    comments discuss malloc and rand at length) or on quoted text.
    Handles //, /* */, "..." (with escapes), '...', and R"delim(...)
    delim" raw strings."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i:j + 2]
            out.append(re.sub(r"[^\n]", " ", seg))
            i = j + 2
        elif c == "R" and nxt == '"':
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n - len(close) if j < 0 else j
            seg = text[i:j + len(close)]
            out.append(re.sub(r"[^\n]", " ", seg))
            i = j + len(close)
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j, n - 1)
            out.append(c + " " * (j - i - 1) + c)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


SUPPRESS_RE = re.compile(r"swan-lint:\s*allow\(([\w-]+)\)\s*(.*)")


def suppressions(raw_lines):
    """Map line number -> (check, reason, annotation line). An
    annotation covers its own line and the next one."""
    supp = {}
    for ln, line in enumerate(raw_lines, 1):
        m = SUPPRESS_RE.search(line)
        if m:
            entry = (m.group(1), m.group(2).strip(), ln)
            supp[ln] = entry
            supp[ln + 1] = entry
    return supp


ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b(?!\s*\()"), "new-expression"),
    (re.compile(r"\b(?:malloc|calloc|realloc|strdup|strndup|"
                r"aligned_alloc|posix_memalign|free)\s*\("),
     "malloc-family call"),
    (re.compile(r"[.>](?:push_back|emplace_back|emplace|emplace_hint|"
                r"push_front|insert|resize|reserve|assign|append)"
                r"\s*\("),
     "container growth"),
    (re.compile(r"\bmake_(?:shared|unique)\b"),
     "smart-pointer allocation"),
    (re.compile(r"\bto_string\s*\("), "string allocation"),
    (re.compile(r"\bthrow\b"), "throw (allocates the exception)"),
]

NONDET_PATTERNS = [
    (re.compile(r"\b(?:rand|rand_r|srand|drand48|lrand48|mrand48|"
                r"random|getrandom|getentropy)\s*\("),
     "libc randomness"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\b(?:time|gettimeofday|clock)\s*\("),
     "wall-clock read"),
    (re.compile(r"\bclock_gettime\s*\("), "clock read"),
    (re.compile(r"\b(?:system_clock|steady_clock|"
                r"high_resolution_clock)::now\b"),
     "chrono clock read"),
    # Cache eviction must order entries by lookup history, never by
    # file timestamps: mtimes move with the wall clock, rsync/cp -p,
    # and filesystem granularity, so an mtime-keyed policy decides
    # differently run to run.
    (re.compile(r"\blast_write_time\s*\("),
     "file mtime read/write"),
    (re.compile(r"\b(?:file_time_type::clock|file_clock)\b"),
     "filesystem clock read"),
]

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;(){}]*>\s+(\w+)\s*"
    r"[;={(]")
PTR_KEY_RE = re.compile(
    r"\bstd::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:<>]+\s*\*")
CAPTURE_TAG_RE = re.compile(
    r"\b(?:struct|class)\s+SWAN_CAPTURE_TYPE\s+(\w+)")
PIN_RE = re.compile(r"\bSWAN_PIN(?:_VALUE|_CLASS)?\s*\(\s*([\w:]+)")


class File:
    def __init__(self, path, display):
        self.path = path
        self.display = display
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.raw_lines = self.raw.split("\n")
        self.code = strip_code(self.raw)
        self.code_lines = self.code.split("\n")
        self.supp = suppressions(self.raw_lines)


def check_noalloc(f, report):
    stack = []  # line numbers of open SWAN_NOALLOC_BEGIN markers
    for ln, line in enumerate(f.code_lines, 1):
        if line.startswith("}"):
            # A column-0 closing brace ends the enclosing function (or
            # namespace): any region still open never reached its END.
            for open_ln in stack:
                report(f, open_ln, "noalloc",
                       "SWAN_NOALLOC_BEGIN never closed by "
                       "SWAN_NOALLOC_END in its function")
            stack = []
            continue
        if "SWAN_NOALLOC_BEGIN" in line:
            stack.append(ln)
            continue
        if "SWAN_NOALLOC_END" in line:
            if not stack:
                report(f, ln, "noalloc",
                       "SWAN_NOALLOC_END without a matching BEGIN")
            else:
                stack.pop()
            continue
        if not stack or "SWAN_NOALLOC_PAUSE" in line:
            continue
        for pat, what in ALLOC_PATTERNS:
            if pat.search(line):
                report(f, ln, "noalloc",
                       "%s inside the no-alloc region opened at line "
                       "%d — heap traffic here shifts capture-time "
                       "addresses the simulation observes"
                       % (what, stack[-1]))
    for ln in stack:
        report(f, ln, "noalloc",
               "SWAN_NOALLOC_BEGIN never closed by SWAN_NOALLOC_END "
               "in its function")


def check_unordered_iter(f, report):
    names = set(UNORDERED_DECL_RE.findall(f.code))
    if not names:
        return
    iter_res = [
        (re.compile(r"for\s*\([^;)]*:\s*(?:\w+(?:\.|->))?(%s)\s*\)"
                    % "|".join(map(re.escape, sorted(names)))),
         "range-for over unordered container '%s'"),
        (re.compile(r"\b(%s)\s*(?:\.|->)\s*c?begin\s*\("
                    % "|".join(map(re.escape, sorted(names)))),
         "iterator walk over unordered container '%s'"),
    ]
    for ln, line in enumerate(f.code_lines, 1):
        for pat, msg in iter_res:
            m = pat.search(line)
            if m:
                report(f, ln, "unordered-iter",
                       (msg % m.group(1)) +
                       " — hash order is not deterministic; sort "
                       "before anything ordered (emitters, cache "
                       "files, stats merges) consumes it")


def check_nondet(f, report):
    rel = f.display.replace(os.sep, "/")
    if "/obs/" in rel or rel.startswith("obs/"):
        return  # telemetry is the sanctioned clock consumer
    for ln, line in enumerate(f.code_lines, 1):
        for pat, what in NONDET_PATTERNS:
            if pat.search(line):
                report(f, ln, "nondet",
                       "%s — results must be a pure function of the "
                       "grid; clocks/PRNGs belong in src/obs/ or "
                       "behind a seeded, documented scenario"
                       % what)


def check_ptr_order(f, report):
    for ln, line in enumerate(f.code_lines, 1):
        if PTR_KEY_RE.search(line):
            report(f, ln, "ptr-order",
                   "ordered container keyed on a pointer — ASLR makes "
                   "this order nondeterministic across runs; key on a "
                   "stable identity instead")


def check_layout_pins(files, layout_file, require_known, report):
    tags = {}  # type name -> (File, line)
    for f in files:
        for ln, line in enumerate(f.code_lines, 1):
            for m in CAPTURE_TAG_RE.finditer(line):
                tags[m.group(1)] = (f, ln)

    pins = {}  # type name -> line in the layout header
    if layout_file is not None:
        for ln, line in enumerate(layout_file.code_lines, 1):
            if line.lstrip().startswith("#"):
                continue  # the SWAN_PIN macro definitions themselves
            for m in PIN_RE.finditer(line):
                pins[m.group(1).split("::")[-1]] = ln

    for name, (f, ln) in sorted(tags.items()):
        if name not in pins:
            report(f, ln, "layout-pin",
                   "capture-phase type '%s' has no size pin in the "
                   "layout header — add SWAN_PIN(%s, <bytes>) to "
                   "include/swan/internal/layout.hh (its allocation "
                   "happens while a sweep is capturing; an unpinned "
                   "size change silently drifts results)"
                   % (name, name))
    for name, ln in sorted(pins.items()):
        if name not in tags and layout_file is not None:
            report(layout_file, ln, "layout-pin",
                   "pin for '%s' names no SWAN_CAPTURE_TYPE-tagged "
                   "type — tag the type at its definition or remove "
                   "the stale pin" % name)
    if require_known:
        anchor = layout_file if layout_file is not None else (
            files[0] if files else None)
        for name in REQUIRED_PINNED:
            if name not in tags and anchor is not None:
                report(anchor, 1, "layout-pin",
                       "known capture-phase type '%s' is no longer "
                       "tagged SWAN_CAPTURE_TYPE anywhere — the tag "
                       "(and its pin) must not be dropped" % name)


def collect_tree_files(root):
    paths = []
    for d in LINT_DIRS:
        base = os.path.join(root, d)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".cc", ".hh", ".cpp", ".hpp", ".h")):
                    paths.append(os.path.join(dirpath, name))
    return sorted(paths)


def root_from_compile_commands(cc_path):
    with open(cc_path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    files = []
    for e in entries:
        p = e.get("file", "")
        if not os.path.isabs(p):
            p = os.path.join(e.get("directory", ""), p)
        files.append(os.path.normpath(p))
    if not files:
        raise RuntimeError("compile_commands.json lists no files")
    return os.path.commonpath(files)


def main(argv):
    ap = argparse.ArgumentParser(
        prog="swan-lint",
        description="determinism-contract static analysis "
                    "(docs/lint.md)")
    ap.add_argument("-p", "--build", metavar="DIR",
                    help="build directory holding compile_commands.json")
    ap.add_argument("--compile-commands", metavar="FILE",
                    help="explicit compile_commands.json path")
    ap.add_argument("--root", metavar="DIR",
                    help="source root (default: derived from "
                         "compile_commands.json, else the CWD)")
    ap.add_argument("--files", nargs="+", metavar="F",
                    help="lint exactly these files (fixture mode: "
                         "skips the known-type layout requirement)")
    ap.add_argument("--layout-header", metavar="H",
                    help="layout-pin header (default: "
                         "<root>/include/swan/internal/layout.hh)")
    ap.add_argument("--checks", metavar="IDS",
                    help="comma-separated subset of checks to run")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="findings only, no summary line")
    args = ap.parse_args(argv)

    if args.list_checks:
        for cid, desc in CHECKS.items():
            print("%-15s %s" % (cid, desc))
        return 0

    enabled = set(CHECKS)
    if args.checks:
        enabled = set(args.checks.split(","))
        unknown = enabled - set(CHECKS)
        if unknown:
            print("swan-lint: unknown checks: %s" %
                  ", ".join(sorted(unknown)), file=sys.stderr)
            return 2

    root = args.root
    fixture_mode = bool(args.files)
    if args.files:
        paths = [os.path.normpath(p) for p in args.files]
        root = root or os.getcwd()
    else:
        cc = args.compile_commands
        if not cc and args.build:
            cc = os.path.join(args.build, "compile_commands.json")
        if cc and os.path.exists(cc):
            try:
                root = root or root_from_compile_commands(cc)
            except (OSError, ValueError, RuntimeError) as e:
                print("swan-lint: bad compile_commands.json: %s" % e,
                      file=sys.stderr)
                return 2
        elif cc:
            print("swan-lint: %s not found (configure with "
                  "CMAKE_EXPORT_COMPILE_COMMANDS=ON)" % cc,
                  file=sys.stderr)
            return 2
        root = root or os.getcwd()
        paths = collect_tree_files(root)
        if not paths:
            print("swan-lint: no sources under %s" % root,
                  file=sys.stderr)
            return 2

    # Fixture mode only consults a layout header handed to it
    # explicitly; tree mode defaults to the real one.
    layout_path = args.layout_header
    if layout_path is None and not fixture_mode:
        layout_path = os.path.join(root, "include", "swan", "internal",
                                   "layout.hh")

    findings = []
    suppressed = [0]
    bad_suppression_lines = set()

    def report(f, ln, check, message):
        if check not in enabled:
            return
        entry = f.supp.get(ln)
        if entry and entry[0] == check:
            _, reason, ann_ln = entry
            if reason:
                suppressed[0] += 1
                return
            key = (f.display, ann_ln)
            if key not in bad_suppression_lines:
                bad_suppression_lines.add(key)
                findings.append(Finding(
                    f.display, ann_ln, check,
                    "suppression without a reason — intentional "
                    "exceptions must document why they are safe"))
            return
        findings.append(Finding(f.display, ln, check, message))

    files = []
    for p in paths:
        display = os.path.relpath(p, root) if not fixture_mode else p
        try:
            files.append(File(p, display))
        except OSError as e:
            print("swan-lint: cannot read %s: %s" % (p, e),
                  file=sys.stderr)
            return 2

    layout_file = None
    if layout_path is not None and os.path.exists(layout_path):
        disp = (os.path.relpath(layout_path, root)
                if not fixture_mode else layout_path)
        layout_file = File(layout_path, disp)

    for f in files:
        check_noalloc(f, report)
        check_unordered_iter(f, report)
        check_nondet(f, report)
        check_ptr_order(f, report)
    check_layout_pins(files, layout_file,
                      require_known=not fixture_mode, report=report)

    for fin in findings:
        print(fin)
    if not args.quiet:
        print("swan-lint: %d finding%s (%d suppressed) across %d "
              "file%s" % (len(findings),
                          "" if len(findings) == 1 else "s",
                          suppressed[0], len(files),
                          "" if len(files) == 1 else "s"))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
