#!/usr/bin/env sh
# Header hygiene for the public API surface (CI-enforced; also wired
# into ctest as `header_hygiene`).
#
#  1. Every include/swan/*.hh compiles standalone (its own includes are
#     complete; no hidden ordering dependencies).
#  2. Nothing under bench/ or examples/ includes a src/-internal header
#     — the public include/swan/ surface is the only supported way to
#     consume the library.
#
# Usage: scripts/check_headers.sh [SRC_DIR] [CXX]
set -eu

SRC_DIR=${1:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
CXX=${2:-${CXX:-c++}}

fail=0

# --- 1: each public header compiles standalone ------------------------
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
for hh in "$SRC_DIR"/include/swan/*.hh; do
    name=$(basename "$hh")
    tu="$tmpdir/standalone_$name.cc"
    printf '#include "swan/%s"\n#include "swan/%s"\n' "$name" "$name" > "$tu"
    if ! "$CXX" -std=c++20 -fsyntax-only -Wall -Wextra \
            -I "$SRC_DIR/include" -I "$SRC_DIR/src" "$tu"; then
        echo "check_headers: include/swan/$name does not compile standalone" >&2
        fail=1
    fi
done

# --- 2: bench/ and examples/ stay on the public surface ---------------
# Allowed quoted includes: swan/... public headers and the bench's own
# shared helper (which is itself checked below).
bad=$(grep -n '#include "' "$SRC_DIR"/bench/*.cc "$SRC_DIR"/bench/*.hh \
          "$SRC_DIR"/examples/*.cc |
      grep -v '#include "swan/' |
      grep -v '#include "bench_common.hh"' || true)
if [ -n "$bad" ]; then
    echo "check_headers: internal includes outside include/swan/:" >&2
    echo "$bad" >&2
    fail=1
fi

exit $fail
