#!/usr/bin/env sh
# One lint entry point for the tree (CI job `lint`; ctest wires the
# individual pieces as `header_hygiene` and `swan_lint`):
#
#   headers    every include/swan/*.hh compiles standalone, and nothing
#              under bench/ or examples/ includes a src/-internal
#              header (the public include/swan/ surface is the only
#              supported way in).
#   swan-lint  the determinism-contract static analysis,
#              tools/lint/swan_lint.py (docs/lint.md). Driven by a
#              build directory's compile_commands.json when one is
#              available ($BUILD_DIR, else ./build), else a plain
#              src/ + include/ walk.
#   tidy       clang-tidy with the checked-in .clang-tidy over the
#              library sources. Skipped with a notice when clang-tidy
#              is not installed (the dev container ships only g++);
#              CI installs it.
#   all        all of the above (default).
#
# Usage: scripts/lint.sh [headers|swan-lint|tidy|all] [SRC_DIR] [CXX]
set -eu

MODE=${1:-all}
SRC_DIR=${2:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
CXX=${3:-${CXX:-c++}}
BUILD_DIR=${BUILD_DIR:-$SRC_DIR/build}

fail=0

check_headers() {
    # --- each public header compiles standalone (twice, to catch a
    # missing include guard) -------------------------------------------
    tmpdir=$(mktemp -d)
    trap 'rm -rf "$tmpdir"' EXIT
    for hh in "$SRC_DIR"/include/swan/*.hh; do
        name=$(basename "$hh")
        tu="$tmpdir/standalone_$name.cc"
        printf '#include "swan/%s"\n#include "swan/%s"\n' \
            "$name" "$name" > "$tu"
        if ! "$CXX" -std=c++20 -fsyntax-only -Wall -Wextra \
                -I "$SRC_DIR/include" -I "$SRC_DIR/src" "$tu"; then
            echo "lint: include/swan/$name does not compile standalone" >&2
            fail=1
        fi
    done

    # --- bench/ and examples/ stay on the public surface --------------
    # Allowed quoted includes: swan/... public headers and the bench's
    # own shared helper (which is itself checked above).
    bad=$(grep -n '#include "' "$SRC_DIR"/bench/*.cc "$SRC_DIR"/bench/*.hh \
              "$SRC_DIR"/examples/*.cc |
          grep -v '#include "swan/' |
          grep -v '#include "bench_common.hh"' || true)
    if [ -n "$bad" ]; then
        echo "lint: internal includes outside include/swan/:" >&2
        echo "$bad" >&2
        fail=1
    fi
}

check_swan_lint() {
    if [ -f "$BUILD_DIR/compile_commands.json" ]; then
        python3 "$SRC_DIR/tools/lint/swan_lint.py" -p "$BUILD_DIR" \
            || fail=1
    else
        echo "lint: no $BUILD_DIR/compile_commands.json; walking" \
             "src/ + include/ directly" >&2
        python3 "$SRC_DIR/tools/lint/swan_lint.py" --root "$SRC_DIR" \
            || fail=1
    fi
}

check_tidy() {
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "lint: clang-tidy not installed; skipping (CI runs it)" >&2
        return 0
    fi
    if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
        echo "lint: tidy needs $BUILD_DIR/compile_commands.json" \
             "(configure first, or set BUILD_DIR)" >&2
        fail=1
        return 0
    fi
    # Library sources only; .clang-tidy's HeaderFilterRegex keeps the
    # header diagnostics scoped to src/ + include/ as well.
    find "$SRC_DIR/src" -name '*.cc' | sort | \
        xargs clang-tidy -p "$BUILD_DIR" --quiet || fail=1
}

case "$MODE" in
  headers)   check_headers ;;
  swan-lint) check_swan_lint ;;
  tidy)      check_tidy ;;
  all)       check_headers; check_swan_lint; check_tidy ;;
  *)
    echo "usage: scripts/lint.sh [headers|swan-lint|tidy|all]" \
         "[SRC_DIR] [CXX]" >&2
    exit 2
    ;;
esac

exit $fail
