/**
 * @file
 * Public re-export: the auto-vectorization legality model behind the
 * Table 4 reproduction (which kernels the compiler vectorizes and the
 * failure reasons of the rest).
 */

#ifndef SWAN_AUTOVEC_HH
#define SWAN_AUTOVEC_HH

#include "autovec/legality.hh"

#endif // SWAN_AUTOVEC_HH
