/**
 * @file
 * Public re-export: the timing and power models. CoreConfig presets
 * (prime/gold/silver and the scalability variants), simulateTrace /
 * simulateTraceMany, and the battery-rail power model.
 */

#ifndef SWAN_SIM_HH
#define SWAN_SIM_HH

#include "sim/configs.hh"
#include "sim/core_model.hh"
#include "sim/power.hh"

#endif // SWAN_SIM_HH
