/**
 * @file
 * Public re-export: the GPU offload model (Section 8 / Figure 6 —
 * crossover sizes where offloading a kernel beats the big core).
 */

#ifndef SWAN_GPU_HH
#define SWAN_GPU_HH

#include "gpu/offload_model.hh"

#endif // SWAN_GPU_HH
