/**
 * @file
 * swan::Results — the stable view over one Experiment run. Owns the
 * SweepResult stream (in deterministic point-index order) plus a
 * snapshot of the session cache counters taken when the run finished.
 * Supports iteration, axis lookup (find), predicate filtering (where)
 * and emission to the table/csv/jsonl formats.
 */

#ifndef SWAN_RESULTS_HH
#define SWAN_RESULTS_HH

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sweep/cache.hh"
#include "sweep/emit.hh"
#include "sweep/scheduler.hh"

namespace swan
{

/**
 * One experiment point paired with its baseline-implementation
 * counterpart: same kernel, core config and working set; the
 * baseline's vector width matches the point's exactly when such a
 * point exists, else the width-normalized 128-bit baseline (scalar
 * code has no width axis — see sweep::expand). Produced by
 * Results::speedupVs; the pointers reference the Results they came
 * from and share its lifetime.
 */
struct Speedup
{
    const sweep::SweepResult *baseline = nullptr;
    const sweep::SweepResult *point = nullptr;

    /** Cycle speedup of the point over its baseline. */
    double
    speedup() const
    {
        return double(baseline->run.sim.cycles) /
               double(point->run.sim.cycles);
    }
    /** Energy improvement of the point over its baseline. */
    double
    energyImprovement() const
    {
        return baseline->run.sim.energyJ / point->run.sim.energyJ;
    }
    /** Dynamic instruction-count reduction over the baseline. */
    double
    instrReduction() const
    {
        return double(baseline->run.mix.total()) /
               double(point->run.mix.total());
    }
};

/**
 * Geometric mean of @p value over @p rows grouped by @p key, groups
 * in first-occurrence order (for per-library aggregation that order
 * is the registry's Table-2 order). An empty group list yields an
 * empty result; the geomean of an empty group is 0.
 */
std::vector<std::pair<std::string, double>>
geomeanBy(const std::vector<Speedup> &rows,
          const std::function<std::string(const Speedup &)> &key,
          const std::function<double(const Speedup &)> &value);

/** The value for @p key in a geomeanBy result, or @p fallback when
 *  the group is absent (0 — the geomean-of-nothing convention — suits
 *  table cells). */
double valueFor(const std::vector<std::pair<std::string, double>> &cells,
                std::string_view key, double fallback = 0.0);

class Results
{
  public:
    using value_type = sweep::SweepResult;
    using const_iterator = std::vector<sweep::SweepResult>::const_iterator;

    Results() = default;
    Results(std::vector<sweep::SweepResult> results,
            sweep::CacheStats stats)
        : results_(std::move(results)), stats_(stats)
    {
    }

    bool empty() const { return results_.empty(); }
    size_t size() const { return results_.size(); }

    const_iterator begin() const { return results_.begin(); }
    const_iterator end() const { return results_.end(); }
    const sweep::SweepResult &operator[](size_t i) const
    {
        return results_[i];
    }

    /** The underlying stream, for engine-level post-processing. */
    const std::vector<sweep::SweepResult> &points() const
    {
        return results_;
    }

    /**
     * First result matching the given axes; null if absent. Empty
     * @p config / @p working_set match any value (the common
     * single-config case).
     */
    const sweep::SweepResult *
    find(std::string_view kernel_qualified, core::Impl impl, int vec_bits,
         std::string_view config = {},
         std::string_view working_set = {}) const
    {
        return sweep::findResult(results_, kernel_qualified, impl,
                                 vec_bits, config, working_set);
    }

    /**
     * Pair every point not of @p baseline with the baseline-
     * implementation point sharing its other axes (see Speedup for
     * the matching rule). Unmatched points are dropped. Row order is
     * point order, so per-kernel rows come out in registry order —
     * the order every figure's geomeans are defined over. The
     * returned pointers are views into this Results.
     */
    std::vector<Speedup> speedupVs(core::Impl baseline) const;

    /** Results containing only the points @p pred accepts (stats kept). */
    Results
    where(const std::function<bool(const sweep::SweepResult &)> &pred) const
    {
        std::vector<sweep::SweepResult> kept;
        for (const auto &r : results_)
            if (pred(r))
                kept.push_back(r);
        return Results(std::move(kept), stats_);
    }

    /** Write every point to @p os in @p format (table/csv/jsonl). */
    void
    emit(std::ostream &os, sweep::Format format) const
    {
        sweep::emitResults(os, results_, format);
    }

    /** Cache counters snapshotted when the run finished. */
    const sweep::CacheStats &cacheStats() const { return stats_; }

    /** One-line human-readable form of cacheStats(), for diagnostics. */
    std::string
    cacheSummary() const
    {
        return sweep::cacheSummary(stats_);
    }

  private:
    std::vector<sweep::SweepResult> results_;
    sweep::CacheStats stats_;
};

} // namespace swan

#endif // SWAN_RESULTS_HH
