/**
 * @file
 * Public re-export: dynamic instruction traces. The Instr record and
 * recorder, MixStats instruction-class accounting, the packed
 * (columnar varint) trace encoding, and trace file serialization.
 */

#ifndef SWAN_TRACE_HH
#define SWAN_TRACE_HH

#include "trace/instr.hh"
#include "trace/packed.hh"
#include "trace/recorder.hh"
#include "trace/serialize.hh"
#include "trace/stats.hh"

#endif // SWAN_TRACE_HH
