/**
 * @file
 * swan::Session — the runtime-policy root of the public API. A Session
 * owns everything about *how* experiments execute (worker threads,
 * trace-memo byte budget, result-cache location and size cap, cache
 * warm-up passes) as explicit options, replacing the scattered SWAN_*
 * getenv calls that benches and the CLI used to hand-wire. The
 * environment variables still work, but only as *defaults*:
 * Session::fromEnv() reads them once into a SessionOptions value, and
 * anything set explicitly on that value wins (explicit > environment >
 * built-in default — see envDefaults()).
 *
 * A Session also owns the sweep ResultCache, so every Experiment run
 * through one Session shares in-memory results, and Sessions pointed
 * at the same cacheDir share results across processes.
 *
 * Layering (see docs/api.md):
 *
 *   Session (policy)  ->  Experiment (what to run)  ->  Results (view)
 *        |                      |
 *        +-- sweep::ResultCache +-- sweep::{expand, runSweep}
 */

#ifndef SWAN_SESSION_HH
#define SWAN_SESSION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hh"
#include "core/runner.hh"
#include "sweep/cache.hh"
#include "sweep/scheduler.hh"

namespace swan
{

/**
 * Explicit runtime policy. Field defaults are the library defaults;
 * Session::envDefaults() overlays the SWAN_* environment on top of
 * them, and the withX() setters make one-line explicit overrides
 * chainable: Session(Session::envDefaults().withJobs(8)).
 */
struct SessionOptions
{
    /** Sweep worker threads; <= 0 means all hardware threads.
     *  Results are byte-identical for any value. In a sharded sweep
     *  this is the pool width of every shard process. [env: SWAN_JOBS] */
    int jobs = 1;

    /**
     * Sweep worker *processes*: shards > 1 runs every Experiment's
     * simulation phase on the multi-process sharded backend — the
     * shards fork after the capture phase, claim work units via atomic
     * lockfiles in the on-disk cache tier (cacheDir, or a private
     * per-run directory when no cache is configured) and publish
     * results as ordinary cache entries the parent merges back
     * deterministically. Emitter output is byte-identical for any
     * shards x jobs combination, crashed shards included (the parent
     * re-executes whatever a dead shard left behind). 1 = in-process.
     * [env: SWAN_SHARDS]
     */
    int shards = 1;

    /**
     * Execution backend for the simulation phase (sweep/backend.hh):
     * Threaded (default; upgraded to Sharded when shards > 1), Inline
     * (serial, for tests/debug) or Sharded explicitly. Byte-identical
     * results whatever the choice — this is purely a placement policy.
     * Explicit API option only, deliberately not an environment
     * variable: `shards` is the deployment knob.
     */
    sweep::Backend backend = sweep::Backend::Threaded;

    /** Cache warm-up passes fed to the core model before the measured
     *  replay (paper Section 4.3). */
    int warmupPasses = 1;

    /** Byte budget for the in-memory packed-trace memo; over-budget
     *  traces spill to disk during capture and are reloaded for
     *  simulation, byte-identical results for any value. 0 = no
     *  budget. [env: SWAN_TRACE_MEMO_BYTES] */
    uint64_t traceMemoBytes = 0;

    /** Directory of the on-disk result + packed-trace cache tier,
     *  shared across processes; empty = in-memory cache only.
     *  [env: SWAN_SWEEP_CACHE_DIR] */
    std::string cacheDir;

    /** Size cap for the on-disk cache directory: after every store the
     *  coldest entries (hotness, then first-lookup order — never file
     *  mtimes) are pruned until the tier fits. 0 = unbounded.
     *  [env: SWAN_SWEEP_CACHE_MAX_BYTES] */
    uint64_t cacheMaxBytes = 0;

    /** Far/shared cache tier (T2) directory — the slow, durable tier a
     *  sweep service shares across hosts. Probed after the local disk
     *  tier; hits are write-through-promoted into cacheDir, stores
     *  write through (parent process only in sharded runs). Empty = no
     *  far tier. See docs/cache.md. [env: SWAN_CACHE_FAR_DIR] */
    std::string farCacheDir;

    /** Byte cap for the in-RAM result memo (T0): over the cap, the
     *  coldest results are dropped (they remain on disk). 0 =
     *  unbounded, the pre-tiering behavior. Byte-identical results for
     *  any value. [env: SWAN_CACHE_RAM_BYTES] */
    uint64_t cacheRamMaxBytes = 0;

    /**
     * Sharded-run deadline watchdog: kill shard processes that make no
     * observable progress (no share-directory change) for this many
     * milliseconds; their claimed units are recovered by the parent
     * through the ordinary bit-identical crash path. 0 = wait forever.
     * [env: SWAN_SHARD_TIMEOUT_MS]
     */
    uint64_t shardTimeoutMs = 0;

    /**
     * Units per sharded claim: consecutive work units of a sharded run
     * share one atomic claim lockfile, whose token folds the member
     * unit tokens — fewer filesystem round-trips when the grid has
     * many small units (e.g. a slow networked cache directory).
     * 1 (default) claims per unit under the unit's own token, keeping
     * claim filenames identical to previous releases. Results are
     * byte-identical for any value. [env: SWAN_SHARD_BATCH]
     */
    int shardBatch = 1;

    /**
     * Default fault-scenario axis for Experiments run through this
     * session (each `scenario[:key=value]...` string is one sweep-axis
     * value — see swan/faults.hh and `swan sweep --faults=help`).
     * Empty = clean simulation only. An Experiment's own faults() axis
     * overrides this entirely.
     */
    std::vector<std::string> faults;

    /** Workload input sizes for single-point runs (Session::run /
     *  Session::compare) and anywhere else a driver needs a concrete
     *  problem size. [env: SWAN_FULL / SWAN_FAST via
     *  core::Options::fromEnv] */
    core::Options workload = core::Options::defaults();

    /**
     * Telemetry output stem: when non-empty, every Experiment::run()
     * through the session collects swan::obs spans and writes
     * `<stem>.report.json` (per-phase wall/CPU aggregate, replay
     * throughput, fleet cache traffic, per-shard breakdown) and
     * `<stem>.trace.jsonl` (Chrome trace events — load in Perfetto or
     * chrome://tracing; see docs/observability.md). Collection is
     * malloc-free on the recording path, so emitter output stays
     * byte-identical with metrics on or off. Empty = no collection
     * (spans compile to a single relaxed load). [env: SWAN_METRICS]
     */
    std::string metricsOut;

    SessionOptions &
    withJobs(int n)
    {
        jobs = n;
        return *this;
    }
    SessionOptions &
    withShards(int n)
    {
        shards = n;
        return *this;
    }
    SessionOptions &
    withBackend(sweep::Backend b)
    {
        backend = b;
        return *this;
    }
    SessionOptions &
    withWarmupPasses(int n)
    {
        warmupPasses = n;
        return *this;
    }
    SessionOptions &
    withTraceMemoBytes(uint64_t n)
    {
        traceMemoBytes = n;
        return *this;
    }
    SessionOptions &
    withCacheDir(std::string dir)
    {
        cacheDir = std::move(dir);
        return *this;
    }
    SessionOptions &
    withCacheMaxBytes(uint64_t n)
    {
        cacheMaxBytes = n;
        return *this;
    }
    SessionOptions &
    withFarCacheDir(std::string dir)
    {
        farCacheDir = std::move(dir);
        return *this;
    }
    SessionOptions &
    withCacheRamMaxBytes(uint64_t n)
    {
        cacheRamMaxBytes = n;
        return *this;
    }
    SessionOptions &
    withShardTimeoutMs(uint64_t ms)
    {
        shardTimeoutMs = ms;
        return *this;
    }
    SessionOptions &
    withShardBatch(int n)
    {
        shardBatch = n;
        return *this;
    }
    SessionOptions &
    withFaults(std::vector<std::string> scenarios)
    {
        faults = std::move(scenarios);
        return *this;
    }
    SessionOptions &
    withWorkload(core::Options opts)
    {
        workload = opts;
        return *this;
    }
    SessionOptions &
    withMetricsOut(std::string stem)
    {
        metricsOut = std::move(stem);
        return *this;
    }
};

/**
 * One configured library instance: policy options plus the result
 * cache they imply. Create one per process (or per isolated cache
 * scope) and run any number of Experiments through it. Immobile — the
 * cache is stateful, holds a mutex, and is shared by reference; the
 * factory functions return prvalues, which C++17 constructs in place.
 */
class Session
{
  public:
    /** Library defaults; ignores the environment entirely. */
    Session() : Session(SessionOptions{}) {}

    /** Explicit options (the usual embedding entry point). */
    explicit Session(SessionOptions opts);

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * The SWAN_* environment overlaid on the library defaults:
     * SWAN_JOBS, SWAN_SHARDS, SWAN_SHARD_TIMEOUT_MS, SWAN_SHARD_BATCH,
     * SWAN_TRACE_MEMO_BYTES, SWAN_SWEEP_CACHE_DIR,
     * SWAN_SWEEP_CACHE_MAX_BYTES, SWAN_METRICS. Unset,
     * unparsable or (for SWAN_JOBS / SWAN_SHARDS) non-positive values
     * leave the built-in default untouched: all-cores fan-out is an
     * explicit option (jobs <= 0), never an ambient environment one.
     */
    static SessionOptions envDefaults();

    /** Session(envDefaults()) — the CLI/bench entry point. */
    static Session fromEnv() { return Session(envDefaults()); }

    const SessionOptions &options() const { return opts_; }

    /** The session-lifetime result cache (two-tier; see sweep/cache.hh). */
    sweep::ResultCache &cache() const { return cache_; }

    /**
     * Single-point legacy path: capture + simulate + apply the power
     * model for one (kernel, implementation, core, width) using this
     * session's workload options and warm-up passes — the
     * Session-aware form of what drivers used to hand-wire with
     * core::Runner(Options::fromEnv()). Makes a fresh workload from
     * the spec; use the Workload overload to share one instance
     * across calls (captured traces record real buffer addresses, so
     * two runs of one instance replay the same addresses while two
     * instances need not).
     */
    core::KernelRun run(const core::KernelSpec &spec, core::Impl impl,
                        const sim::CoreConfig &cfg,
                        int vec_bits = 128) const;

    /** run() on an existing workload instance. */
    core::KernelRun run(core::Workload &w, core::Impl impl,
                        const sim::CoreConfig &cfg,
                        int vec_bits = 128) const;

    /** Scalar vs Auto vs Neon on one core, outputs verified (the CLI
     *  'compare' subcommand's path). */
    core::Comparison compare(const core::KernelSpec &spec,
                             const sim::CoreConfig &cfg) const;

    /**
     * The scheduler configuration this session's options imply, for
     * code that drives sweep::runSweep directly. Experiment::run()
     * uses exactly this, so façade and direct-engine runs are
     * byte-identical by construction.
     */
    sweep::SchedulerConfig schedulerConfig() const;

  private:
    SessionOptions opts_;
    // Inline, and mutable so a const Session can serve cache lookups:
    // captured traces record real buffer addresses and the simulation
    // is address-sensitive, so session setup deliberately makes no
    // heap allocation beyond its option strings — a Session-driven run
    // leaves the same capture-time heap layout as a hand-wired one.
    mutable sweep::ResultCache cache_;
};

} // namespace swan

#endif // SWAN_SESSION_HH
