/**
 * @file
 * Public re-export: the portable SIMD layer the workloads are written
 * against (fixed-width vec<> types, NEON-style operations, the
 * recording instrumentation hooks).
 */

#ifndef SWAN_SIMD_HH
#define SWAN_SIMD_HH

#include "simd/simd.hh"

#endif // SWAN_SIMD_HH
