/**
 * @file
 * The façade's error type. Experiment::run() reports a bad grid
 * (unknown kernel, config or working-set preset, empty match) by
 * throwing swan::Error; the non-throwing overload reports the same
 * message through an out-parameter instead.
 */

#ifndef SWAN_ERROR_HH
#define SWAN_ERROR_HH

#include <stdexcept>
#include <string>

namespace swan
{

/** Raised by the public API on invalid experiment specifications. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what) : std::runtime_error(what) {}
};

} // namespace swan

#endif // SWAN_ERROR_HH
