/**
 * @file
 * Public re-export: report formatting (core::Table, banner, fmt/fmtX/
 * fmtPct) and aggregation helpers (geomean, summarizeByLibrary) used
 * by the per-figure reproductions.
 */

#ifndef SWAN_REPORT_HH
#define SWAN_REPORT_HH

#include "core/metrics.hh"
#include "core/report.hh"

#endif // SWAN_REPORT_HH
