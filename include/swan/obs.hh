/**
 * @file
 * Public re-export: the swan::obs telemetry subsystem — the
 * phase-structured span registry (obs/telemetry.hh) and the sink
 * layer (obs/report.hh: run-report aggregation, Chrome trace-event
 * output, the Collector scope). Most consumers get telemetry
 * implicitly through SessionOptions::metricsOut / SWAN_METRICS; these
 * types are public for embedders that attach custom sinks or bracket
 * their own code with obs::Span guards.
 */

#ifndef SWAN_OBS_HH
#define SWAN_OBS_HH

#include "obs/report.hh"
#include "obs/telemetry.hh"

#endif // SWAN_OBS_HH
