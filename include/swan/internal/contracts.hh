/**
 * @file
 * Determinism-contract annotations — the machine-checkable half of the
 * invariants the sweep engine's byte-identity guarantee rests on.
 *
 * Two contracts live here:
 *
 *  1. **No-alloc regions.** The fused replay loop (sim::replay /
 *     CoreModel::stepBlock) and the telemetry recording path
 *     (obs::Telemetry::record) are heap-free by design: captured
 *     traces carry real buffer addresses, the cache models are
 *     address-sensitive, and benches interleave capture with
 *     simulation on one thread — a stray allocation inside these
 *     regions shifts later capture addresses and with them the
 *     simulated cycle counts (see sweep/cache.hh). Bracket such a
 *     region with SWAN_NOALLOC_BEGIN("why") / SWAN_NOALLOC_END().
 *     tools/lint/swan_lint.py statically rejects allocation-capable
 *     constructs between the markers, and builds configured with
 *     -DSWAN_ALLOC_GUARD=ON additionally arm a runtime new/delete
 *     hook (swan::detail::AllocGuard) that aborts on the first heap
 *     operation inside the region — the "replay path is heap-free"
 *     claim as a regression test instead of tribal knowledge.
 *
 *  2. **Layout pins.** Types allocated while a sweep is still
 *     capturing (SweepPoint, CacheKey, CoreModel and its StepState)
 *     must never change size: growing one shifts the capture-time
 *     heap layout and drifts every address-sensitive result (PR 7
 *     root-caused exactly such a struct-padding regression by hand).
 *     Tag the type with SWAN_CAPTURE_TYPE at its definition and pin
 *     its size in include/swan/internal/layout.hh; swan-lint fails
 *     when a tagged type has no pin, a pin names an untagged type, or
 *     a known capture-phase type loses its tag.
 *
 * See docs/lint.md for the full check catalog and the suppression
 * syntax (`// swan-lint: allow(<check>) <reason>`).
 */

#ifndef SWAN_INTERNAL_CONTRACTS_HH
#define SWAN_INTERNAL_CONTRACTS_HH

#include <cstdint>

namespace swan::detail
{

/**
 * Scoped heap-quiescence assertion. While a guard is armed on a
 * thread, every operator new/delete on that thread is a contract
 * violation: counted, and (by default) fatal with a message naming
 * the violated region.
 *
 * The hook itself — a replacement operator new/delete consulting a
 * thread-local arm depth — is compiled into the library only under
 * -DSWAN_ALLOC_GUARD=ON (a debug/CI configuration; see enforced()).
 * The class is always real, so tests can construct guards and read
 * counters unconditionally; in uninstrumented builds a guard simply
 * never observes anything. Guards nest; allocations() reports the
 * heap operations observed since this guard was constructed.
 */
class AllocGuard
{
  public:
    /**
     * Arm the guard for the current scope.
     * @param what      region name for diagnostics ("sim::replay", ...)
     * @param fail_fast abort on the first violation (default). Pass
     *        false to only count — tests probing the hook use this.
     */
    explicit AllocGuard(const char *what, bool fail_fast = true) noexcept;
    ~AllocGuard();

    AllocGuard(const AllocGuard &) = delete;
    AllocGuard &operator=(const AllocGuard &) = delete;

    /** Disarm early (the SWAN_NOALLOC_END() marker). Idempotent. */
    void release() noexcept;

    /** Heap operations observed on this thread since construction. */
    uint64_t allocations() const noexcept;

    /** True when the library was built with -DSWAN_ALLOC_GUARD=ON
     *  (the operator new/delete hook is live). */
    static bool enforced() noexcept;

    /** Process-wide violation count across all guards (survives
     *  released guards; non-fail-fast violations land here too). */
    static uint64_t totalViolations() noexcept;

    /**
     * RAII suspension: payload/observer callbacks run foreign code
     * that may allocate legitimately (e.g. FaultObserver::begin
     * builds its baseline tables) — suspend the enclosing region
     * around the call, restore on scope exit.
     */
    class Pause
    {
      public:
        Pause() noexcept;
        ~Pause();
        Pause(const Pause &) = delete;
        Pause &operator=(const Pause &) = delete;

      private:
        uint32_t savedDepth_;
    };

  private:
    const char *what_;
    const char *prevWhat_;
    uint64_t before_;
    bool armed_;
    bool prevFailFast_;
};

} // namespace swan::detail

/**
 * Capture-phase type tag. Expands to nothing — it exists for
 * swan-lint, which cross-checks every tagged type against the size
 * pins in include/swan/internal/layout.hh. Place it between the
 * class-key and the type name:
 *
 *     struct SWAN_CAPTURE_TYPE SweepPoint { ... };
 */
#define SWAN_CAPTURE_TYPE

#if defined(SWAN_ALLOC_GUARD)
/** Open a statically- and dynamically-checked no-alloc region. */
#define SWAN_NOALLOC_BEGIN(what)                                          \
    ::swan::detail::AllocGuard swanNoallocGuard_ { what }
/** Close the region opened by SWAN_NOALLOC_BEGIN in this scope. */
#define SWAN_NOALLOC_END() swanNoallocGuard_.release()
/** Suspend the enclosing region for one scope (observer callbacks). */
#define SWAN_NOALLOC_PAUSE()                                              \
    ::swan::detail::AllocGuard::Pause swanNoallocPause_ {}
#else
// Marker-only in normal builds: swan-lint still sees the tokens, the
// generated code is untouched (no TLS traffic on the hot paths).
#define SWAN_NOALLOC_BEGIN(what) ((void)0)
#define SWAN_NOALLOC_END() ((void)0)
#define SWAN_NOALLOC_PAUSE() ((void)0)
#endif

#endif // SWAN_INTERNAL_CONTRACTS_HH
