/**
 * @file
 * Centralized layout pins for every capture-phase type.
 *
 * The sweep engine's byte-identity guarantee rests on the capture
 * thread's heap evolving identically run over run: captured traces
 * record real buffer addresses and the cache models are
 * address-sensitive (sweep/cache.hh). The types below are allocated
 * *while a sweep is still capturing* — grow one of them and every
 * later capture's addresses shift, silently drifting the simulated
 * cycle counts that clean sweeps must reproduce byte-for-byte (PR 7
 * root-caused exactly such a padding regression by hand; these
 * asserts make the next one a compile error with a message instead).
 *
 * Contract (enforced by tools/lint/swan_lint.py, check `layout-pin`):
 * a type tagged SWAN_CAPTURE_TYPE at its definition must have a pin
 * here, and every pin must name a tagged type. New state for a pinned
 * type goes into existing padding, an interning side table, or
 * post-capture storage — never into the struct itself. If a size MUST
 * change, update the pin in the same commit and re-verify bench
 * stdout byte-identity against the pre-change tree (pristine-worktree
 * diff; see docs/lint.md).
 *
 * The pinned values are the LP64 libstdc++ layout the determinism
 * test matrix runs on; other ABIs build unpinned (the lint still
 * enforces tag/pin bookkeeping everywhere).
 */

#ifndef SWAN_INTERNAL_LAYOUT_HH
#define SWAN_INTERNAL_LAYOUT_HH

#include <cstddef>

#include "sim/core_model.hh"
#include "sweep/cache.hh"
#include "sweep/grid.hh"
#include "swan/internal/contracts.hh"

#if defined(__GLIBCXX__) && defined(__LP64__)
#define SWAN_LAYOUT_PINS_APPLY 1
#else
#define SWAN_LAYOUT_PINS_APPLY 0
#endif

#if SWAN_LAYOUT_PINS_APPLY
/** Pin sizeof(Type) to exactly Bytes. */
#define SWAN_PIN(Type, Bytes)                                             \
    static_assert(sizeof(Type) == (Bytes),                                \
                  #Type " changed size: capture-phase types must not "    \
                        "grow (include/swan/internal/layout.hh)")
/** Pin an exported size constant (private nested types expose one). */
#define SWAN_PIN_VALUE(Type, Expr, Bytes)                                 \
    static_assert((Expr) == (Bytes),                                      \
                  #Type " changed size: capture-phase types must not "    \
                        "grow (include/swan/internal/layout.hh)")
/**
 * Pin sizeof(Type) to the glibc malloc size class of Bytes: chunks
 * round request+8 up to 16, so two sizes in one class are
 * heap-indistinguishable. Used where the contract is the transient
 * heap-request size, not the exact byte count.
 */
#define SWAN_PIN_CLASS(Type, Bytes)                                       \
    static_assert((sizeof(Type) + 23) / 16 == ((Bytes) + 23) / 16,        \
                  #Type " left its malloc size class: replay-transient "  \
                        "heap requests must stay stable "                 \
                        "(include/swan/internal/layout.hh)")
#else
#define SWAN_PIN(Type, Bytes) static_assert(sizeof(Type) > 0, "")
#define SWAN_PIN_VALUE(Type, Expr, Bytes) static_assert((Expr) > 0, "")
#define SWAN_PIN_CLASS(Type, Bytes) static_assert(sizeof(Type) > 0, "")
#endif

// One expanded grid point. The points vector (and every SweepResult
// holding one) is allocated before the sweep's captures finish;
// PR 7's fault axis fit in former padding to keep this exact value.
SWAN_PIN(swan::sweep::SweepPoint, 344);

// Result-cache key: memory-tier nodes are allocated while capturing.
// faultFp lives in former padding after warmupPasses for this pin.
SWAN_PIN(swan::sweep::CacheKey, 64);

// The step core's per-instruction mutable scalars — the SoA lane
// block the fused replay copies per configuration. The fused loop's
// lane arrays and batch sizing are tuned to this footprint.
SWAN_PIN_VALUE(StepState, swan::sim::CoreModel::kStepStateBytes, 80);

// One decoded record as the batch decode kernels emit it; the fused
// driver's L1-resident decode buffers (and the batch kernels' store
// layout) are sized by it.
SWAN_PIN(swan::trace::PackedTrace::Decoded, 56);

// One vector of configuration lanes in the fused replay engine
// (8 x StepState + 8 x per-FU frontier + model/step-fn tables).
// Replays wider than 8 configurations heap a dense block array while
// benches interleave capture and simulation.
SWAN_PIN_VALUE(LaneBlock, swan::sim::CoreModel::kLaneBlockBytes, 1280);

// CoreModel is allocated transiently by replay drivers that
// interleave with capture on one thread; the contract is its malloc
// size class (the seed's 1312-byte layout), not the exact size.
SWAN_PIN_CLASS(swan::sim::CoreModel, 1312);

#endif // SWAN_INTERNAL_LAYOUT_HH
