/**
 * @file
 * Runtime ISA dispatch for the vectorized replay engine.
 *
 * The hot halves of `sim::replay` — batch varint decode
 * (trace/packed_batch*.cc) and the issue-slot ring scan
 * (sim/core_model.cc) — exist in several specializations: a portable
 * SWAR baseline that any 64-bit target runs, an AVX2+BMI2 kernel
 * (pext-based varint extraction, masked slot scans) and an AArch64
 * NEON variant. Which one actually runs is decided exactly once per
 * process, here, from what the CPU reports at startup — never per
 * call, and never differently mid-run.
 *
 * Selection policy (first match wins):
 *   1. the library was built with -DSWAN_SIMD=OFF  -> scalar fallback
 *   2. SWAN_SIMD environment override              -> that level
 *      ("scalar" | "swar" | "native"; anything else = auto)
 *   3. runtime CPU detection                       -> best available
 *
 * Every specialization is *bit-identical* in output to the scalar
 * fallback — the selection is pure throughput, which is why an env
 * override and a forced-scalar build leg are safe (and CI runs one):
 * the determinism contract (byte-identical emitter output across
 * backend x jobs x shards x memo-budget) never depends on the level.
 *
 * The struct below is also the introspection surface: `swan version`
 * and the run-report JSON (obs/report.cc) print it so every bench
 * artifact is attributable to the code path that produced it.
 */

#ifndef SWAN_INTERNAL_SIMD_DISPATCH_HH
#define SWAN_INTERNAL_SIMD_DISPATCH_HH

#include <cstdint>

namespace swan::detail
{

/** Dispatch level, ordered by specialization. */
enum class SimdLevel : uint8_t
{
    Scalar, //!< guaranteed fallback: the ctz word-at-a-time decoder
    Swar,   //!< portable 64-bit SWAR batch kernels (any target)
    Avx2,   //!< x86-64 AVX2 + BMI2 (pext varint extraction, slot scan)
    Neon,   //!< AArch64 NEON (16-byte window probe)
};

/** The selected code path, fixed for the process lifetime. */
struct SimdDispatch
{
    SimdLevel level;
    const char *isa;          //!< detected ISA, e.g. "x86-64+avx2+bmi2"
    const char *decodeKernel; //!< selected batch-decode kernel name
    const char *stepKernel;   //!< selected step/slot-scan kernel name
    bool forced;              //!< build gate or SWAN_SIMD forced a level
};

/**
 * The process-wide selection (thread-safe, computed on first use).
 * Kernels consult this once and cache the result; introspection
 * consumers (CLI, run report) read the strings.
 */
const SimdDispatch &simdDispatch() noexcept;

} // namespace swan::detail

#endif // SWAN_INTERNAL_SIMD_DISPATCH_HH
