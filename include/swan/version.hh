/**
 * @file
 * Library version of the public swan API. The major number gates
 * source-incompatible changes to anything under include/swan/; the
 * same triple is exported through CMake (`find_package(swan 0.3)`).
 */

#ifndef SWAN_VERSION_HH
#define SWAN_VERSION_HH

#define SWAN_VERSION_MAJOR 0
#define SWAN_VERSION_MINOR 3
#define SWAN_VERSION_PATCH 0

/** "major.minor.patch" */
#define SWAN_VERSION_STRING "0.3.0"

namespace swan
{

/** Runtime view of the compile-time version triple. */
struct Version
{
    int major = SWAN_VERSION_MAJOR;
    int minor = SWAN_VERSION_MINOR;
    int patch = SWAN_VERSION_PATCH;
};

inline constexpr const char *versionString() { return SWAN_VERSION_STRING; }

} // namespace swan

#endif // SWAN_VERSION_HH
