/**
 * @file
 * Public re-export: the kernel model. KernelSpec/KernelInfo metadata,
 * the Workload interface, the global Registry that static registration
 * (SWAN_REGISTER_KERNEL) fills before main(), and the workload
 * input-size Options. Consumers enumerate kernels here and feed them
 * to a swan::Experiment or a core::Runner; nothing under src/ needs to
 * be included directly.
 */

#ifndef SWAN_KERNELS_HH
#define SWAN_KERNELS_HH

#include "core/kernel.hh"
#include "core/options.hh"
#include "core/registry.hh"

#endif // SWAN_KERNELS_HH
