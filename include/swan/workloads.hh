/**
 * @file
 * Public re-export: the ISA-extension study workloads (Section 6 —
 * predication, gather LUTs, strided loads, first-faulting loads,
 * complex multiply, WASM SIMD portability).
 */

#ifndef SWAN_WORKLOADS_HH
#define SWAN_WORKLOADS_HH

#include "workloads/ext/ext.hh"

#endif // SWAN_WORKLOADS_HH
