/**
 * @file
 * Umbrella header of the public swan API — the one supported way to
 * drive the system (docs/api.md). Layering:
 *
 *   swan/session.hh     runtime policy (threads, caches, budgets)
 *   swan/experiment.hh  fluent grid builder -> Results
 *   swan/results.hh     iteration / find / where / emit
 *   swan/kernels.hh     kernel metadata, Registry, Options
 *   swan/runner.hh      single-point capture + simulate harness
 *   swan/sim.hh         core timing + power models, config presets
 *   swan/trace.hh       instruction traces, mix stats, packed encoding
 *   swan/sweep.hh       the engine under Experiment (specs, scheduler,
 *                       cache, emitters)
 *   swan/obs.hh         telemetry spans, run reports, trace sinks
 *   swan/report.hh      tables and number formatting
 *
 * Domain extras, included separately where needed: swan/gpu.hh,
 * swan/autovec.hh, swan/workloads.hh, swan/simd.hh, swan/faults.hh.
 */

#ifndef SWAN_SWAN_HH
#define SWAN_SWAN_HH

#include "swan/error.hh"
#include "swan/experiment.hh"
#include "swan/kernels.hh"
#include "swan/obs.hh"
#include "swan/report.hh"
#include "swan/results.hh"
#include "swan/runner.hh"
#include "swan/session.hh"
#include "swan/sim.hh"
#include "swan/sweep.hh"
#include "swan/trace.hh"
#include "swan/version.hh"

#endif // SWAN_SWAN_HH
