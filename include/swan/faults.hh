/**
 * @file
 * Public surface: fault-injection scenarios and the replay payload
 * seam. Re-exports sim::FaultSpec / sim::FaultObserver / the
 * sim::ReplayObserver observer API (via sim/core_model.hh) for
 * embedders that attach custom payloads or build fault sweeps
 * programmatically — most users only need the string axis on
 * swan::Experiment::faults() / SessionOptions::withFaults() /
 * `swan sweep --faults`. See docs/faults.md.
 */

#ifndef SWAN_PUBLIC_FAULTS_HH
#define SWAN_PUBLIC_FAULTS_HH

#include "sim/faults.hh"

#endif // SWAN_PUBLIC_FAULTS_HH
