/**
 * @file
 * Public re-export: the single-point measurement harness. core::Runner
 * (capture one implementation's dynamic trace, replay it through a
 * core timing model, apply the power model), the Impl axis, KernelRun
 * and the Scalar/Auto/Neon Comparison. For grids of points, prefer
 * swan::Experiment — it adds caching, parallelism and emitters on top
 * of the same harness.
 */

#ifndef SWAN_RUNNER_HH
#define SWAN_RUNNER_HH

#include "core/runner.hh"

#endif // SWAN_RUNNER_HH
