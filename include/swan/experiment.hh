/**
 * @file
 * swan::Experiment — the fluent grid builder of the public API. An
 * Experiment names *what* to run (kernels x implementations x vector
 * widths x core-config presets x working-set presets); the Session it
 * is bound to supplies *how* (threads, caches, budgets). run() expands
 * the grid, executes it on the parallel sweep engine through the
 * session's result cache — points sharing a capture replay through
 * the fused single-decode multi-config engine (sim::replay, see
 * docs/trace.md) — and returns a Results view. Output order is the
 * deterministic flattened-grid order whatever the job count.
 *
 *   Session session = Session::fromEnv();
 *   Results r = Experiment(session)
 *                   .impls({core::Impl::Scalar, core::Impl::Neon})
 *                   .configs({"silver", "gold", "prime"})
 *                   .run();
 *   r.emit(std::cout, sweep::Format::Table);
 */

#ifndef SWAN_EXPERIMENT_HH
#define SWAN_EXPERIMENT_HH

#include <string>
#include <vector>

#include "swan/results.hh"
#include "swan/session.hh"
#include "sweep/grid.hh"

namespace swan
{

class Experiment
{
  public:
    /** Bind to @p session. Defaults: every headline kernel, Neon,
     *  128-bit, "prime" core, "default" working set, the session's
     *  warm-up passes. */
    explicit Experiment(Session &session);

    // --- kernel axis ---------------------------------------------------
    /** Explicit kernels ("ZL/adler32" or plain "adler32"); explicit
     *  names bypass the excluded flag. Empty = every registered kernel
     *  subject to the filters below. */
    Experiment &kernels(std::vector<std::string> names);
    /** Append one explicit kernel. */
    Experiment &kernel(std::string name);
    /** Restrict to one Table-2 library symbol, e.g. "ZL". */
    Experiment &library(std::string symbol);
    /** Only the eight Figure-5 wider-register kernels. */
    Experiment &widerOnly(bool on = true);
    /** Include the DES-style study kernels the paper excludes. */
    Experiment &includeExcluded(bool on = true);

    // --- remaining axes ------------------------------------------------
    Experiment &impls(std::vector<core::Impl> impls);
    Experiment &impl(core::Impl impl);
    Experiment &vecBits(std::vector<int> bits);
    /** Core-config presets: "prime", "gold", "silver", "wider", "4W-2V"
     *  ... (see sweep::configForName). */
    Experiment &configs(std::vector<std::string> names);
    Experiment &config(std::string name);
    /** Working-set presets: "default", "full", "tiny", "scalability"
     *  (see sweep::workingSetForName). */
    Experiment &workingSets(std::vector<std::string> names);
    Experiment &workingSet(std::string name);
    /** Override the session's cache warm-up passes for this grid. */
    Experiment &warmupPasses(int passes);

    // --- fault axis ------------------------------------------------------
    /**
     * Fault-injection scenarios as a sweep axis, one grid point per
     * entry per (kernel, width, config, working set) combination. Each
     * entry is a `scenario[:key=value]...` spec — "none",
     * "dram-spike:seed=7:intensity=16", "cache-flush", ... (catalog:
     * swan/faults.hh or `swan sweep --faults=help`). Faults perturb
     * replay only, never capture, so faulted points share the clean
     * points' captured traces but never their cached results; identical
     * seeds give byte-identical results on every backend. Empty (the
     * default) inherits SessionOptions::faults; the session default
     * empty too = clean simulation only.
     */
    Experiment &faults(std::vector<std::string> scenarios);
    /** Append one fault scenario to the axis. */
    Experiment &fault(std::string scenario);
    /** Alias of faults(), mirroring SessionOptions::withFaults. */
    Experiment &withFaults(std::vector<std::string> scenarios);

    // --- streaming -----------------------------------------------------
    /**
     * Stream every finished row as results land, strictly in the
     * deterministic point-index (flattened-grid) order — the same
     * order the Results view iterates. The RowOrigin tells where each
     * row came from: the result cache, in-process simulation, or a
     * shard process merged by the parent. Invoked from sweep worker
     * threads (serialized by the engine, never concurrently) and
     * strictly after the capture phase, so the callback may allocate
     * freely; it must not re-enter the session. Pass nullptr to clear.
     * Powers `swan sweep --progress`.
     */
    Experiment &onRow(sweep::RowCallback callback);

    /** The declarative spec this builder has accumulated. */
    const sweep::SweepSpec &spec() const { return spec_; }

    /** The bound session. */
    Session &session() const { return *session_; }

    /**
     * Expand and execute the grid. @throws swan::Error when the spec
     * names an unknown kernel/config/working set or matches nothing,
     * or when a sweep worker fails.
     */
    Results run() const;

    /**
     * Non-throwing run(): on failure returns an empty Results and sets
     * @p err to the diagnostic.
     */
    Results run(std::string *err) const;

  private:
    Session *session_;
    sweep::SweepSpec spec_;
    sweep::RowCallback onRow_;
};

} // namespace swan

#endif // SWAN_EXPERIMENT_HH
