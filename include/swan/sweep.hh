/**
 * @file
 * Public re-export: the sweep engine underneath swan::Experiment.
 * Declarative SweepSpec grids, the work-stealing scheduler, the
 * two-tier ResultCache and the table/csv/jsonl emitters. Most
 * consumers want the swan::Experiment façade (swan/experiment.hh)
 * instead; these types are public for code that post-processes
 * SweepResult streams or embeds the engine directly.
 */

#ifndef SWAN_SWEEP_HH
#define SWAN_SWEEP_HH

#include "sweep/cache.hh"
#include "sweep/emit.hh"
#include "sweep/grid.hh"
#include "sweep/scheduler.hh"

#endif // SWAN_SWEEP_HH
